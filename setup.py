"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in fully offline environments that lack the
``wheel`` package (``pip install -e .`` falls back to the legacy code path,
and ``python setup.py develop`` works directly).
"""

from setuptools import setup

setup()
