"""Benchmark-suite configuration.

Every paper figure has one bench that regenerates its data at a reduced
but protocol-preserving scale (``BENCH_*`` constants below); the kernel
benches guard the hot vectorized paths against performance regressions.

Simulation-backed figure benches run ``benchmark.pedantic`` with a single
round — they are end-to-end regenerations, not microbenchmarks — while the
kernel benches use the default calibration.
"""

import numpy as np
import pytest

#: Reduced scale for simulation-backed figure benches.
BENCH_AGENTS = 50
BENCH_ARTICLES = 10
BENCH_TRAIN = 400
BENCH_EVAL = 250


def bench_config(**overrides):
    from repro.sim.config import SimulationConfig

    defaults = dict(
        n_agents=BENCH_AGENTS,
        n_articles=BENCH_ARTICLES,
        training_steps=BENCH_TRAIN,
        eval_steps=BENCH_EVAL,
        seed=9,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture
def rng():
    return np.random.default_rng(2008)
