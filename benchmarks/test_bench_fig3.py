"""Bench FIG3: incentive vs no-incentive sharing (paper Figure 3).

Regenerates the paper's headline comparison at bench scale and checks the
direction: with incentives rational peers share more bandwidth and
articles than without.
"""

import numpy as np

from conftest import bench_config
from repro.sim._sweep import run_sweep


def run_fig3():
    configs = [
        bench_config(incentives_enabled=True, seed=101),
        bench_config(incentives_enabled=True, seed=202),
        bench_config(incentives_enabled=False, seed=101),
        bench_config(incentives_enabled=False, seed=202),
    ]
    return run_sweep(configs, backend="process", workers=4)


def test_fig3_incentive_effect(benchmark):
    results = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    inc_bw = np.mean([r.summary["shared_bandwidth"] for r in results[:2]])
    base_bw = np.mean([r.summary["shared_bandwidth"] for r in results[2:]])
    inc_f = np.mean([r.summary["shared_files"] for r in results[:2]])
    base_f = np.mean([r.summary["shared_files"] for r in results[2:]])
    assert inc_bw > base_bw, "incentives must raise bandwidth sharing"
    assert inc_f > base_f, "incentives must raise article sharing"
