"""Bench FIG1: regenerate the reputation-function curves (paper Figure 1)."""

import numpy as np

from repro.experiments import fig1_reputation


def test_fig1_reputation_curves(benchmark):
    figs = benchmark(fig1_reputation.run)
    fig = figs[0]
    assert len(fig.series) == 4
    assert fig.x.size == 101
    for curve in fig.series.values():
        assert curve[0] == np.float64(0.05) or abs(curve[0] - 0.05) < 1e-12
        assert np.all(np.diff(curve) >= 0)
