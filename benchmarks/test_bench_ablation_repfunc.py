"""Ablation bench: reputation-function shape vs sharing (paper future work).

"Future work will investigate new and existing reputation functions in
order to maximize sharing of resources" — this bench regenerates the
comparison at bench scale across the function families.
"""

from conftest import bench_config
from repro.sim._sweep import run_sweep

FAMILIES = ("logistic", "linear", "power")


def run_families():
    configs = [
        bench_config(reputation_fn_s=f, seed=23) for f in FAMILIES
    ]
    results = run_sweep(configs, backend="process", workers=3)
    return {
        f: (r.summary["shared_files"], r.summary["shared_bandwidth"])
        for f, r in zip(FAMILIES, results)
    }


def test_ablation_reputation_function(benchmark):
    table = benchmark.pedantic(run_families, rounds=1, iterations=1)
    assert set(table) == set(FAMILIES)
    for files, bw in table.values():
        assert 0.0 <= files <= 1.0
        assert 0.0 <= bw <= 1.0
