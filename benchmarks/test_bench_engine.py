"""Bench ENGINE: phase-kernel throughput, sequential vs replicate-batched.

Records the engine's steps/sec at a fig3-sized configuration (100 agents,
30 articles, full protocol) in three execution shapes:

* sequential — the historical one-run ``CollaborationSimulation``;
* batched R=1 — the same pipeline through ``BatchedSimulation`` (measures
  the replicate-axis overhead at unit width, which must be ~zero);
* batched R=8 — eight seed replicates as stacked ``(8, N)`` arrays
  (throughput counted in replicate-steps/sec).

The speedup test asserts the headline property: running 8 replicates
batched beats 8 in-process sequential runs by >= 3x wall-clock-equivalent
(CPU time, median of back-to-back paired rounds, which is robust to the
throttling and clock changes of shared CI runners; the batched engine
holds one core, so CPU time ~ wall time).
"""

import statistics
import time

from conftest import bench_config
from repro.sim.engine import (
    BatchedSimulation,
    CollaborationSimulation,
    run_replicates,
    run_simulation,
)
from repro.sim.rng import spawn_seeds
from repro.sim.sweep import replicate

#: Fig3-sized population/workload at a bench-scale horizon.
ENGINE_CFG = dict(
    n_agents=100,
    n_articles=30,
    training_steps=150,
    eval_steps=100,
    seed=5,
)
N_REPLICATES = 8


def engine_config(**overrides):
    cfg = dict(ENGINE_CFG)
    cfg.update(overrides)
    return bench_config(**cfg)


def _steps(cfg) -> int:
    return cfg.training_steps + cfg.eval_steps


def test_engine_steps_sequential(benchmark):
    cfg = engine_config()
    result = benchmark.pedantic(
        lambda: CollaborationSimulation(cfg).run(), rounds=1, iterations=1
    )
    benchmark.extra_info["steps_per_sec"] = _steps(cfg) / result.wall_time_s
    assert result.summary["shared_bandwidth"] > 0.0


def test_engine_steps_batched_r1(benchmark):
    cfg = engine_config()
    results = benchmark.pedantic(
        lambda: BatchedSimulation([cfg]).run(), rounds=1, iterations=1
    )
    benchmark.extra_info["steps_per_sec"] = _steps(cfg) / results[0].wall_time_s
    assert results[0].summary["shared_bandwidth"] > 0.0


def test_engine_steps_batched_r8(benchmark):
    cfg = engine_config()
    configs = replicate(cfg, N_REPLICATES)
    results = benchmark.pedantic(
        lambda: BatchedSimulation(configs).run(), rounds=1, iterations=1
    )
    total_wall = sum(r.wall_time_s for r in results)
    benchmark.extra_info["replicate_steps_per_sec"] = (
        N_REPLICATES * _steps(cfg) / total_wall
    )
    assert len(results) == N_REPLICATES


def test_engine_batched_speedup(benchmark):
    """run_replicates(cfg, 8) must be >= 3x faster than 8 sequential runs."""
    cfg = engine_config()
    seeds = spawn_seeds(cfg.seed, N_REPLICATES)

    def cpu_time(fn) -> float:
        t0 = time.process_time()
        fn()
        return time.process_time() - t0

    def measure() -> float:
        # Shared runners throttle and change clocks on sub-second
        # timescales, so single timings of either side are unreliable.
        # Pair the two sides back to back within each round (adjacent in
        # time -> same machine state) and take the median of the
        # per-round ratios, which is robust to drift and to a bad round.
        ratios = []
        for _ in range(5):
            sequential = cpu_time(
                lambda: [run_simulation(cfg.with_(seed=s)) for s in seeds]
            )
            batched = cpu_time(lambda: run_replicates(cfg, N_REPLICATES))
            ratios.append(sequential / batched)
        return statistics.median(ratios)

    speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["speedup_x"] = speedup
    assert speedup >= 3.0, f"batched speedup {speedup:.2f}x below the 3x floor"
