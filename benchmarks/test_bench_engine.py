"""Bench ENGINE: phase-kernel throughput, sequential vs batched lanes.

Records the engine's steps/sec at a fig3-sized configuration (100 agents,
30 articles, full protocol) in three execution shapes:

* sequential — the historical one-run ``CollaborationSimulation``;
* batched R=1 — the same pipeline through ``BatchedSimulation`` (measures
  the replicate-axis overhead at unit width, which must be ~zero);
* batched R=8 — eight seed replicates as stacked ``(8, N)`` arrays
  (throughput counted in replicate-steps/sec).

Two speedup tests assert the headline properties (both as CPU time,
median of back-to-back paired rounds, which is robust to the throttling
and clock changes of shared CI runners; the batched engine holds one
core, so CPU time ~ wall time):

* 8 seed replicates batched beat 8 in-process sequential runs by >= 3x;
* a *heterogeneous* grid of 8 distinct configs (different temperatures,
  workload intensities, population mixes) lane-batched as one
  ``BatchedSimulation`` beats running the same grid sequentially by
  >= 2.5x — the sweep axis itself vectorizes, not just the seed axis.
"""

import statistics
import time

from conftest import bench_config
from repro.agents.population import PopulationMix
from repro.sim.engine import (
    BatchedSimulation,
    CollaborationSimulation,
    run_replicates,
    run_simulation,
)
from repro.sim.rng import spawn_seeds
from repro.sim._sweep import plan_lane_batches, replicate, run_sweep

#: Fig3-sized population/workload at a bench-scale horizon.
ENGINE_CFG = dict(
    n_agents=100,
    n_articles=30,
    training_steps=150,
    eval_steps=100,
    seed=5,
)
N_REPLICATES = 8


def engine_config(**overrides):
    cfg = dict(ENGINE_CFG)
    cfg.update(overrides)
    return bench_config(**cfg)


def _steps(cfg) -> int:
    return cfg.training_steps + cfg.eval_steps


def test_engine_steps_sequential(benchmark):
    cfg = engine_config()
    result = benchmark.pedantic(
        lambda: CollaborationSimulation(cfg).run(), rounds=1, iterations=1
    )
    benchmark.extra_info["steps_per_sec"] = _steps(cfg) / result.wall_time_s
    assert result.summary["shared_bandwidth"] > 0.0


def test_engine_steps_batched_r1(benchmark):
    cfg = engine_config()
    results = benchmark.pedantic(
        lambda: BatchedSimulation([cfg]).run(), rounds=1, iterations=1
    )
    benchmark.extra_info["steps_per_sec"] = _steps(cfg) / results[0].wall_time_s
    assert results[0].summary["shared_bandwidth"] > 0.0


def test_engine_steps_batched_r8(benchmark):
    cfg = engine_config()
    configs = replicate(cfg, N_REPLICATES)
    results = benchmark.pedantic(
        lambda: BatchedSimulation(configs).run(), rounds=1, iterations=1
    )
    total_wall = sum(r.wall_time_s for r in results)
    benchmark.extra_info["replicate_steps_per_sec"] = (
        N_REPLICATES * _steps(cfg) / total_wall
    )
    assert len(results) == N_REPLICATES


def _cpu_time(fn) -> float:
    t0 = time.process_time()
    fn()
    return time.process_time() - t0


def _median_paired_speedup(run_sequential, run_batched, rounds: int = 5) -> float:
    """Median of per-round sequential/batched CPU-time ratios.

    Shared runners throttle and change clocks on sub-second timescales,
    so single timings of either side are unreliable.  Pair the two sides
    back to back within each round (adjacent in time -> same machine
    state) and take the median of the per-round ratios, which is robust
    to drift and to a bad round.
    """
    ratios = []
    for _ in range(rounds):
        sequential = _cpu_time(run_sequential)
        batched = _cpu_time(run_batched)
        ratios.append(sequential / batched)
    return statistics.median(ratios)


def test_engine_batched_speedup(benchmark):
    """run_replicates(cfg, 8) must be >= 3x faster than 8 sequential runs."""
    cfg = engine_config()
    seeds = spawn_seeds(cfg.seed, N_REPLICATES)

    speedup = benchmark.pedantic(
        lambda: _median_paired_speedup(
            lambda: [run_simulation(cfg.with_(seed=s)) for s in seeds],
            lambda: run_replicates(cfg, N_REPLICATES),
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup_x"] = speedup
    assert speedup >= 3.0, f"batched speedup {speedup:.2f}x below the 3x floor"


def test_engine_compiled_backend_steps(benchmark):
    """steps/sec of the ``compiled`` kernel backend, JIT warm-up excluded.

    With Numba installed the compiled backend must clear a >= 5x
    steps/sec speedup over the numpy reference on the bench config.
    Without it the registry falls back to the reference (or interpreted
    kernels under ``REPRO_COMPILED_PUREPY``), so the speedup is
    meaningless — the bench still records throughput for the trend file
    but only soft-warns instead of gating.
    """
    import warnings

    from repro.sim.backends import get_backend
    from repro.sim.backends.compiled import numba_available

    cfg = engine_config()
    compiled_cfg = cfg.with_(**{"engine.backend": "compiled"})
    with warnings.catch_warnings():
        # Resolving 'compiled' without Numba warns about the fallback;
        # the bench knows and handles that case below.
        warnings.simplefilter("ignore", RuntimeWarning)
        get_backend("compiled").ensure_warm()

        result = benchmark.pedantic(
            lambda: run_simulation(compiled_cfg), rounds=1, iterations=1
        )
        benchmark.extra_info["steps_per_sec"] = _steps(cfg) / result.wall_time_s
        benchmark.extra_info["numba_available"] = numba_available()
        assert result.summary["shared_bandwidth"] > 0.0

        speedup = _median_paired_speedup(
            lambda: run_simulation(cfg),
            lambda: run_simulation(compiled_cfg),
            rounds=3,
        )
    benchmark.extra_info["compiled_speedup_x"] = speedup
    if not numba_available():
        warnings.warn(
            f"Numba unavailable: compiled backend ran via its fallback "
            f"(speedup {speedup:.2f}x, not gated); install numba to arm "
            f"the 5x gate",
            stacklevel=1,
        )
        return
    assert speedup >= 5.0, (
        f"compiled backend speedup {speedup:.2f}x below the 5x floor"
    )


def _lane_grid() -> list:
    """Eight *distinct* configs spanning the lane-liftable axes: eval
    temperature, download intensity, edit-proposal rate and population
    mix all differ, yet every config shares one structural key."""
    base = engine_config()
    grid = [
        base.with_(seed=11),
        base.with_(seed=12, t_eval=0.5),
        base.with_(seed=13, t_eval=2.0, download_probability=0.7),
        base.with_(seed=14, edit_attempt_prob=0.05),
        base.with_(seed=15, edit_attempt_prob=0.12, t_eval=0.8),
        base.with_(seed=16, mix=PopulationMix(0.8, 0.1, 0.1)),
        base.with_(seed=17, mix=PopulationMix(0.6, 0.2, 0.2),
                   download_probability=0.8),
        base.with_(seed=18, learning_rate=0.2, t_eval=1.5),
    ]
    assert len({hash(c) for c in grid}) == len(grid)
    return grid


def test_engine_lane_batched_grid_speedup(benchmark):
    """A mixed-config grid lane-batched in one process must beat the same
    grid run sequentially by >= 2.5x median CPU time."""
    grid = _lane_grid()
    tasks = plan_lane_batches([(c, [i]) for i, c in enumerate(grid)])
    assert len(tasks) == 1, "bench grid must lane-batch into one task"

    speedup = benchmark.pedantic(
        lambda: _median_paired_speedup(
            lambda: [run_simulation(c) for c in grid],
            lambda: BatchedSimulation(grid).run(),
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["lane_speedup_x"] = speedup
    assert speedup >= 2.5, (
        f"lane-batched grid speedup {speedup:.2f}x below the 2.5x floor"
    )


def test_engine_lane_batched_sweep_roundtrip(benchmark):
    """End-to-end: run_sweep(lane_batch=True) over the bench grid, serial
    backend, one vectorized batch (sanity on the sweep-layer plumbing)."""
    grid = _lane_grid()
    results = benchmark.pedantic(
        lambda: run_sweep(grid, backend="serial", lane_batch=True),
        rounds=1,
        iterations=1,
    )
    assert [r.config for r in results] == grid
    assert all(r.summary["shared_bandwidth"] > 0.0 for r in results)
