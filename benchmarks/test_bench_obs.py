"""Bench OBS: telemetry overhead gates and the traced phase breakdown.

The obs layer promises to be free when nobody asks for it.  Two gates
hold that promise (both as CPU time over back-to-back paired rounds,
robust to shared-runner throttling):

* disabled-mode — ``step_state`` with the ambient tracer off must cost
  <2% over calling the uninstrumented pipeline directly (the dispatch is
  one global read and one attribute check per step).  Gated on the *min*
  of the per-round ratios: timing noise only ever inflates a ratio, so
  the best round is the tightest estimate of the true overhead.
* enabled-mode — full span recording (no event ring, no tracemalloc)
  must stay <10% over the uninstrumented pipeline, median of rounds.

A third bench runs one full simulation under the tracer and checks the
acceptance property end to end: the per-phase breakdown accounts for
>= 95% of protocol time.  When ``OBS_BREAKDOWN_OUT`` is set (the CI
bench-smoke job does this), the breakdown is written there as JSON and
uploaded as a build artifact.
"""

import json
import os
import statistics
import time

from conftest import bench_config
from repro.obs import (
    Tracer,
    build_telemetry,
    phase_breakdown,
    set_tracer,
    tracing,
)
from repro.sim.engine import run_simulation
from repro.sim.phases import _step_state_plain, step_state
from repro.sim.state import build_sim_state

#: Steps per timing round / paired rounds for the overhead gates.
STEPS_PER_ROUND = 120
ROUNDS = 5

DISABLED_BUDGET = 1.02  # <2% with tracing off
ENABLED_BUDGET = 1.10  # <10% with tracing on


def _obs_config():
    return bench_config(n_agents=100, n_articles=30, seed=7)


def _cpu_time(fn) -> float:
    t0 = time.process_time()
    fn()
    return time.process_time() - t0


def _paired_ratios(run_plain, run_dispatch, rounds: int = ROUNDS) -> list:
    """Per-round dispatch/plain CPU-time ratios, paired back to back."""
    ratios = []
    for _ in range(rounds):
        plain = _cpu_time(run_plain)
        dispatch = _cpu_time(run_dispatch)
        ratios.append(dispatch / plain)
    return ratios


def test_obs_disabled_overhead(benchmark):
    """step_state with tracing off costs <2% over the raw pipeline."""
    cfg = _obs_config()
    # Two states from the same config evolve in lockstep (identical RNG
    # streams), so each round times the same work on both sides.
    state_plain = build_sim_state([cfg])
    state_dispatch = build_sim_state([cfg])

    def run_plain():
        for _ in range(STEPS_PER_ROUND):
            _step_state_plain(state_plain, cfg.t_eval, True)

    def run_dispatch():
        for _ in range(STEPS_PER_ROUND):
            step_state(state_dispatch, cfg.t_eval, learn=True)

    previous = set_tracer(Tracer(enabled=False))
    try:
        ratio = benchmark.pedantic(
            lambda: min(_paired_ratios(run_plain, run_dispatch)),
            rounds=1,
            iterations=1,
        )
    finally:
        set_tracer(previous)
    benchmark.extra_info["disabled_overhead_pct"] = (ratio - 1.0) * 100.0
    assert ratio <= DISABLED_BUDGET, (
        f"disabled-mode overhead {(ratio - 1.0) * 100.0:.2f}% "
        f"exceeds the {(DISABLED_BUDGET - 1.0) * 100.0:.0f}% budget"
    )


def test_obs_enabled_overhead(benchmark):
    """Full span recording (no ring, no tracemalloc) costs <10%."""
    cfg = _obs_config()
    state_plain = build_sim_state([cfg])
    state_dispatch = build_sim_state([cfg])

    def run_plain():
        for _ in range(STEPS_PER_ROUND):
            _step_state_plain(state_plain, cfg.t_eval, True)

    def run_dispatch():
        for _ in range(STEPS_PER_ROUND):
            step_state(state_dispatch, cfg.t_eval, learn=True)

    with tracing(enabled=True):
        ratio = benchmark.pedantic(
            lambda: statistics.median(_paired_ratios(run_plain, run_dispatch)),
            rounds=1,
            iterations=1,
        )
    benchmark.extra_info["enabled_overhead_pct"] = (ratio - 1.0) * 100.0
    assert ratio <= ENABLED_BUDGET, (
        f"enabled-mode overhead {(ratio - 1.0) * 100.0:.2f}% "
        f"exceeds the {(ENABLED_BUDGET - 1.0) * 100.0:.0f}% budget"
    )


def test_obs_traced_breakdown(benchmark):
    """One traced run: phase spans cover >= 95% of protocol time.

    Writes the breakdown JSON to ``$OBS_BREAKDOWN_OUT`` when set, so the
    CI bench-smoke job can upload it as a build artifact.
    """
    cfg = bench_config(n_agents=100, n_articles=30,
                       training_steps=150, eval_steps=100, seed=7)
    with tracing(enabled=True) as tracer:
        result = benchmark.pedantic(
            lambda: run_simulation(cfg), rounds=1, iterations=1
        )
        payload = build_telemetry(tracer, wall_time_s=result.wall_time_s)
    breakdown = phase_breakdown(payload)
    benchmark.extra_info["phase_coverage"] = breakdown["coverage"]
    out = os.environ.get("OBS_BREAKDOWN_OUT")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(
                {"wall_time_s": result.wall_time_s, "breakdown": breakdown},
                fh,
                indent=2,
            )
    assert breakdown["coverage"] >= 0.95, (
        f"phase spans cover only {breakdown['coverage']:.1%} of protocol time"
    )
