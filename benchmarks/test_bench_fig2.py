"""Bench FIG2: regenerate the Boltzmann distributions (paper Figure 2)."""

import numpy as np

from repro.experiments import fig2_boltzmann


def test_fig2_boltzmann_distributions(benchmark):
    figs = benchmark(fig2_boltzmann.run)
    assert len(figs) == 2
    low_t, high_t = figs
    assert low_t.series["p"].sum() == np.float64(1.0) or abs(
        low_t.series["p"].sum() - 1.0
    ) < 1e-12
    assert low_t.series["p"][-1] > 0.3  # T=2 concentrates
    assert np.all(np.abs(high_t.series["p"] - 0.1) < 0.01)  # T=1000 flat
