"""Benchmarks for the experiment store: hashing and put/get round trips.

Config hashing sits on the hot path of every cached sweep (one hash per
config per lookup), so it is benchmarked like a kernel; the store round
trip bounds the per-run persistence overhead, which must stay negligible
next to even the fastest simulation (~tens of milliseconds).
"""

from conftest import bench_config

from repro.sim.engine import run_simulation
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore


def test_bench_store_config_hash(benchmark):
    config = bench_config()
    digest = benchmark(config_hash, config)
    assert len(digest) == 64


def test_bench_store_put_get(benchmark, tmp_path):
    config = bench_config(training_steps=20, eval_steps=10, n_agents=10)
    result = run_simulation(config)
    store = RunStore(tmp_path)

    def roundtrip():
        store.put(result)
        return store.get(config)

    cached = benchmark(roundtrip)
    assert cached is not None
    assert cached.summary.keys() == result.summary.keys()


def test_bench_store_open_loaded(benchmark, tmp_path):
    """Opening a store re-reads the index; must stay cheap as runs pile up."""
    config = bench_config(training_steps=20, eval_steps=10, n_agents=10)
    result = run_simulation(config)
    seed_store = RunStore(tmp_path)
    for seed in range(50):
        result.config = config.with_(seed=seed)
        seed_store.put(result)

    store = benchmark(RunStore, tmp_path)
    assert len(store) == 50
