"""Bench SWEEP: store-coordinated cooperative grid draining.

Measures the distributed dispatch layer end to end:

* single drain — one ``run_sweep(dispatch="store")`` invocation drains a
  compute-bound grid alone (records configs/sec throughput and the
  lease-protocol overhead against plain execution);
* cooperative drain — the same grid published once and drained by two
  real ``repro sweep-worker`` processes.  Always asserts the
  distributed-correctness properties (disjoint computed sets whose union
  is the whole grid — zero duplicate computation); on machines with at
  least two usable cores it additionally gates the headline property:
  two cooperating processes finish in <= 0.6x the single-invocation
  drain wall clock.

Wall clocks compare drain loops (``DispatchStats.wall_s``), not process
lifetimes, so interpreter startup does not pollute the ratio.  The core
gate is skipped on single-core runners, where two compute-bound
processes cannot beat one by construction; the dispatcher's cooperative
wall-clock behaviour is still proven there by the sleep-bound tests in
``tests/store/test_dispatch.py``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import bench_config
from repro.sim._sweep import run_sweep
from repro.store.dispatch import last_dispatch_stats, publish_sweep_grid
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore

#: Compute-bound dispatch grid: 16 distinct seeds, one task per config,
#: each a ~0.5 s simulation — coarse enough that lease overhead is
#: negligible, fine enough that two workers balance to within one task.
N_CONFIGS = 16
SWEEP_CFG = dict(n_agents=50, n_articles=10, training_steps=400, eval_steps=250)


def sweep_grid():
    return [bench_config(**SWEEP_CFG, seed=s) for s in range(N_CONFIGS)]


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _single_drain_wall(store_root) -> float:
    """Drain the grid alone through the dispatcher; returns drain wall."""
    run_sweep(
        sweep_grid(),
        backend="serial",
        store=RunStore(store_root),
        dispatch="store",
        lane_width=1,
    )
    return last_dispatch_stats().wall_s


def test_sweep_dispatch_single_drain(benchmark, tmp_path):
    """Single-invocation dispatch drain: throughput and lease overhead."""
    wall = benchmark.pedantic(
        lambda: _single_drain_wall(tmp_path / "store"), rounds=1, iterations=1
    )
    stats = last_dispatch_stats()
    benchmark.extra_info["configs_per_sec"] = stats.configs_per_sec
    assert stats.computed == N_CONFIGS
    assert stats.claimed == N_CONFIGS  # lane_width=1: one task per config
    assert wall > 0


def test_sweep_dispatch_cooperative_two_workers(benchmark, tmp_path):
    """Two sweep-worker processes split one grid with zero duplication.

    The <= 0.6x wall-clock gate only runs with >= 2 usable cores; the
    zero-duplicate and completeness assertions always run.
    """
    grid = sweep_grid()
    single_wall = _single_drain_wall(tmp_path / "solo")

    store = RunStore(tmp_path / "coop")
    publish_sweep_grid(store, grid, lane_width=1)
    env = {
        **os.environ,
        "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
    }
    cmd = [
        sys.executable, "-m", "repro.store.cli", "sweep-worker",
        str(store.root), "--summary-json", "--quiet",
    ]

    def cooperative_drain():
        procs = [
            subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True, env=env)
            for _ in range(2)
        ]
        outs = [p.communicate(timeout=600)[0] for p in procs]
        assert all(p.returncode == 0 for p in procs)
        return [json.loads(out.splitlines()[-1]) for out in outs]

    summaries = benchmark.pedantic(cooperative_drain, rounds=1, iterations=1)

    computed = [set(s["computed_hashes"]) for s in summaries]
    assert not (computed[0] & computed[1]), (
        f"duplicate computation: {computed[0] & computed[1]}"
    )
    assert computed[0] | computed[1] == {config_hash(c) for c in grid}
    store.refresh()
    assert all(store.contains(c) for c in grid)

    # Cooperative drain wall: each worker's drain only returns once the
    # whole grid is in the store, so the max spans join -> completion.
    coop_wall = max(
        g["wall_s"] for s in summaries for g in s["grids"].values()
    )
    speedup = single_wall / coop_wall if coop_wall > 0 else float("inf")
    benchmark.extra_info["speedup_x"] = speedup
    benchmark.extra_info["single_wall_s"] = single_wall
    benchmark.extra_info["coop_wall_s"] = coop_wall
    if _usable_cores() >= 2:
        assert coop_wall <= 0.6 * single_wall, (
            f"cooperative drain {coop_wall:.2f}s not <= 0.6x "
            f"single-invocation {single_wall:.2f}s"
        )
