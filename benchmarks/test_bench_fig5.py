"""Bench FIG5: per-rational-peer sharing vs population mix (paper Figure 5).

Asserts the paper's two shape claims: rational sharing is insensitive to
the mix, and rational peers share more bandwidth than articles.
"""

import numpy as np

from conftest import bench_config
from repro.agents.population import mixture_sweep
from repro.sim.sweep import run_sweep


def run_fig5():
    pcts = [20, 80]
    configs = [
        bench_config(mix=mix, seed=11)
        for vary in ("altruistic", "irrational")
        for mix in mixture_sweep(vary, pcts)
    ]
    results = run_sweep(configs, backend="process", workers=4)
    return [
        (
            r.summary["shared_files_rational"],
            r.summary["shared_bandwidth_rational"],
        )
        for r in results
    ]


def test_fig5_rational_stability(benchmark):
    points = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    bw = np.array([p[1] for p in points])
    files = np.array([p[0] for p in points])
    # Stability: the rational bandwidth band stays narrow across mixes.
    assert bw.max() - bw.min() < 0.25
    # Bandwidth is shared more than articles, as in the paper's bands.
    assert bw.mean() > files.mean()
