"""Bench FIG5: per-rational-peer sharing vs population mix (paper Figure 5).

Asserts the paper's headline shape claim at bench scale: rational sharing
is insensitive to the population mix.  Each mix is averaged over two
seed replicates (run batched through the replicate-axis engine) — a
single reduced-horizon run leaves the per-mix estimate too noisy for a
band assertion.  The paper's second observation (bandwidth shared more
than articles) only separates at full horizon, so here we assert the
robust part: rational peers settle on substantial-but-partial sharing in
every mix rather than full sharing or free-riding.
"""

import numpy as np

from conftest import bench_config
from repro.agents.population import mixture_sweep
from repro.sim.engine import run_replicates


def run_fig5():
    pcts = [20, 80]
    points = []
    for vary in ("altruistic", "irrational"):
        for mix in mixture_sweep(vary, pcts):
            results = run_replicates(bench_config(mix=mix, seed=11), 2)
            points.append(
                (
                    np.mean([r.summary["shared_files_rational"] for r in results]),
                    np.mean(
                        [r.summary["shared_bandwidth_rational"] for r in results]
                    ),
                )
            )
    return points


def test_fig5_rational_stability(benchmark):
    points = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    bw = np.array([p[1] for p in points])
    files = np.array([p[0] for p in points])
    # Stability: the rational bandwidth band stays narrow across mixes.
    assert bw.max() - bw.min() < 0.25
    # Partial sharing: every mix lands between free-riding and all-in.
    assert np.all((bw > 0.2) & (bw < 0.8))
    assert np.all((files > 0.2) & (files < 0.8))
