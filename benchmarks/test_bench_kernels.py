"""Microbenchmarks of the hot vectorized kernels.

These are the per-step building blocks of the engine: Boltzmann action
selection, the Q-learning backup, bandwidth allocation and settlement,
and one full engine step.  pytest-benchmark calibrates rounds itself.
"""

import numpy as np

from conftest import bench_config
from repro.agents.qlearning import (
    VectorQLearner,
    boltzmann_probabilities,
    sample_categorical,
)
from repro.core.service import allocate_by_reputation
from repro.network.bandwidth import sample_download_requests, settle_downloads
from repro.sim.engine import CollaborationSimulation

N_AGENTS = 100  # paper scale


def test_boltzmann_probabilities(benchmark, rng):
    q = rng.normal(size=(N_AGENTS, 9))
    p = benchmark(boltzmann_probabilities, q, 1.0)
    assert np.allclose(p.sum(axis=1), 1.0)


def test_categorical_sampling(benchmark, rng):
    p = boltzmann_probabilities(rng.normal(size=(N_AGENTS, 9)), 1.0)
    samples = benchmark(sample_categorical, p, rng)
    assert samples.shape == (N_AGENTS,)


def test_action_selection_end_to_end(benchmark, rng):
    ql = VectorQLearner(N_AGENTS, 10, 9)
    ql.q[:] = rng.normal(size=ql.q.shape)
    states = rng.integers(0, 10, size=N_AGENTS)

    def select():
        return ql.select_actions(states, 1.0, rng)

    actions = benchmark(select)
    assert actions.shape == (N_AGENTS,)


def test_q_update(benchmark, rng):
    ql = VectorQLearner(N_AGENTS, 10, 9)
    states = rng.integers(0, 10, size=N_AGENTS)
    actions = rng.integers(0, 9, size=N_AGENTS)
    rewards = rng.normal(size=N_AGENTS)
    next_states = rng.integers(0, 10, size=N_AGENTS)

    def update():
        ql.update(states, actions, rewards, next_states)

    benchmark(update)


def test_bandwidth_allocation(benchmark, rng):
    sources = rng.integers(0, N_AGENTS, size=N_AGENTS)
    reps = rng.uniform(0.05, 1.0, size=N_AGENTS)
    shares = benchmark(allocate_by_reputation, sources, reps, N_AGENTS)
    assert shares.shape == (N_AGENTS,)


def test_download_round(benchmark, rng):
    sharing = rng.random(N_AGENTS) < 0.6
    offered = rng.random(N_AGENTS)
    capacity = np.ones(N_AGENTS)

    def round_():
        req = sample_download_requests(rng, sharing, 1.0)
        reps = np.full(req.n, 0.5)
        shares = allocate_by_reputation(req.source_ids, reps, N_AGENTS)
        return settle_downloads(req, shares, offered, capacity, N_AGENTS)

    received, served = benchmark(round_)
    assert received.shape == (N_AGENTS,)


def _step_sim():
    # Oversized metrics store: the benchmark loop calls step() thousands
    # of times, far past a normal run's horizon.
    return CollaborationSimulation(
        bench_config(n_agents=N_AGENTS, training_steps=200_000, eval_steps=1)
    )


def test_engine_step(benchmark):
    sim = _step_sim()

    def step():
        sim.step(1.0, learn=True)

    benchmark(step)
    assert sim.step_count > 0


def test_engine_training_step_uniform(benchmark):
    sim = _step_sim()

    def step():
        sim.step(float("inf"), learn=True)

    benchmark(step)
