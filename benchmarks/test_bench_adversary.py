"""Bench ADVERSARY: engine throughput with the adversary kernels enabled.

Guards two properties of the collusion and sybil kernels:

* **overhead** — an adversary-enabled run pays for the extra masking,
  share renormalization and identity resets, but must stay within 2x of
  the adversary-free engine at the same scale (the kernels are
  vectorized; only the per-replicate sybil draws add per-step Python
  work);
* **direction** — collusion rings must actually redirect bandwidth: the
  ring members' received service exceeds the population average under
  the reputation scheme (they farm reputation all-in and serve only each
  other), and sybil resets must keep attacker reputations at the floor.
"""

import statistics
import time

import numpy as np

from conftest import bench_config
from repro.sim.engine import BatchedSimulation, CollaborationSimulation

N_REPLICATES = 4

ADVERSARY = dict(
    collusion_fraction=0.25,
    collusion_ring_size=4,
    sybil_fraction=0.2,
    sybil_rate=0.05,
)


def test_engine_with_adversaries_batched(benchmark):
    cfg = bench_config(**ADVERSARY)
    configs = [cfg.with_(seed=s) for s in range(N_REPLICATES)]
    results = benchmark.pedantic(
        lambda: BatchedSimulation(configs).run(), rounds=1, iterations=1
    )
    assert all(r.extras["sybil_count"] > 0 for r in results)
    assert all(0.0 <= r.summary["shared_bandwidth"] <= 1.0 for r in results)


def test_adversary_overhead_bounded(benchmark):
    # Median of back-to-back paired rounds in CPU time, like the engine
    # speedup bench: robust to shared-runner stalls a single wall-clock
    # sample would turn into flakes.
    base = bench_config(training_steps=150, eval_steps=100)
    adv = base.with_(**ADVERSARY)

    def paired_rounds(rounds=3):
        ratios = []
        for _ in range(rounds):
            t0 = time.process_time()
            CollaborationSimulation(base).run()
            t_base = time.process_time() - t0
            t0 = time.process_time()
            CollaborationSimulation(adv).run()
            t_adv = time.process_time() - t0
            ratios.append(t_adv / max(t_base, 1e-9))
        return ratios

    ratios = benchmark.pedantic(paired_rounds, rounds=1, iterations=1)
    ratio = statistics.median(ratios)
    benchmark.extra_info["overhead_ratio"] = ratio
    assert ratio <= 2.0


def test_collusion_ring_captures_service():
    cfg = bench_config(training_steps=0, eval_steps=150, **ADVERSARY)
    sim = CollaborationSimulation(cfg)
    state = sim.state
    received = np.zeros(state.peers.n)
    for _ in range(cfg.eval_steps):
        sim.step(temperature=1.0)
        received += state.ctx.received
    ring = state.colluder_mask
    assert received[ring].mean() > received.mean()
