"""Bench FIG7: rational agents follow the majority (paper Figure 7).

One high-altruistic and one high-irrational point; asserts the takeover
direction in both panels.
"""

from conftest import bench_config
from repro.agents.population import PopulationMix
from repro.sim._sweep import run_sweep


SEEDS = (5, 23)


def run_fig7():
    configs = [
        bench_config(
            mix=PopulationMix(0.15, 0.70, 0.15),
            enforce_edit_threshold=False,
            seed=s,
        )
        for s in SEEDS
    ] + [
        bench_config(
            mix=PopulationMix(0.15, 0.15, 0.70),
            enforce_edit_threshold=False,
            seed=s,
        )
        for s in SEEDS
    ]
    results = run_sweep(configs, backend="process", workers=4)
    fracs = [r.summary["edit_constructive_fraction_rational"] for r in results]
    k = len(SEEDS)
    return sum(fracs[:k]) / k, sum(fracs[k:]) / k


def test_fig7_majority_following(benchmark):
    high_alt, high_irr = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    assert high_alt > 0.55, "altruistic majority must pull rational agents up"
    assert high_irr < 0.45, "irrational majority must pull rational agents down"
    assert high_alt > high_irr + 0.2
