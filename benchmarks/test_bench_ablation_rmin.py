"""Ablation bench: R_min vs whitewashing pressure (paper section III-A).

"A high R_min provides incentives for whitewashing the identity": the
reputation a steady contributor forfeits by resetting to R_min shrinks as
R_min grows, so the deterrent weakens.  The bench regenerates two R_min
operating points with identity-reset churn enabled and asserts the
pressure ordering.
"""

from conftest import bench_config
from repro.core.params import PaperConstants, ReputationParams, ServiceParams
from repro.sim._sweep import run_sweep


def run_rmin_points():
    points = {}
    for r_min in (0.05, 0.40):
        constants = PaperConstants().with_overrides(
            reputation_s=ReputationParams(r_min=r_min),
            service=ServiceParams(edit_threshold=r_min + 0.05),
        )
        cfg = bench_config(constants=constants, whitewash_rate=0.002, seed=3)
        res = run_sweep([cfg])[0]
        loss = res.summary["reputation_s_rational"] - r_min
        points[r_min] = loss
    return points


def test_ablation_rmin_whitewash_pressure(benchmark):
    points = benchmark.pedantic(run_rmin_points, rounds=1, iterations=1)
    # Whitewashing forfeits less reputation when R_min is high -> the
    # deterrent (the 'loss') must shrink as R_min grows.
    assert points[0.05] > points[0.40]
