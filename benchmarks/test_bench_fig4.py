"""Bench FIG4: network-wide sharing vs population mix (paper Figure 4).

Three points per curve at bench scale; asserts the paper's shape —
sharing rises with the altruistic share and falls with the irrational
share.
"""

from conftest import bench_config
from repro.agents.population import mixture_sweep
from repro.sim._sweep import run_sweep


def run_fig4():
    pcts = [20, 50, 80]
    out = {}
    for vary in ("altruistic", "irrational"):
        configs = [
            bench_config(mix=mix, seed=7)
            for mix in mixture_sweep(vary, pcts)
        ]
        results = run_sweep(configs, backend="process", workers=3)
        out[vary] = [r.summary["shared_files"] for r in results]
    return out


def test_fig4_population_mix(benchmark):
    series = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    alt = series["altruistic"]
    irr = series["irrational"]
    assert alt[-1] > alt[0], "sharing must rise with altruistic share"
    assert irr[-1] < irr[0], "sharing must fall with irrational share"
