"""Benchmarks for the trust-propagation substrate."""

import numpy as np

from repro.trust.eigentrust import eigentrust
from repro.trust.local_trust import normalize_trust
from repro.trust.maxflow import max_flow_trust

N = 100


def trust_matrix(seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.random((N, N)) * (rng.random((N, N)) < 0.2)
    np.fill_diagonal(raw, 0.0)
    return normalize_trust(raw)


def test_eigentrust_convergence(benchmark):
    c = trust_matrix()
    res = benchmark(eigentrust, c)
    assert res.converged


def test_normalize_trust(benchmark):
    rng = np.random.default_rng(1)
    raw = rng.random((N, N))
    c = benchmark(normalize_trust, raw)
    assert np.allclose(c.sum(axis=1), 1.0)


def test_max_flow_single_pair(benchmark):
    rng = np.random.default_rng(2)
    cap = rng.random((N, N)) * (rng.random((N, N)) < 0.1)
    np.fill_diagonal(cap, 0.0)
    flow = benchmark(max_flow_trust, cap, 0, N - 1)
    assert flow >= 0.0
