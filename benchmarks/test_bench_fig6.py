"""Bench FIG6: rational edits at a balanced altruistic/irrational split
(paper Figure 6).

At a 50/50 split of the fixed camps the converged rational behaviour is a
coin flip; the bench regenerates one mid-grid point over three seeds and
asserts the outcome stays *undetermined on average* (neither camp fully
captures every seed) or shows per-seed extremes — both are signatures of
the paper's "completely random" regime.
"""

import numpy as np

from conftest import bench_config
from repro.agents.population import PopulationMix
from repro.sim._sweep import run_sweep


def run_fig6():
    mix = PopulationMix(rational=0.4, altruistic=0.3, irrational=0.3)
    configs = [
        bench_config(mix=mix, enforce_edit_threshold=False, seed=s)
        for s in (5, 17, 29)
    ]
    results = run_sweep(configs, backend="process", workers=3)
    return np.array(
        [r.summary["edit_constructive_fraction_rational"] for r in results]
    )


def test_fig6_edit_coin_flip(benchmark):
    fracs = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    fracs = fracs[~np.isnan(fracs)]
    assert fracs.size == 3
    assert np.all(fracs >= 0.0) and np.all(fracs <= 1.0)
    # The balanced regime never collapses to one camp across all seeds
    # with certainty; the average stays away from the extremes.
    assert 0.05 < fracs.mean() < 0.95
