"""Scale-path benchmarks: peak-memory growth and large-N step cost.

The memory tests are the teeth of the scale path: peak traced allocation
of a sparse tit-for-tat run must grow **sub-quadratically** in the
population (doubling N must cost well under the 4x a dense history
matrix would), and must stay a small fraction of the dense equivalent.

Sizes default small enough for the per-PR suite; the nightly
``scale-smoke`` CI job re-runs with ``SCALE_BENCH_AGENTS=10000`` to
exercise a genuinely large population (see .github/workflows/ci.yml).
"""

import os

import numpy as np

#: Population for the large size; the growth test pairs it with half.
SCALE_AGENTS = int(os.environ.get("SCALE_BENCH_AGENTS", "3000"))
SCALE_STEPS = 5


def _scale_config(n_agents, **overrides):
    """The canonical scale workload (shared with the scale/ packs and
    tools/mem_budget.py) at benchmark horizon."""
    from repro.sim.scenarios import scale_config

    defaults = dict(
        training_steps=SCALE_STEPS, eval_steps=1, scheme="tft", seed=4
    )
    defaults.update(overrides)
    return scale_config(n_agents, **defaults)


def _peak_bytes(n_agents) -> int:
    """tracemalloc peak of building + stepping one sparse run (shared
    recipe: repro.sim.scenarios.scale_peak_bytes)."""
    from repro.sim.scenarios import scale_peak_bytes

    peak, _ = scale_peak_bytes(n_agents, SCALE_STEPS, scheme="tft", seed=4)
    return peak


def test_sparse_peak_memory_grows_subquadratically():
    """Doubling the population must not quadruple peak memory.

    A dense (N, N) history quadruples; the sparse path's state is O(N),
    so the observed ratio should sit near 2.  The 3x bound leaves head
    room for allocator noise while still failing any reintroduced
    quadratic structure.
    """
    small = _peak_bytes(SCALE_AGENTS // 2)
    large = _peak_bytes(SCALE_AGENTS)
    ratio = large / small
    print(f"peak({SCALE_AGENTS // 2})={small / 1e6:.1f}MB "
          f"peak({SCALE_AGENTS})={large / 1e6:.1f}MB ratio={ratio:.2f}x")
    assert ratio < 3.0, (
        f"peak memory grew {ratio:.2f}x for 2x agents — the scale path "
        "has regressed toward O(N^2)"
    )


def test_sparse_peak_memory_beats_dense_equivalent():
    """The whole sparse run must cost a sliver of the dense matrix alone."""
    dense_bytes = SCALE_AGENTS * SCALE_AGENTS * 8
    peak = _peak_bytes(SCALE_AGENTS)
    assert peak < 0.25 * dense_bytes, (
        f"sparse-path peak {peak / 1e6:.1f}MB is not under 25% of the "
        f"{dense_bytes / 1e6:.1f}MB dense history equivalent"
    )


def test_sparse_ledger_state_is_linear():
    """Resident ledger bytes scale with N * cap, not N * N."""
    from repro.sim.engine import CollaborationSimulation

    sim = CollaborationSimulation(_scale_config(SCALE_AGENTS))
    ledger = sim.scheme._ledger
    assert ledger.nbytes <= SCALE_AGENTS * 64 * 17  # 16B/entry + counts


def test_bench_scale_step(benchmark):
    """Wall time of one large-N sparse step (trend-watched in nightly CI)."""
    from repro.sim.engine import CollaborationSimulation

    sim = CollaborationSimulation(_scale_config(SCALE_AGENTS, training_steps=20))
    sim.step(float("inf"))  # warm the buffers

    def run():
        for _ in range(3):
            sim.step(float("inf"))

    benchmark.pedantic(run, rounds=1)
    offered = np.asarray(sim.peers.offered_bandwidth)
    assert offered.shape == (SCALE_AGENTS,)
