"""Peer population state (struct-of-arrays).

The simulation treats the population as parallel NumPy arrays rather than a
list of peer objects — the per-step kernels then vectorize over all peers.
Behaviour *types* (rational / altruistic / irrational) are integer codes so
masks like ``types == RATIONAL`` stay cheap.

Capacities follow the paper's normalization: every peer has upload and
download bandwidth 1 and every file has size 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RATIONAL", "ALTRUISTIC", "IRRATIONAL", "TYPE_NAMES", "PeerArrays"]

RATIONAL = 0
ALTRUISTIC = 1
IRRATIONAL = 2
TYPE_NAMES = {RATIONAL: "rational", ALTRUISTIC: "altruistic", IRRATIONAL: "irrational"}


@dataclass
class PeerArrays:
    """Mutable per-peer state advanced by the engine every step.

    With ``n_replicates > 1`` the arrays hold ``R`` stacked independent
    populations flattened to ``R * N`` slots (replicate ``r`` owns slots
    ``[r*N, (r+1)*N)``).  Every elementwise kernel works on the flat view
    unchanged; per-replicate kernels reshape to ``(R, N)`` — a zero-copy
    view, so the single-run case (``R = 1``) is byte-identical to the
    historical layout.
    """

    types: np.ndarray  # int8 behaviour codes
    online: np.ndarray  # bool, churn support
    upload_capacity: np.ndarray  # float64, normalized to 1
    max_files: np.ndarray  # float64, max shareable files (paper: 100)
    # Current actions (set by the behaviour policies each step):
    offered_bandwidth: np.ndarray  # float64 fraction in [0, 1]
    offered_files: np.ndarray  # float64 fraction in [0, 1] of max_files
    n_replicates: int = 1

    @classmethod
    def create(
        cls,
        types: np.ndarray,
        upload_capacity: float = 1.0,
        max_files: float = 100.0,
    ) -> "PeerArrays":
        """Build a population from type codes.

        ``types`` is ``(N,)`` for a single run or ``(R, N)`` for ``R``
        stacked replicates (one row per replicate's shuffled population).
        """
        types = np.asarray(types, dtype=np.int8)
        if types.ndim == 2:
            n_replicates = types.shape[0]
            types = types.reshape(-1)
        elif types.ndim == 1:
            n_replicates = 1
        else:
            raise ValueError("types must be 1-D (one run) or 2-D (replicates)")
        if types.size == 0:
            raise ValueError("types must be non-empty")
        if not np.isin(types, (RATIONAL, ALTRUISTIC, IRRATIONAL)).all():
            raise ValueError("unknown behaviour type code present")
        n = types.size
        return cls(
            types=types.copy(),
            online=np.ones(n, dtype=bool),
            upload_capacity=np.full(n, float(upload_capacity)),
            max_files=np.full(n, float(max_files)),
            offered_bandwidth=np.zeros(n, dtype=np.float64),
            offered_files=np.zeros(n, dtype=np.float64),
            n_replicates=n_replicates,
        )

    @property
    def n(self) -> int:
        """Total number of peer slots (``R * N``; equals ``N`` when R=1)."""
        return self.types.size

    @property
    def n_per_replicate(self) -> int:
        return self.types.size // self.n_replicates

    def mask(self, type_code: int) -> np.ndarray:
        """Boolean mask selecting one behaviour type."""
        return self.types == type_code

    def counts(self) -> dict[str, int]:
        """Number of peers per behaviour type (for reporting)."""
        return {
            name: int(np.count_nonzero(self.types == code))
            for code, name in TYPE_NAMES.items()
        }

    def sharing_mask(self) -> np.ndarray:
        """Peers currently offering at least one file while online."""
        return self.online & (self.offered_files > 0.0)

    def set_actions(
        self, offered_bandwidth: np.ndarray, offered_files: np.ndarray
    ) -> None:
        """Install this step's sharing actions (validated, in-place)."""
        ob = np.asarray(offered_bandwidth, dtype=np.float64)
        of = np.asarray(offered_files, dtype=np.float64)
        if ob.shape != (self.n,) or of.shape != (self.n,):
            raise ValueError("action arrays must have shape (n_peers,)")
        if np.any((ob < 0) | (ob > 1)) or np.any((of < 0) | (of > 1)):
            raise ValueError("action fractions must lie in [0, 1]")
        self.offered_bandwidth[:] = ob
        self.offered_files[:] = of
