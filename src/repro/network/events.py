"""Structured event records for analysis and debugging.

The engine can optionally log per-step events (downloads, edits, votes,
punishments) into an :class:`EventLog`.  Logging is off by default — the
hot path never pays for it — but the integration tests and the examples
use it to assert on causality (e.g. "the punished editor had N declined
edits first").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "DownloadEvent",
    "EditEvent",
    "VoteEvent",
    "PunishmentEvent",
    "EventLog",
]


@dataclass(frozen=True)
class DownloadEvent:
    step: int
    downloader_id: int
    source_id: int
    amount: float


@dataclass(frozen=True)
class EditEvent:
    step: int
    article_id: int
    editor_id: int
    constructive: bool
    accepted: bool
    for_weight: float
    required_majority: float
    n_voters: int


@dataclass(frozen=True)
class VoteEvent:
    step: int
    article_id: int
    voter_id: int
    vote_for: bool
    successful: bool
    weight: float


@dataclass(frozen=True)
class PunishmentEvent:
    step: int
    peer_id: int
    kind: str  # "vote_ban" | "reputation_reset"


@dataclass
class EventLog:
    """Append-only store of simulation events."""

    downloads: list[DownloadEvent] = field(default_factory=list)
    edits: list[EditEvent] = field(default_factory=list)
    votes: list[VoteEvent] = field(default_factory=list)
    punishments: list[PunishmentEvent] = field(default_factory=list)

    def record_download(self, event: DownloadEvent) -> None:
        self.downloads.append(event)

    def record_edit(self, event: EditEvent) -> None:
        self.edits.append(event)

    def record_vote(self, event: VoteEvent) -> None:
        self.votes.append(event)

    def record_punishment(self, event: PunishmentEvent) -> None:
        self.punishments.append(event)

    def __len__(self) -> int:
        return (
            len(self.downloads) + len(self.edits) + len(self.votes) + len(self.punishments)
        )

    def edits_by(self, editor_id: int) -> Iterator[EditEvent]:
        return (e for e in self.edits if e.editor_id == editor_id)

    def votes_by(self, voter_id: int) -> Iterator[VoteEvent]:
        return (v for v in self.votes if v.voter_id == voter_id)

    def clear(self) -> None:
        self.downloads.clear()
        self.edits.clear()
        self.votes.clear()
        self.punishments.clear()
