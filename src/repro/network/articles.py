"""Article store with versioned edits and voting rounds.

The collaboration network's documents.  Each article tracks

* a *quality* score (constructive accepted edits raise it, destructive
  accepted edits lower it — this is what the incentive scheme is supposed
  to protect),
* a version history of accepted edits,
* the set of peers holding **voting rights** on the article.  Per the paper
  "only successful editors of an article will get the right to vote on
  changes of that article"; at network birth the *founders* seed these sets
  (the paper's conclusion: "the first users, e.g. the founders of the
  network, are expected to have a strong interest to ensure the quality").

Edits flow through :class:`EditProposal` records so the engine can run a
weighted voting round per proposal.  Editing is rare per step (a handful of
proposals), so this layer favours clarity over vectorization; the hot loops
live in the sharing kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EditProposal", "Article", "ArticleStore"]


@dataclass
class EditProposal:
    """A pending change to an article."""

    article_id: int
    editor_id: int
    constructive: bool
    step: int


@dataclass
class Article:
    """One collaborative document."""

    article_id: int
    quality: float = 0.0
    n_versions: int = 0
    n_constructive_accepted: int = 0
    n_destructive_accepted: int = 0
    voter_ids: set[int] = field(default_factory=set)
    #: Array mirror of ``voter_ids``, rebuilt lazily after mutations so the
    #: per-proposal voting hot path runs pure array ops (the set is the
    #: source of truth; mutate it only through :meth:`record_accepted` or
    #: :meth:`invalidate_voter_cache`).
    _voter_cache: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    def record_accepted(self, editor_id: int, constructive: bool) -> None:
        self.n_versions += 1
        if constructive:
            self.quality += 1.0
            self.n_constructive_accepted += 1
        else:
            self.quality -= 1.0
            self.n_destructive_accepted += 1
        # A successful editor gains voting rights on this article.
        self.voter_ids.add(int(editor_id))
        self._voter_cache = None

    def invalidate_voter_cache(self) -> None:
        """Call after mutating ``voter_ids`` directly."""
        self._voter_cache = None

    def voter_array(self) -> np.ndarray:
        """The qualified voters as an int64 array (cached between edits)."""
        if self._voter_cache is None or self._voter_cache.size != len(
            self.voter_ids
        ):
            self._voter_cache = np.fromiter(
                self.voter_ids, dtype=np.int64, count=len(self.voter_ids)
            )
        return self._voter_cache


class ArticleStore:
    """All articles of the network plus founder bootstrapping."""

    def __init__(
        self,
        n_articles: int,
        n_peers: int,
        rng: np.random.Generator,
        founders_per_article: int = 5,
    ) -> None:
        if n_articles < 1:
            raise ValueError("n_articles must be >= 1")
        if founders_per_article < 1:
            raise ValueError("founders_per_article must be >= 1")
        if founders_per_article > n_peers:
            raise ValueError("founders_per_article cannot exceed n_peers")
        self.n_articles = int(n_articles)
        self.n_peers = int(n_peers)
        self.articles = [Article(article_id=i) for i in range(self.n_articles)]
        for art in self.articles:
            founders = rng.choice(n_peers, size=founders_per_article, replace=False)
            art.voter_ids.update(int(f) for f in founders)

    def __len__(self) -> int:
        return self.n_articles

    def __getitem__(self, article_id: int) -> Article:
        return self.articles[article_id]

    def sample_articles(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Uniformly sample article ids (with replacement) for new edits."""
        return rng.integers(0, self.n_articles, size=n)

    def eligible_voters(
        self, article_id: int, can_vote_mask: np.ndarray, exclude: int | None = None
    ) -> np.ndarray:
        """Voter ids for one article, filtered by global voting rights.

        The proposing editor is excluded from voting on their own edit.
        Runs on the article's cached voter array (voter sets only change
        when an edit is accepted), so the per-proposal hot path is a
        couple of gathers rather than Python set algebra.
        """
        arr = self.articles[article_id].voter_array()
        if not arr.size:
            return np.empty(0, dtype=np.int64)
        keep = can_vote_mask[arr]
        if exclude is not None:
            keep &= arr != exclude
        return arr[keep]

    def apply_outcome(
        self, proposal: EditProposal, accepted: bool
    ) -> None:
        """Commit an accepted edit (rejected proposals leave no trace)."""
        if accepted:
            self.articles[proposal.article_id].record_accepted(
                proposal.editor_id, proposal.constructive
            )

    # ------------------------------------------------------------------
    # Aggregate views used by the metrics collector
    # ------------------------------------------------------------------
    def total_quality(self) -> float:
        return float(sum(a.quality for a in self.articles))

    def accepted_counts(self) -> tuple[int, int]:
        """(constructive, destructive) accepted edits across all articles."""
        good = sum(a.n_constructive_accepted for a in self.articles)
        bad = sum(a.n_destructive_accepted for a in self.articles)
        return good, bad
