"""Download-request sampling and bandwidth settlement.

Paper section IV: "At every time step, a peer downloads an article from
another peer with probability P = 1/N_S, where N_S is the number of peers
that offer any files for download."  We read this as: each peer issues a
download request with probability ``P`` and picks its source uniformly at
random among the ``N_S`` sharing peers (never itself).  ``P`` defaults to
the paper's ``1/N_S`` but is configurable (``download_probability``) so the
download intensity can be studied independently.

Settlement: all requests targeting the same source compete for that
source's upload bandwidth; the incentive scheme (or the equal-split
baseline) decides the shares.  The amount a downloader receives is
``offered_bandwidth[source] * share`` — a source offering nothing transfers
nothing, so free-riders throttle their *own* downloaders, which is exactly
the pressure the scheme exploits.

Everything here is vectorized over requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DownloadRequests",
    "sample_download_requests",
    "sample_download_requests_batch",
    "sample_download_requests_overlay",
    "settle_downloads",
]


@dataclass(frozen=True)
class DownloadRequests:
    """One step's download requests (parallel arrays)."""

    downloader_ids: np.ndarray  # int64
    source_ids: np.ndarray  # int64

    @property
    def n(self) -> int:
        return self.downloader_ids.size

    def __post_init__(self) -> None:
        if self.downloader_ids.shape != self.source_ids.shape:
            raise ValueError("downloader_ids and source_ids must align")


def sample_download_requests(
    rng: np.random.Generator,
    sharing_mask: np.ndarray,
    download_probability: float | None = None,
) -> DownloadRequests:
    """Draw this step's download requests.

    Parameters
    ----------
    sharing_mask:
        Boolean mask of peers currently offering files (the sources).
    download_probability:
        Per-peer request probability; ``None`` uses the paper's ``1/N_S``.
    """
    sharing_mask = np.asarray(sharing_mask, dtype=bool)
    n_peers = sharing_mask.size
    sources = np.flatnonzero(sharing_mask)
    n_s = sources.size
    empty = DownloadRequests(
        downloader_ids=np.empty(0, dtype=np.int64),
        source_ids=np.empty(0, dtype=np.int64),
    )
    if n_s == 0:
        return empty

    p = 1.0 / n_s if download_probability is None else float(download_probability)
    p = min(max(p, 0.0), 1.0)
    wants = rng.random(n_peers) < p
    downloaders = np.flatnonzero(wants)
    if downloaders.size == 0:
        return empty

    # Uniform source choice among sharers; re-draw self-selections by
    # shifting to the next sharer (cheap and unbiased enough for n_s >= 2).
    choice_idx = rng.integers(0, n_s, size=downloaders.size)
    chosen = sources[choice_idx]
    if n_s > 1:
        self_hit = chosen == downloaders
        if np.any(self_hit):
            chosen[self_hit] = sources[(choice_idx[self_hit] + 1) % n_s]
    else:
        # Only one sharer: that sharer cannot download from itself.
        keep = chosen != downloaders
        downloaders, chosen = downloaders[keep], chosen[keep]

    return DownloadRequests(downloader_ids=downloaders, source_ids=chosen)


def sample_download_requests_overlay(
    rng: np.random.Generator,
    sharing_mask: np.ndarray,
    overlay,
    download_probability: float | None = None,
) -> DownloadRequests:
    """Overlay-constrained variant: sources must be *neighbouring* sharers.

    The paper's model is fully connected (any sharer is reachable); its
    future work is deployment on a real P2P overlay, where a peer only
    sees its neighbours.  ``overlay`` is a
    :class:`repro.network.overlay.OverlayNetwork`.

    Per requesting peer the source is uniform over its sharing neighbours;
    peers whose entire neighbourhood shares nothing simply issue no
    request this step (they are partition-starved — one of the effects an
    overlay introduces).
    """
    sharing_mask = np.asarray(sharing_mask, dtype=bool)
    n_peers = sharing_mask.size
    n_s = int(sharing_mask.sum())
    empty = DownloadRequests(
        downloader_ids=np.empty(0, dtype=np.int64),
        source_ids=np.empty(0, dtype=np.int64),
    )
    if n_s == 0:
        return empty
    p = 1.0 / n_s if download_probability is None else float(download_probability)
    p = min(max(p, 0.0), 1.0)
    wants = np.flatnonzero(rng.random(n_peers) < p)
    if wants.size == 0:
        return empty
    downloaders = []
    sources = []
    for d in wants:
        candidates = overlay.reachable_sharers(int(d), sharing_mask)
        candidates = candidates[candidates != d]
        if candidates.size == 0:
            continue
        downloaders.append(int(d))
        sources.append(int(candidates[rng.integers(0, candidates.size)]))
    if not downloaders:
        return empty
    return DownloadRequests(
        downloader_ids=np.asarray(downloaders, dtype=np.int64),
        source_ids=np.asarray(sources, dtype=np.int64),
    )


def sample_download_requests_batch(
    rngs,
    sharing_mask: np.ndarray,
    download_probability: float | None = None,
    overlays=None,
    kernels=None,
) -> DownloadRequests:
    """Replicate-axis request sampling: one request set over ``R`` stacked runs.

    ``sharing_mask`` is ``(R, N)``; ``rngs`` holds one generator per
    replicate.  Each replicate's requests are drawn with the *same* calls
    (and therefore the same stream consumption) as
    :func:`sample_download_requests` on that replicate alone, then the
    peer ids are offset by ``r * N`` into the flat ``R * N`` slot space so
    one :func:`settle_downloads` call (with ``n_peers = R * N``) settles
    all replicates at once — requests never cross replicate boundaries
    because bandwidth competition is grouped by source id.

    ``download_probability`` may be a per-replicate ``(R,)`` array (lane
    batching): each replicate's draw is thresholded against its own
    probability, exactly as its solo run would be.

    ``kernels`` is the :class:`~repro.sim.backends.base.KernelBackend`
    executing the post-draw matching fix-ups (``None`` = the numpy
    reference); the RNG draws themselves never enter a backend.
    """
    sharing_mask = np.asarray(sharing_mask, dtype=bool)
    if sharing_mask.ndim != 2:
        raise ValueError("sharing_mask must be (n_replicates, n_peers)")
    n_rep, n_peers = sharing_mask.shape
    if len(rngs) != n_rep:
        raise ValueError("need one rng per replicate")
    per_lane_p = np.ndim(download_probability) > 0

    def lane_p(r: int):
        return download_probability[r] if per_lane_p else download_probability

    empty = DownloadRequests(
        downloader_ids=np.empty(0, dtype=np.int64),
        source_ids=np.empty(0, dtype=np.int64),
    )
    if overlays is not None:
        dl_parts: list[np.ndarray] = []
        src_parts: list[np.ndarray] = []
        for r in range(n_rep):
            req = sample_download_requests_overlay(
                rngs[r], sharing_mask[r], overlays[r], lane_p(r)
            )
            if req.n:
                offset = r * n_peers
                dl_parts.append(req.downloader_ids + offset)
                src_parts.append(req.source_ids + offset)
        if not dl_parts:
            return empty
        return DownloadRequests(
            downloader_ids=np.concatenate(dl_parts),
            source_ids=np.concatenate(src_parts),
        )

    # Full-mesh fast path: only the RNG draws loop over replicates (each
    # replicate's stream consumption — a uniform vector, then source
    # choices sized to its requester count — matches the solo sampler
    # call for call); the id arithmetic runs flat across replicates.
    n_sharers = sharing_mask.sum(axis=1)  # N_S per replicate
    wants = np.zeros((n_rep, n_peers), dtype=bool)
    for r in range(n_rep):
        n_s = int(n_sharers[r])
        if n_s == 0:
            continue  # no draw, exactly like the solo sampler's early out
        p_r = lane_p(r)
        p = 1.0 / n_s if p_r is None else float(p_r)
        p = min(max(p, 0.0), 1.0)
        wants[r] = rngs[r].random(n_peers) < p
    downloaders = np.flatnonzero(wants.reshape(-1))  # global slot ids
    if downloaders.size == 0:
        return empty
    d_counts = wants.sum(axis=1)
    choice_parts = [
        rngs[r].integers(0, int(n_sharers[r]), size=int(d_counts[r]))
        for r in range(n_rep)
        if d_counts[r]
    ]
    choice_idx = np.concatenate(choice_parts)
    # Per-replicate segments of the flat (ascending) sharer list.
    sources_flat = np.flatnonzero(sharing_mask.reshape(-1))
    seg_starts = np.concatenate(([0], np.cumsum(n_sharers)[:-1]))
    req_start = np.repeat(seg_starts, d_counts)
    req_n_s = np.repeat(n_sharers, d_counts)
    if kernels is None:
        from ..sim.backends import default_kernels

        kernels = default_kernels()
    # Same fix-ups as the solo sampler: with several sharers a
    # self-selection shifts to the next one; a lone sharer cannot
    # download from itself (the request is dropped).
    downloaders, chosen = kernels.match_sources(
        downloaders, choice_idx, sources_flat, req_start, req_n_s
    )
    if downloaders.size == 0:
        return empty
    return DownloadRequests(downloader_ids=downloaders, source_ids=chosen)


def settle_downloads(
    requests: DownloadRequests,
    shares: np.ndarray,
    offered_bandwidth: np.ndarray,
    upload_capacity: np.ndarray,
    n_peers: int,
    kernels=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convert shares into transferred bandwidth.

    The kernel is replicate-agnostic: with requests from
    :func:`sample_download_requests_batch` and ``n_peers = R * N`` it
    settles ``R`` stacked replicates in one scatter, bit-identically to
    settling each replicate alone (slot ranges are disjoint and the
    per-source accumulation order within a replicate is preserved).

    Returns
    -------
    received : per-peer download bandwidth received this step.
    served : per-peer upload bandwidth actually served this step (this is
        the "actually shared bandwidth" that feeds ``C_S``).
    """
    if requests.n == 0:
        return (
            np.zeros(n_peers, dtype=np.float64),
            np.zeros(n_peers, dtype=np.float64),
        )
    shares = np.asarray(shares, dtype=np.float64)
    if shares.shape != (requests.n,):
        raise ValueError("shares must align with requests")
    if kernels is None:
        from ..sim.backends import default_kernels

        kernels = default_kernels()
    return kernels.settle_downloads(
        requests.downloader_ids,
        requests.source_ids,
        shares,
        offered_bandwidth,
        upload_capacity,
        n_peers,
    )
