"""Download-request sampling and bandwidth settlement.

Paper section IV: "At every time step, a peer downloads an article from
another peer with probability P = 1/N_S, where N_S is the number of peers
that offer any files for download."  We read this as: each peer issues a
download request with probability ``P`` and picks its source uniformly at
random among the ``N_S`` sharing peers (never itself).  ``P`` defaults to
the paper's ``1/N_S`` but is configurable (``download_probability``) so the
download intensity can be studied independently.

Settlement: all requests targeting the same source compete for that
source's upload bandwidth; the incentive scheme (or the equal-split
baseline) decides the shares.  The amount a downloader receives is
``offered_bandwidth[source] * share`` — a source offering nothing transfers
nothing, so free-riders throttle their *own* downloaders, which is exactly
the pressure the scheme exploits.

Everything here is vectorized over requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DownloadRequests",
    "sample_download_requests",
    "sample_download_requests_overlay",
    "settle_downloads",
]


@dataclass(frozen=True)
class DownloadRequests:
    """One step's download requests (parallel arrays)."""

    downloader_ids: np.ndarray  # int64
    source_ids: np.ndarray  # int64

    @property
    def n(self) -> int:
        return self.downloader_ids.size

    def __post_init__(self) -> None:
        if self.downloader_ids.shape != self.source_ids.shape:
            raise ValueError("downloader_ids and source_ids must align")


def sample_download_requests(
    rng: np.random.Generator,
    sharing_mask: np.ndarray,
    download_probability: float | None = None,
) -> DownloadRequests:
    """Draw this step's download requests.

    Parameters
    ----------
    sharing_mask:
        Boolean mask of peers currently offering files (the sources).
    download_probability:
        Per-peer request probability; ``None`` uses the paper's ``1/N_S``.
    """
    sharing_mask = np.asarray(sharing_mask, dtype=bool)
    n_peers = sharing_mask.size
    sources = np.flatnonzero(sharing_mask)
    n_s = sources.size
    empty = DownloadRequests(
        downloader_ids=np.empty(0, dtype=np.int64),
        source_ids=np.empty(0, dtype=np.int64),
    )
    if n_s == 0:
        return empty

    p = 1.0 / n_s if download_probability is None else float(download_probability)
    p = min(max(p, 0.0), 1.0)
    wants = rng.random(n_peers) < p
    downloaders = np.flatnonzero(wants)
    if downloaders.size == 0:
        return empty

    # Uniform source choice among sharers; re-draw self-selections by
    # shifting to the next sharer (cheap and unbiased enough for n_s >= 2).
    choice_idx = rng.integers(0, n_s, size=downloaders.size)
    chosen = sources[choice_idx]
    if n_s > 1:
        self_hit = chosen == downloaders
        if np.any(self_hit):
            chosen[self_hit] = sources[(choice_idx[self_hit] + 1) % n_s]
    else:
        # Only one sharer: that sharer cannot download from itself.
        keep = chosen != downloaders
        downloaders, chosen = downloaders[keep], chosen[keep]

    return DownloadRequests(downloader_ids=downloaders, source_ids=chosen)


def sample_download_requests_overlay(
    rng: np.random.Generator,
    sharing_mask: np.ndarray,
    overlay,
    download_probability: float | None = None,
) -> DownloadRequests:
    """Overlay-constrained variant: sources must be *neighbouring* sharers.

    The paper's model is fully connected (any sharer is reachable); its
    future work is deployment on a real P2P overlay, where a peer only
    sees its neighbours.  ``overlay`` is a
    :class:`repro.network.overlay.OverlayNetwork`.

    Per requesting peer the source is uniform over its sharing neighbours;
    peers whose entire neighbourhood shares nothing simply issue no
    request this step (they are partition-starved — one of the effects an
    overlay introduces).
    """
    sharing_mask = np.asarray(sharing_mask, dtype=bool)
    n_peers = sharing_mask.size
    n_s = int(sharing_mask.sum())
    empty = DownloadRequests(
        downloader_ids=np.empty(0, dtype=np.int64),
        source_ids=np.empty(0, dtype=np.int64),
    )
    if n_s == 0:
        return empty
    p = 1.0 / n_s if download_probability is None else float(download_probability)
    p = min(max(p, 0.0), 1.0)
    wants = np.flatnonzero(rng.random(n_peers) < p)
    if wants.size == 0:
        return empty
    downloaders = []
    sources = []
    for d in wants:
        candidates = overlay.reachable_sharers(int(d), sharing_mask)
        candidates = candidates[candidates != d]
        if candidates.size == 0:
            continue
        downloaders.append(int(d))
        sources.append(int(candidates[rng.integers(0, candidates.size)]))
    if not downloaders:
        return empty
    return DownloadRequests(
        downloader_ids=np.asarray(downloaders, dtype=np.int64),
        source_ids=np.asarray(sources, dtype=np.int64),
    )


def settle_downloads(
    requests: DownloadRequests,
    shares: np.ndarray,
    offered_bandwidth: np.ndarray,
    upload_capacity: np.ndarray,
    n_peers: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Convert shares into transferred bandwidth.

    Returns
    -------
    received : per-peer download bandwidth received this step.
    served : per-peer upload bandwidth actually served this step (this is
        the "actually shared bandwidth" that feeds ``C_S``).
    """
    received = np.zeros(n_peers, dtype=np.float64)
    served = np.zeros(n_peers, dtype=np.float64)
    if requests.n == 0:
        return received, served
    shares = np.asarray(shares, dtype=np.float64)
    if shares.shape != (requests.n,):
        raise ValueError("shares must align with requests")
    capacity = offered_bandwidth[requests.source_ids] * upload_capacity[
        requests.source_ids
    ]
    amount = capacity * shares
    # A downloader can issue at most one request per step, so a plain
    # scatter is enough for `received`; sources may serve many requests.
    received[requests.downloader_ids] = amount
    np.add.at(served, requests.source_ids, amount)
    return received, served
