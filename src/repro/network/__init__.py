"""P2P collaboration-network substrate: peers, articles, bandwidth, overlay."""

from .articles import Article, ArticleStore, EditProposal
from .bandwidth import DownloadRequests, sample_download_requests, settle_downloads
from .events import (
    DownloadEvent,
    EditEvent,
    EventLog,
    PunishmentEvent,
    VoteEvent,
)
from .overlay import ChurnEvent, ChurnModel, OverlayNetwork
from .peer import ALTRUISTIC, IRRATIONAL, RATIONAL, TYPE_NAMES, PeerArrays

__all__ = [
    "Article",
    "ArticleStore",
    "EditProposal",
    "DownloadRequests",
    "sample_download_requests",
    "settle_downloads",
    "DownloadEvent",
    "EditEvent",
    "EventLog",
    "PunishmentEvent",
    "VoteEvent",
    "ChurnEvent",
    "ChurnModel",
    "OverlayNetwork",
    "ALTRUISTIC",
    "IRRATIONAL",
    "RATIONAL",
    "TYPE_NAMES",
    "PeerArrays",
]
