"""P2P overlay topologies and churn.

The paper's simulation treats the overlay as fully connected (any peer can
download from any sharer), and so does our engine.  Real deployments are
not, and the trust-propagation substrate (:mod:`repro.trust`) operates on a
genuine overlay graph; this module builds those graphs and models churn
(joins / leaves / whitewashing identity resets).

Graphs are built with :mod:`networkx`; the adjacency is exported as index
arrays so hot code never touches networkx objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["OverlayNetwork", "ChurnModel", "ChurnEvent"]


class OverlayNetwork:
    """Static overlay graph with neighbour queries.

    Supported generators: ``full`` (clique, the paper's implicit model),
    ``random`` (Erdős–Rényi G(n, p)), ``smallworld`` (Watts–Strogatz) and
    ``scalefree`` (Barabási–Albert).
    """

    def __init__(
        self,
        n_peers: int,
        kind: str = "full",
        rng: np.random.Generator | None = None,
        degree: int = 8,
        rewire_p: float = 0.1,
    ) -> None:
        if n_peers < 2:
            raise ValueError("need at least two peers")
        self.n_peers = int(n_peers)
        self.kind = kind
        rng = rng if rng is not None else np.random.default_rng()
        seed = int(rng.integers(0, 2**31 - 1))
        if kind == "full":
            graph = nx.complete_graph(self.n_peers)
        elif kind == "random":
            p = min(1.0, degree / max(self.n_peers - 1, 1))
            graph = nx.gnp_random_graph(self.n_peers, p, seed=seed)
        elif kind == "smallworld":
            k = max(2, min(degree, self.n_peers - 1) // 2 * 2)
            graph = nx.watts_strogatz_graph(self.n_peers, k, rewire_p, seed=seed)
        elif kind == "scalefree":
            m = max(1, min(degree // 2, self.n_peers - 1))
            graph = nx.barabasi_albert_graph(self.n_peers, m, seed=seed)
        else:
            raise ValueError(f"unknown overlay kind: {kind!r}")
        # Guarantee connectivity so every peer can reach every sharer.
        if not nx.is_connected(graph):
            components = [sorted(c) for c in nx.connected_components(graph)]
            for a, b in zip(components, components[1:]):
                graph.add_edge(a[0], b[0])
        self.graph = graph
        # CSR-like adjacency for vectorized neighbour lookups.
        neighbor_lists = [np.fromiter(graph.neighbors(i), dtype=np.int64) for i in range(self.n_peers)]
        self._offsets = np.zeros(self.n_peers + 1, dtype=np.int64)
        self._offsets[1:] = np.cumsum([len(nl) for nl in neighbor_lists])
        self._flat = (
            np.concatenate(neighbor_lists)
            if neighbor_lists
            else np.empty(0, dtype=np.int64)
        )

    def neighbors(self, peer_id: int) -> np.ndarray:
        """Neighbour indices of one peer (a view into the CSR buffer)."""
        return self._flat[self._offsets[peer_id] : self._offsets[peer_id + 1]]

    def degree(self, peer_id: int) -> int:
        return int(self._offsets[peer_id + 1] - self._offsets[peer_id])

    def average_degree(self) -> float:
        return float(self._flat.size) / self.n_peers

    def reachable_sharers(self, peer_id: int, sharing_mask: np.ndarray) -> np.ndarray:
        """Neighbouring peers that currently share files."""
        nbrs = self.neighbors(peer_id)
        return nbrs[sharing_mask[nbrs]]


@dataclass(frozen=True)
class ChurnEvent:
    """One churn action applied to the population this step."""

    kind: str  # "leave" | "join" | "whitewash"
    peer_id: int


class ChurnModel:
    """Memoryless churn: each step a peer may leave, rejoin or whitewash.

    *Leaving* flips ``online`` off; *joining* flips it back on; a
    *whitewash* models the paper's R_min trade-off — the peer discards its
    identity, which the caller must translate into a contribution reset
    (fresh identity starts at ``R_min`` again).
    """

    def __init__(
        self,
        leave_rate: float = 0.0,
        join_rate: float = 0.0,
        whitewash_rate: float = 0.0,
    ) -> None:
        for name, v in (
            ("leave_rate", leave_rate),
            ("join_rate", join_rate),
            ("whitewash_rate", whitewash_rate),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.leave_rate = leave_rate
        self.join_rate = join_rate
        self.whitewash_rate = whitewash_rate

    @property
    def active(self) -> bool:
        return (self.leave_rate + self.join_rate + self.whitewash_rate) > 0.0

    def step(
        self, rng: np.random.Generator, online: np.ndarray
    ) -> list[ChurnEvent]:
        """Sample churn events and apply online/offline flips in place."""
        events: list[ChurnEvent] = []
        if not self.active:
            return events
        n = online.size
        u = rng.random(n)
        leaving = np.flatnonzero(online & (u < self.leave_rate))
        joining = np.flatnonzero(~online & (u < self.join_rate))
        online[leaving] = False
        online[joining] = True
        events.extend(ChurnEvent("leave", int(i)) for i in leaving)
        events.extend(ChurnEvent("join", int(i)) for i in joining)
        if self.whitewash_rate > 0.0:
            w = rng.random(n)
            washing = np.flatnonzero(online & (w < self.whitewash_rate))
            events.extend(ChurnEvent("whitewash", int(i)) for i in washing)
        return events
