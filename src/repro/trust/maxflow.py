"""Maximum-flow trust (Feldman et al., EC 2004).

The maximum reputation a source may assign to a target without violating
anyone's local trust constraints equals the max flow from source to target
in the directed graph whose edge capacities are the local trust values.
Unlike EigenTrust, max-flow trust is robust to collusion: a clique can
inflate edges among *its own members* arbitrarily without raising the flow
that honest peers can push towards it.

We implement Edmonds–Karp (BFS augmenting paths) from scratch on a dense
capacity matrix — population sizes here are O(100), so the dense O(V·E^2)
bound is comfortably fast — and validate it against networkx in the tests.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["max_flow_trust", "pairwise_trust_matrix"]


def max_flow_trust(
    capacity: np.ndarray, source: int, target: int
) -> float:
    """Edmonds–Karp max flow on a dense capacity matrix.

    ``capacity[i, j]`` is the local trust peer ``i`` extends to ``j``
    (non-negative; the diagonal is ignored).
    """
    cap = np.array(capacity, dtype=np.float64, copy=True)
    n = cap.shape[0]
    if cap.shape != (n, n):
        raise ValueError("capacity must be square")
    if np.any(cap < 0):
        raise ValueError("capacities must be non-negative")
    if not (0 <= source < n and 0 <= target < n):
        raise IndexError("source/target out of range")
    if source == target:
        raise ValueError("source and target must differ")
    np.fill_diagonal(cap, 0.0)

    total_flow = 0.0
    parent = np.empty(n, dtype=np.int64)
    while True:
        # BFS for the shortest augmenting path in the residual graph.
        parent.fill(-1)
        parent[source] = source
        queue: deque[int] = deque([source])
        while queue and parent[target] == -1:
            u = queue.popleft()
            # Vectorized frontier expansion: unvisited nodes with residual.
            frontier = np.flatnonzero((cap[u] > 1e-15) & (parent == -1))
            parent[frontier] = u
            queue.extend(int(v) for v in frontier)
            if parent[target] != -1:
                break
        if parent[target] == -1:
            return total_flow
        # Find the bottleneck along the path, then augment.
        bottleneck = np.inf
        v = target
        while v != source:
            u = int(parent[v])
            bottleneck = min(bottleneck, cap[u, v])
            v = u
        v = target
        while v != source:
            u = int(parent[v])
            cap[u, v] -= bottleneck
            cap[v, u] += bottleneck
            v = u
        total_flow += bottleneck


def pairwise_trust_matrix(
    capacity: np.ndarray, sources: np.ndarray | None = None
) -> np.ndarray:
    """Max-flow trust from each source to every other peer.

    Quadratic in the number of peers per source — intended for analysis
    and the trust-propagation example, not for the inner loop.
    """
    cap = np.asarray(capacity, dtype=np.float64)
    n = cap.shape[0]
    srcs = np.arange(n) if sources is None else np.asarray(sources, dtype=np.int64)
    out = np.zeros((srcs.size, n), dtype=np.float64)
    for si, s in enumerate(srcs):
        for t in range(n):
            if t == s:
                continue
            out[si, t] = max_flow_trust(cap, int(s), t)
    return out
