"""Reputation-propagation substrate: EigenTrust, MaxFlow trust, histories.

The paper *assumes* "a mechanism to safely propagate reputation values in a
P2P network"; this package provides the two mechanisms its related-work
section describes, so the assumption can be replaced by a real
implementation (see ``examples/trust_propagation.py``).
"""

from .eigentrust import EigenTrustResult, eigentrust
from .history import InteractionRecord, PrivateHistory, SharedHistory
from .local_trust import LocalTrustMatrix, normalize_trust
from .maxflow import max_flow_trust, pairwise_trust_matrix

__all__ = [
    "EigenTrustResult",
    "eigentrust",
    "InteractionRecord",
    "PrivateHistory",
    "SharedHistory",
    "LocalTrustMatrix",
    "normalize_trust",
    "max_flow_trust",
    "pairwise_trust_matrix",
]
