"""EigenTrust global trust computation (Kamvar et al., WWW 2003).

The paper's related-work section names EigenTrust as the canonical way to
propagate reputation values: the global trust vector ``t`` is the left
principal eigenvector of the normalized local-trust matrix ``C``.  The
practical iteration (with pre-trusted-peer damping ``a``) is

    ``t_{k+1} = (1 - a) * C^T t_k + a * p``

which converges because the iteration matrix is a contraction for
``a > 0``.  The paper also notes EigenTrust's weakness: colluders can boost
each other — demonstrated in ``examples/trust_propagation.py`` and tested
in ``tests/trust/test_eigentrust.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EigenTrustResult", "eigentrust"]


@dataclass(frozen=True)
class EigenTrustResult:
    """Converged global trust values plus iteration diagnostics."""

    trust: np.ndarray
    iterations: int
    converged: bool
    residual: float


def eigentrust(
    c_matrix: np.ndarray,
    pretrusted: np.ndarray | None = None,
    alpha: float = 0.1,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> EigenTrustResult:
    """Compute global trust values by damped power iteration.

    Parameters
    ----------
    c_matrix:
        Row-normalized local trust matrix ``C`` (rows sum to 1; see
        :func:`repro.trust.local_trust.normalize_trust`).
    pretrusted:
        Prior distribution ``p`` over pre-trusted peers; uniform if omitted.
    alpha:
        Damping weight ``a`` of the prior (EigenTrust's collusion guard).
    """
    c = np.asarray(c_matrix, dtype=np.float64)
    n = c.shape[0]
    if c.shape != (n, n):
        raise ValueError("c_matrix must be square")
    row_sums = c.sum(axis=1)
    if not np.allclose(row_sums[row_sums > 0], 1.0, atol=1e-8):
        raise ValueError("c_matrix rows must sum to 1 (or be all-zero)")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if pretrusted is None:
        p = np.full(n, 1.0 / n)
    else:
        p = np.asarray(pretrusted, dtype=np.float64)
        if p.shape != (n,) or np.any(p < 0) or not np.isclose(p.sum(), 1.0):
            raise ValueError("pretrusted must be a probability vector")

    t = p.copy()
    ct = c.T.copy()  # contiguous transpose: the iteration is a matvec on C^T
    residual = np.inf
    for k in range(1, max_iter + 1):
        t_next = (1.0 - alpha) * (ct @ t) + alpha * p
        residual = float(np.abs(t_next - t).sum())
        t = t_next
        if residual < tol:
            return EigenTrustResult(trust=t, iterations=k, converged=True, residual=residual)
    return EigenTrustResult(trust=t, iterations=max_iter, converged=False, residual=residual)
