"""Private and shared interaction histories (paper section II-B2).

Trust-based incentive schemes divide into *private history* (each peer only
remembers its own direct interactions — TFT territory) and *shared history*
(all actions are globally visible, enabling policies against strangers).
The paper's scheme needs a shared history because collaboration relations
are non-direct.

:class:`PrivateHistory` answers "what did *I* observe about peer j?";
:class:`SharedHistory` answers "what did *anyone* observe about peer j?".
Both are thin, well-tested stores the trust algorithms and the TFT
comparison example build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InteractionRecord", "PrivateHistory", "SharedHistory"]


@dataclass(frozen=True)
class InteractionRecord:
    step: int
    observer_id: int
    subject_id: int
    satisfactory: bool


class PrivateHistory:
    """Per-observer direct-experience counters.

    Dense (n, n) counters of satisfactory/unsatisfactory interactions:
    ``observer -> subject``.  Memory is O(n^2) which is fine for the
    population sizes studied here and keeps every query vectorized.
    """

    def __init__(self, n_peers: int):
        self.n_peers = int(n_peers)
        self.sat = np.zeros((n_peers, n_peers), dtype=np.int64)
        self.unsat = np.zeros((n_peers, n_peers), dtype=np.int64)

    def record(
        self, observers: np.ndarray, subjects: np.ndarray, satisfactory: np.ndarray
    ) -> None:
        observers = np.asarray(observers, dtype=np.int64)
        subjects = np.asarray(subjects, dtype=np.int64)
        satisfactory = np.asarray(satisfactory, dtype=bool)
        good = satisfactory
        np.add.at(self.sat, (observers[good], subjects[good]), 1)
        np.add.at(self.unsat, (observers[~good], subjects[~good]), 1)

    def observed(self, observer_id: int, subject_id: int) -> bool:
        """Did ``observer`` ever interact with ``subject`` directly?"""
        return bool(
            self.sat[observer_id, subject_id] + self.unsat[observer_id, subject_id] > 0
        )

    def opinion(self, observer_id: int, subject_id: int) -> float:
        """Fraction of satisfactory interactions; 0.5 when unobserved."""
        s = self.sat[observer_id, subject_id]
        u = self.unsat[observer_id, subject_id]
        total = s + u
        return float(s) / total if total else 0.5

    def coverage(self) -> float:
        """Fraction of ordered peer pairs with at least one observation.

        TFT needs high coverage (direct relations); collaboration networks
        have low coverage — the quantitative version of the paper's
        motivation, measured in ``examples/tft_vs_reputation.py``.
        """
        seen = (self.sat + self.unsat) > 0
        np.fill_diagonal(seen, False)
        possible = self.n_peers * (self.n_peers - 1)
        return float(seen.sum()) / possible if possible else 0.0


class SharedHistory:
    """Globally shared record of interaction outcomes per subject."""

    def __init__(self, n_peers: int):
        self.n_peers = int(n_peers)
        self.sat = np.zeros(n_peers, dtype=np.int64)
        self.unsat = np.zeros(n_peers, dtype=np.int64)
        self._records: list[InteractionRecord] = []
        self.keep_records = False

    def record(
        self,
        observers: np.ndarray,
        subjects: np.ndarray,
        satisfactory: np.ndarray,
        step: int = 0,
    ) -> None:
        subjects = np.asarray(subjects, dtype=np.int64)
        satisfactory = np.asarray(satisfactory, dtype=bool)
        np.add.at(self.sat, subjects[satisfactory], 1)
        np.add.at(self.unsat, subjects[~satisfactory], 1)
        if self.keep_records:
            observers = np.asarray(observers, dtype=np.int64)
            self._records.extend(
                InteractionRecord(step, int(o), int(s), bool(g))
                for o, s, g in zip(observers, subjects, satisfactory)
            )

    def opinions(self) -> np.ndarray:
        """Global satisfaction ratio per subject; 0.5 when unobserved."""
        total = self.sat + self.unsat
        out = np.full(self.n_peers, 0.5)
        seen = total > 0
        out[seen] = self.sat[seen] / total[seen]
        return out

    @property
    def records(self) -> list[InteractionRecord]:
        return self._records
