"""Local trust accounting shared by the propagation algorithms.

EigenTrust-style local trust: peer *i* rates peer *j* by
``s_ij = sat(i, j) - unsat(i, j)`` (satisfactory minus unsatisfactory
interactions), floored at zero and normalized per row:

    ``c_ij = max(s_ij, 0) / sum_j max(s_ij, 0)``

Rows without any positive experience fall back to a prior distribution
(uniform, or concentrated on pre-trusted peers), exactly as in Kamvar et
al. (WWW 2003).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LocalTrustMatrix", "normalize_trust"]


def normalize_trust(
    scores: np.ndarray, prior: np.ndarray | None = None
) -> np.ndarray:
    """Row-normalize raw trust scores into the EigenTrust ``C`` matrix."""
    s = np.maximum(np.asarray(scores, dtype=np.float64), 0.0)
    n = s.shape[0]
    if s.shape != (n, n):
        raise ValueError("scores must be a square matrix")
    if prior is None:
        prior = np.full(n, 1.0 / n)
    else:
        prior = np.asarray(prior, dtype=np.float64)
        if prior.shape != (n,) or not np.isclose(prior.sum(), 1.0):
            raise ValueError("prior must be a probability vector of length n")
    row_sums = s.sum(axis=1, keepdims=True)
    c = np.divide(s, row_sums, out=np.zeros_like(s), where=row_sums > 0)
    empty_rows = row_sums[:, 0] == 0
    if np.any(empty_rows):
        c[empty_rows] = prior
    return c


class LocalTrustMatrix:
    """Accumulates interaction outcomes into a raw trust-score matrix."""

    def __init__(self, n_peers: int):
        if n_peers < 1:
            raise ValueError("n_peers must be >= 1")
        self.n_peers = int(n_peers)
        self.sat = np.zeros((n_peers, n_peers), dtype=np.int64)
        self.unsat = np.zeros((n_peers, n_peers), dtype=np.int64)

    def record(
        self,
        raters: np.ndarray,
        ratees: np.ndarray,
        satisfactory: np.ndarray,
    ) -> None:
        """Record a batch of interactions (vectorized scatter)."""
        raters = np.asarray(raters, dtype=np.int64)
        ratees = np.asarray(ratees, dtype=np.int64)
        satisfactory = np.asarray(satisfactory, dtype=bool)
        if not (raters.shape == ratees.shape == satisfactory.shape):
            raise ValueError("batch arrays must align")
        if np.any(raters == ratees):
            raise ValueError("self-ratings are not allowed")
        good = satisfactory
        np.add.at(self.sat, (raters[good], ratees[good]), 1)
        np.add.at(self.unsat, (raters[~good], ratees[~good]), 1)

    def scores(self) -> np.ndarray:
        """Raw local scores ``s_ij = sat - unsat`` (diagonal forced to 0)."""
        s = (self.sat - self.unsat).astype(np.float64)
        np.fill_diagonal(s, 0.0)
        return s

    def matrix(self, prior: np.ndarray | None = None) -> np.ndarray:
        """The normalized EigenTrust ``C`` matrix."""
        return normalize_trust(self.scores(), prior)
