"""Counters, gauges and histograms with a Prometheus-style exposition.

The instrument model is deliberately the smallest one that covers the
engine's needs (pure stdlib, no client library):

* :class:`Counter`   — monotonically increasing totals (``_total`` names);
* :class:`Gauge`     — a settable level (queue depth, worker count);
* :class:`Histogram` — cumulative fixed-bucket observation counts plus
  ``sum``/``count``, Prometheus ``le`` semantics (each bucket counts
  observations ``<=`` its upper bound; ``+Inf`` is implicit).

Instruments live in a :class:`MetricsRegistry`, which hands out
get-or-create handles (`counter()`/`gauge()`/`histogram()`), optionally
labelled — one child per distinct label set, addressed positionally by
sorted label items so ``labels(a=1, b=2)`` and ``labels(b=2, a=1)`` are
the same child.  :meth:`MetricsRegistry.exposition` renders the classic
text format (``# HELP``/``# TYPE`` plus one sample line per child);
:meth:`MetricsRegistry.snapshot` returns the same data as a JSON-able
dict for the persisted telemetry artifact.

Example::

    >>> from repro.obs.metrics import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> reg.counter("sweep_cache_hits_total", "Cache-served slots").inc()
    >>> reg.gauge("sweep_workers", "Pool width").set(4)
    >>> h = reg.histogram("task_seconds", "Task wall time", buckets=(0.1, 1.0))
    >>> h.observe(0.25)
    >>> "sweep_cache_hits_total 1" in reg.exposition()
    True
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-flavoured: the engine's
#: observations range from sub-millisecond phase slices to minute-scale
#: sweep tasks).  ``+Inf`` is always appended implicitly.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (level, depth, width)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current level."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the current level by ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Shift the current level down by ``amount``."""
        self.value -= amount


class Histogram:
    """Fixed-bucket observation counts with Prometheus ``le`` semantics.

    ``bucket_counts[i]`` is *cumulative*: the number of observations
    ``<= buckets[i]``; the implicit ``+Inf`` bucket equals ``count``.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into every bucket it falls under."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                for j in range(i, len(self.buckets)):
                    self.bucket_counts[j] += 1
                break

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN before the first one)."""
        return self.sum / self.count if self.count else math.nan


#: ``(name, ((label, value), ...))`` — one registry key per child.
_ChildKey = tuple[str, tuple[tuple[str, str], ...]]

_TYPES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """Get-or-create home of every instrument, with text exposition."""

    def __init__(self) -> None:
        self._children: dict[_ChildKey, Any] = {}
        self._families: dict[str, tuple[str, str]] = {}  # name -> (type, help)

    # ------------------------------------------------------------------
    # Instrument handles
    # ------------------------------------------------------------------
    def _get(self, cls: type, name: str, help_: str, labels: dict | None, **kw: Any):
        """Shared get-or-create path for the three instrument kinds."""
        kind = _TYPES[cls]
        family = self._families.get(name)
        if family is None:
            self._families[name] = (kind, help_)
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {family[0]}"
            )
        key = (name, tuple(sorted((k, str(v)) for k, v in (labels or {}).items())))
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = cls(**kw)
        return child

    def counter(self, name: str, help_: str = "", **labels: Any) -> Counter:
        """The counter child for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, help_, labels)

    def gauge(self, name: str, help_: str = "", **labels: Any) -> Gauge:
        """The gauge child for ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, help_, labels)

    def histogram(
        self,
        name: str,
        help_: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram child for ``(name, labels)``, created on first use.

        ``buckets`` applies on creation only; later calls return the
        existing child unchanged.
        """
        return self._get(Histogram, name, help_, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def exposition(self) -> str:
        """Prometheus text-format rendering of every instrument."""
        lines: list[str] = []
        for name in sorted(self._families):
            kind, help_ = self._families[name]
            if help_:
                lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {kind}")
            children = sorted(
                (k, v) for k, v in self._children.items() if k[0] == name
            )
            for (_, labels), child in children:
                base = _render_labels(labels)
                if isinstance(child, Histogram):
                    for bound, n in zip(child.buckets, child.bucket_counts):
                        le = _render_labels(labels + (("le", _fmt_num(bound)),))
                        lines.append(f"{name}_bucket{le} {n}")
                    inf = _render_labels(labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{inf} {child.count}")
                    lines.append(f"{name}_sum{base} {_fmt_num(child.sum)}")
                    lines.append(f"{name}_count{base} {child.count}")
                else:
                    lines.append(f"{name}{base} {_fmt_num(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of every instrument (for the telemetry artifact)."""
        out: dict[str, Any] = {}
        for (name, labels), child in sorted(self._children.items()):
            kind = self._families[name][0]
            entry: dict[str, Any] = {"type": kind}
            if labels:
                entry["labels"] = dict(labels)
            if isinstance(child, Histogram):
                entry["sum"] = child.sum
                entry["count"] = child.count
                entry["buckets"] = {
                    _fmt_num(b): n
                    for b, n in zip(child.buckets, child.bucket_counts)
                }
            else:
                entry["value"] = child.value
            out.setdefault(name, []).append(entry)
        return out


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    """``{k="v",...}`` suffix for one label set (empty when unlabelled)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt_num(value: float) -> str:
    """Render a sample value, keeping integers integral."""
    if value == int(value) and abs(value) < 1e15 and not math.isinf(value):
        return str(int(value))
    return repr(float(value))
