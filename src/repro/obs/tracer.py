"""Span-based tracer: the engine's one timing code path.

Three layers, cheapest first:

* :class:`Stopwatch` — a ``perf_counter`` handle; every ad-hoc
  ``time.perf_counter()`` pair in the engine and the experiment runner
  now goes through this, traced or not.
* :class:`Tracer` — named **spans** aggregated in-process (call count,
  total/min/max wall seconds, optional ``tracemalloc`` byte deltas, and
  whatever dimensions the first recording attaches — lane count, agent
  count, step counts).  A bounded ring buffer of individual
  :class:`SpanEvent` records backs the JSONL trace export.  Disabled
  tracers record nothing and cost one attribute check at each
  instrumentation site — the phase kernels' hot path dispatches around
  the tracer entirely (see :mod:`repro.sim.phases`).
* a process-global **current tracer** (:func:`get_tracer` /
  :func:`set_tracer`) plus the :func:`tracing` context manager, which
  installs a fresh enabled tracer for the duration of a ``with`` block —
  the ``repro trace`` CLI and the tests use this, so instrumented code
  never needs a tracer argument threaded through.

The tracer is append-only and single-threaded by design: one tracer per
process, written by the simulation loop that owns the process.  Sweep
worker processes therefore trace independently; the coordinator's tracer
sees the coordinator-side spans (task dispatch, queue waits).

Example::

    >>> from repro.obs import tracing
    >>> with tracing() as tracer:
    ...     with tracer.span("demo/work", items=3):
    ...         pass
    >>> agg = tracer.spans()["demo/work"]
    >>> agg.count, agg.attrs["items"]
    (1, 3)
"""

from __future__ import annotations

import json
import time
import tracemalloc
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Any, Iterator

__all__ = [
    "OBS_SCHEMA_VERSION",
    "Stopwatch",
    "SpanAggregate",
    "SpanEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "write_events_jsonl",
]

#: Version of the tracer snapshot layout (embedded in every snapshot and
#: in the persisted telemetry artifact built from it).
OBS_SCHEMA_VERSION = 1

#: Default capacity of the per-tracer span-event ring buffer.
DEFAULT_RING_SIZE = 4096


class Stopwatch:
    """A started ``perf_counter`` handle; the repo's timing primitive."""

    __slots__ = ("started_at",)

    def __init__(self) -> None:
        self.started_at = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self.started_at

    def restart(self) -> float:
        """Return the elapsed seconds and restart the watch at now."""
        now = time.perf_counter()
        dt = now - self.started_at
        self.started_at = now
        return dt


@dataclass
class SpanAggregate:
    """In-process aggregate of every recording under one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    #: Sum of ``tracemalloc`` current-size deltas across recordings
    #: (0 unless the tracer tracks memory; may be negative — phases can
    #: free more than they allocate).
    mem_delta_bytes: int = 0
    #: Dimensions attached by the first recording (lanes, agents, steps
    #: ...).  Aggregation does not re-check them: a span name is expected
    #: to keep its dimensions for the tracer's lifetime.
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def mean_s(self) -> float:
        """Mean seconds per recording (0 before the first one)."""
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-able dump (snapshot / telemetry-artifact row)."""
        out: dict[str, Any] = {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
        }
        if self.mem_delta_bytes:
            out["mem_delta_bytes"] = self.mem_delta_bytes
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


@dataclass(frozen=True)
class SpanEvent:
    """One individual span occurrence (ring buffer / JSONL export row)."""

    name: str
    #: Start time relative to the tracer's construction, seconds.
    start_s: float
    duration_s: float

    def as_dict(self) -> dict[str, Any]:
        """JSON-able dump (one JSONL line)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }


class Tracer:
    """Collects span aggregates, span events and metrics for one process.

    ``enabled=False`` (the default of the ambient tracer) makes every
    recording a no-op; instrumented call sites check :attr:`enabled`
    once and skip all bookkeeping, which is what keeps the disabled
    overhead under the benchmarked 2% budget.

    ``trace_events=True`` additionally appends each span occurrence to a
    bounded ring buffer (newest kept) for the JSONL trace export.
    ``track_memory=True`` records per-span ``tracemalloc`` deltas; the
    tracer starts ``tracemalloc`` on demand and stops it again when
    :meth:`close`d if it was the one that started it.
    """

    def __init__(
        self,
        enabled: bool = False,
        trace_events: bool = False,
        track_memory: bool = False,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        from .metrics import MetricsRegistry

        self.enabled = enabled
        self.trace_events = trace_events
        self.track_memory = track_memory
        self.metrics = MetricsRegistry()
        self.events: deque[SpanEvent] = deque(maxlen=ring_size)
        self._spans: dict[str, SpanAggregate] = {}
        self._epoch = time.perf_counter()
        self._started_tracemalloc = False
        if track_memory and enabled and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        duration_s: float,
        attrs: dict[str, Any] | None = None,
        mem_delta: int = 0,
    ) -> None:
        """Fold one span occurrence into the aggregates (and the ring).

        This is the fast path the traced step loop calls directly with a
        pre-measured duration; :meth:`span` wraps it for ``with``-block
        call sites.  No-op while the tracer is disabled.
        """
        if not self.enabled:
            return
        agg = self._spans.get(name)
        if agg is None:
            agg = self._spans[name] = SpanAggregate(name, attrs=dict(attrs or {}))
        agg.count += 1
        agg.total_s += duration_s
        if duration_s < agg.min_s:
            agg.min_s = duration_s
        if duration_s > agg.max_s:
            agg.max_s = duration_s
        agg.mem_delta_bytes += mem_delta
        if self.trace_events:
            now = time.perf_counter() - self._epoch
            self.events.append(SpanEvent(name, now - duration_s, duration_s))

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Record the wall time (and memory delta) of a ``with`` block.

        Intended for coarse boundaries — protocol phases, sweep tasks,
        experiment sections — not for per-step hot loops, which measure
        manually and call :meth:`record`.  Disabled tracers skip all
        measurement.
        """
        if not self.enabled:
            yield
            return
        mem0 = self._mem_now()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.record(
                name, dt, attrs=attrs or None, mem_delta=self._mem_now() - mem0
            )

    def _mem_now(self) -> int:
        """Current ``tracemalloc`` size, 0 when memory is untracked."""
        if self.track_memory and tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[0]
        return 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def spans(self) -> dict[str, SpanAggregate]:
        """The live name -> aggregate mapping (insertion-ordered)."""
        return self._spans

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of everything recorded so far."""
        return {
            "schema_version": OBS_SCHEMA_VERSION,
            "spans": [agg.as_dict() for agg in self._spans.values()],
            "metrics": self.metrics.snapshot(),
            "n_events": len(self.events),
            "track_memory": self.track_memory,
        }

    def exposition(self) -> str:
        """Prometheus text format: metrics plus derived span samples.

        Span aggregates export as ``repro_span_seconds_total`` /
        ``repro_span_calls_total`` with a ``span`` label, so a scrape of
        a long-running process sees phase-time totals without a separate
        trace pipeline.
        """
        text = self.metrics.exposition()
        if not self._spans:
            return text
        lines = [
            "# HELP repro_span_seconds_total Wall seconds recorded per span",
            "# TYPE repro_span_seconds_total counter",
        ]
        for agg in sorted(self._spans.values(), key=lambda a: a.name):
            lines.append(
                f'repro_span_seconds_total{{span="{agg.name}"}} {agg.total_s!r}'
            )
        lines += [
            "# HELP repro_span_calls_total Recordings per span",
            "# TYPE repro_span_calls_total counter",
        ]
        for agg in sorted(self._spans.values(), key=lambda a: a.name):
            lines.append(
                f'repro_span_calls_total{{span="{agg.name}"}} {agg.count}'
            )
        return text + "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every aggregate, event and metric recorded so far."""
        from .metrics import MetricsRegistry

        self._spans.clear()
        self.events.clear()
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()

    def close(self) -> None:
        """Release resources (stops ``tracemalloc`` if this tracer started it)."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False


#: The ambient tracer instrumented code records into.  Disabled (and
#: therefore free) unless someone installs an enabled one.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global current tracer (disabled by default)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the current one; returns the previous."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextmanager
def tracing(
    enabled: bool = True,
    trace_events: bool = False,
    track_memory: bool = False,
    ring_size: int = DEFAULT_RING_SIZE,
) -> Iterator[Tracer]:
    """Install a fresh tracer for a ``with`` block; restore on exit.

    The yielded tracer keeps its data after the block, so callers
    snapshot/export it once the traced section finishes::

        with tracing(track_memory=True) as tracer:
            run_simulation(config)
        payload = tracer.snapshot()
    """
    tracer = Tracer(
        enabled=enabled,
        trace_events=trace_events,
        track_memory=track_memory,
        ring_size=ring_size,
    )
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()


def write_events_jsonl(events: Any, fh: IO[str]) -> int:
    """Write span events as one JSON object per line; returns the count.

    ``events`` is any iterable of :class:`SpanEvent` (typically
    ``tracer.events``, the ring buffer — i.e. the newest
    ``ring_size`` occurrences).
    """
    n = 0
    for event in events:
        fh.write(json.dumps(event.as_dict()) + "\n")
        n += 1
    return n
