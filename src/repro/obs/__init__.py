"""Zero-dependency telemetry: tracing, metrics and persisted artifacts.

The engine-wide observability layer (docs/OBSERVABILITY.md).  Three
pieces, all stdlib-only:

* :mod:`repro.obs.tracer` — :class:`Stopwatch` (the repo's timing
  primitive), the span :class:`Tracer` with its process-global current
  instance, and the :func:`tracing` context manager that enables it;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with a
  Prometheus text exposition;
* :mod:`repro.obs.artifact` — the schema-versioned per-run
  ``telemetry`` artifact persisted in the :class:`repro.store.RunStore`
  plus the phase-breakdown/aggregation tables behind ``repro trace``
  and ``repro stats``.

Instrumentation contract: the ambient tracer is **disabled by default**
and every hot call site checks :attr:`Tracer.enabled` before doing any
work, so the step loop pays (benchmarked, gated) ~zero when tracing is
off and a bounded overhead when it is on — see
``benchmarks/test_bench_obs.py``.
"""

from .artifact import (
    TELEMETRY_SCHEMA_VERSION,
    aggregate_telemetry,
    build_telemetry,
    phase_breakdown,
    render_phase_table,
    render_stats_table,
    validate_telemetry,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    OBS_SCHEMA_VERSION,
    SpanAggregate,
    SpanEvent,
    Stopwatch,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
    write_events_jsonl,
)

__all__ = [
    "OBS_SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "Stopwatch",
    "SpanAggregate",
    "SpanEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "write_events_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "build_telemetry",
    "validate_telemetry",
    "phase_breakdown",
    "render_phase_table",
    "aggregate_telemetry",
    "render_stats_table",
]
