"""Persisted per-run telemetry artifacts and phase-time breakdowns.

A telemetry artifact is the JSON document ``repro trace`` (and any other
traced execution) persists next to a run's results in the
:class:`repro.store.RunStore`, keyed by the same config hash as the run
itself — so ``repro stats`` and sweep tooling can aggregate phase-time
breakdowns across stored runs without re-executing anything.  The layout
is schema-versioned independently of both the store record schema and
the config-hash schema::

    {
      "schema_version": 1,
      "config_hash": "...",          # or null for unkeyed traces
      "created_at": 1723...,
      "wall_time_s": 12.3,           # the traced run's reported wall time
      "spans": [ {name, count, total_s, min_s, max_s, mean_s,
                  mem_delta_bytes?, attrs?}, ... ],
      "metrics": { name: [ {type, labels?, value | sum/count/buckets} ] },
      "meta": { ... }                # caller extras (scenario name, ...)
    }

:func:`phase_breakdown` derives the per-phase wall-time/memory table the
CLI prints: one row per ``phase/*`` span, shares of the protocol total
(the ``engine/train`` + ``engine/eval`` spans), and the **coverage**
ratio — the fraction of total protocol time the phase spans account for.
Coverage is the artifact's self-check: the phase kernels are the whole
step loop, so anything below ~0.95 means the engine grew untraced work.
"""

from __future__ import annotations

import time
from typing import Any

from .tracer import Tracer

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "build_telemetry",
    "validate_telemetry",
    "phase_breakdown",
    "render_phase_table",
    "aggregate_telemetry",
    "render_stats_table",
]

#: Version of the persisted telemetry artifact layout.
TELEMETRY_SCHEMA_VERSION = 1

#: Span-name prefixes with special meaning in breakdowns.
PHASE_PREFIX = "phase/"
_PROTOCOL_SPANS = ("engine/train", "engine/eval")


def build_telemetry(
    tracer: Tracer,
    config_hash: str | None = None,
    wall_time_s: float | None = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Distill a tracer into the JSON-able persisted artifact payload."""
    snap = tracer.snapshot()
    payload: dict[str, Any] = {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "config_hash": config_hash,
        "created_at": time.time(),
        "spans": snap["spans"],
        "metrics": snap["metrics"],
    }
    if wall_time_s is not None:
        payload["wall_time_s"] = float(wall_time_s)
    if meta:
        payload["meta"] = dict(meta)
    return payload


def validate_telemetry(payload: Any) -> dict[str, Any] | None:
    """Return the payload if it is a usable artifact, else ``None``.

    Mirrors the store's tolerance rules: foreign schema versions and
    malformed shapes are skipped by readers, never fatal.
    """
    if not isinstance(payload, dict):
        return None
    if payload.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        return None
    if not isinstance(payload.get("spans"), list):
        return None
    if not all(
        isinstance(s, dict) and isinstance(s.get("name"), str)
        for s in payload["spans"]
    ):
        return None
    return payload


# ----------------------------------------------------------------------
# Per-run breakdown (the `repro trace` table)
# ----------------------------------------------------------------------
def _span_index(payload: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Name -> span-row mapping for one artifact."""
    return {s["name"]: s for s in payload.get("spans", [])}


def phase_breakdown(payload: dict[str, Any]) -> dict[str, Any]:
    """Reduce one artifact to the per-phase wall-time/memory table.

    Returns ``{"phases": [...], "protocol_s": float, "phase_total_s":
    float, "coverage": float}`` where each phase row carries ``name``,
    ``calls``, ``total_s``, ``mean_s``, ``share`` (of the protocol
    total) and ``mem_delta_bytes``.  ``protocol_s`` is the summed
    ``engine/train``/``engine/eval`` span time; when neither span exists
    (a trace of something that never ran the protocol) it falls back to
    the summed phase time so shares stay well-defined.
    """
    spans = _span_index(payload)
    phases = [
        {
            "name": s["name"],
            "calls": s.get("count", 0),
            "total_s": s.get("total_s", 0.0),
            "mean_s": s.get("mean_s", 0.0),
            "mem_delta_bytes": s.get("mem_delta_bytes", 0),
        }
        for name, s in spans.items()
        if name.startswith(PHASE_PREFIX)
    ]
    phases.sort(key=lambda row: -row["total_s"])
    phase_total = sum(row["total_s"] for row in phases)
    protocol = sum(
        spans[name]["total_s"] for name in _PROTOCOL_SPANS if name in spans
    )
    if protocol <= 0.0:
        protocol = phase_total
    for row in phases:
        row["share"] = row["total_s"] / protocol if protocol > 0 else 0.0
    return {
        "phases": phases,
        "protocol_s": protocol,
        "phase_total_s": phase_total,
        "coverage": phase_total / protocol if protocol > 0 else 0.0,
    }


def _fmt_bytes(n: int) -> str:
    """Human-readable signed byte count."""
    sign = "-" if n < 0 else ""
    size = float(abs(n))
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{sign}{size:.1f}{unit}" if unit != "B" else f"{sign}{int(size)}B"
        size /= 1024.0
    return f"{sign}{size:.1f}GiB"  # pragma: no cover - loop always returns


def render_phase_table(breakdown: dict[str, Any], memory: bool = False) -> str:
    """Plain-text table for one :func:`phase_breakdown` result."""
    rows = breakdown["phases"]
    if not rows:
        return "(no phase spans recorded)"
    headers = ["phase", "calls", "total", "mean", "share"]
    if memory:
        headers.append("mem delta")
    cells = []
    for row in rows:
        line = [
            row["name"].removeprefix(PHASE_PREFIX),
            str(row["calls"]),
            f"{row['total_s']:.3f}s",
            f"{row['mean_s'] * 1e6:.1f}us",
            f"{row['share'] * 100:5.1f}%",
        ]
        if memory:
            line.append(_fmt_bytes(row["mem_delta_bytes"]))
        cells.append(line)
    widths = [
        max(len(headers[i]), *(len(c[i]) for c in cells))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    lines.append(
        f"protocol {breakdown['protocol_s']:.3f}s, phase coverage "
        f"{breakdown['coverage'] * 100:.1f}%"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Cross-run aggregation (the `repro stats` table)
# ----------------------------------------------------------------------
def aggregate_telemetry(payloads: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate span rows across many stored artifacts.

    Returns ``{"runs": n, "spans": [...]}`` with one row per span name:
    total calls and seconds, the number of runs recording it, and the
    mean seconds per run.  Rows sort by total time, descending.
    """
    totals: dict[str, dict[str, Any]] = {}
    for payload in payloads:
        for span in payload.get("spans", []):
            row = totals.setdefault(
                span["name"],
                {"name": span["name"], "runs": 0, "calls": 0,
                 "total_s": 0.0, "mem_delta_bytes": 0},
            )
            row["runs"] += 1
            row["calls"] += span.get("count", 0)
            row["total_s"] += span.get("total_s", 0.0)
            row["mem_delta_bytes"] += span.get("mem_delta_bytes", 0)
    rows = sorted(totals.values(), key=lambda r: -r["total_s"])
    n_runs = len(payloads)
    for row in rows:
        row["mean_s_per_run"] = row["total_s"] / row["runs"] if row["runs"] else 0.0
    return {"runs": n_runs, "spans": rows}


def render_stats_table(aggregate: dict[str, Any]) -> str:
    """Plain-text table for one :func:`aggregate_telemetry` result."""
    rows = aggregate["spans"]
    if not rows:
        return "(no telemetry artifacts stored)"
    headers = ["span", "runs", "calls", "total", "mean/run"]
    cells = [
        [
            row["name"],
            str(row["runs"]),
            str(row["calls"]),
            f"{row['total_s']:.3f}s",
            f"{row['mean_s_per_run']:.3f}s",
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(c[i]) for c in cells))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    return "\n".join(lines)
