"""Repeated two-player games with optional execution noise.

``play_match`` runs one repeated game between two strategies and returns
the full action/payoff record.  Noise flips an intended action with a small
probability — the standard robustness probe for TFT (noise makes plain TFT
echo defections forever, which Pavlov and TF2T recover from).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .payoffs import PayoffMatrix
from .strategies import Strategy

__all__ = ["MatchResult", "play_match", "discounted_score"]


@dataclass(frozen=True)
class MatchResult:
    """Record of one repeated-game match."""

    actions_a: np.ndarray  # int8, per round
    actions_b: np.ndarray
    payoffs_a: np.ndarray  # float64, per round
    payoffs_b: np.ndarray

    @property
    def rounds(self) -> int:
        return self.actions_a.size

    @property
    def total_a(self) -> float:
        return float(self.payoffs_a.sum())

    @property
    def total_b(self) -> float:
        return float(self.payoffs_b.sum())

    def cooperation_rate_a(self) -> float:
        return float(np.mean(self.actions_a == 0)) if self.rounds else 0.0

    def cooperation_rate_b(self) -> float:
        return float(np.mean(self.actions_b == 0)) if self.rounds else 0.0


def play_match(
    strategy_a: Strategy,
    strategy_b: Strategy,
    payoffs: PayoffMatrix,
    rounds: int,
    noise: float = 0.0,
    rng: np.random.Generator | None = None,
) -> MatchResult:
    """Play ``rounds`` of the repeated game between two strategies."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if not 0.0 <= noise <= 1.0:
        raise ValueError("noise must be in [0, 1]")
    if noise > 0.0 and rng is None:
        raise ValueError("noise requires an rng")
    strategy_a.reset()
    strategy_b.reset()

    hist_a: list[int] = []
    hist_b: list[int] = []
    acts_a = np.empty(rounds, dtype=np.int8)
    acts_b = np.empty(rounds, dtype=np.int8)
    for r in range(rounds):
        if r == 0:
            a = strategy_a.first_move()
            b = strategy_b.first_move()
        else:
            a = strategy_a.next_move(hist_a, hist_b)
            b = strategy_b.next_move(hist_b, hist_a)
        if noise > 0.0:
            assert rng is not None
            if rng.random() < noise:
                a = 1 - a
            if rng.random() < noise:
                b = 1 - b
        hist_a.append(a)
        hist_b.append(b)
        acts_a[r] = a
        acts_b[r] = b

    pay_a = payoffs.payoffs(acts_a, acts_b)
    pay_b = payoffs.payoffs(acts_b, acts_a)
    return MatchResult(actions_a=acts_a, actions_b=acts_b, payoffs_a=pay_a, payoffs_b=pay_b)


def discounted_score(payoff_stream: np.ndarray, gamma: float) -> float:
    """Discounted sum ``sum_t gamma^t r_t`` — the Q-learning objective."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    stream = np.asarray(payoff_stream, dtype=np.float64)
    weights = gamma ** np.arange(stream.size)
    return float(stream @ weights)
