"""Game-theory substrate: PD, TFT, tournaments, replicator, sharing game."""

from .payoffs import COOPERATE, DEFECT, PayoffMatrix, prisoners_dilemma
from .repeated_game import MatchResult, discounted_score, play_match
from .replicator import ReplicatorTrajectory, replicator_dynamics
from .sharing_game import (
    PAPER_GRID,
    EquilibriumResult,
    MeanFieldSharingGame,
    SharingLevel,
)
from .strategies import (
    STRATEGY_REGISTRY,
    Alternator,
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    RandomStrategy,
    Strategy,
    SuspiciousTitForTat,
    TitForTat,
    TitForTwoTats,
    make_strategy,
)
from .tournament import TournamentResult, round_robin

__all__ = [
    "COOPERATE",
    "DEFECT",
    "PayoffMatrix",
    "prisoners_dilemma",
    "MatchResult",
    "discounted_score",
    "play_match",
    "ReplicatorTrajectory",
    "replicator_dynamics",
    "PAPER_GRID",
    "EquilibriumResult",
    "MeanFieldSharingGame",
    "SharingLevel",
    "STRATEGY_REGISTRY",
    "Alternator",
    "AlwaysCooperate",
    "AlwaysDefect",
    "GrimTrigger",
    "Pavlov",
    "RandomStrategy",
    "Strategy",
    "SuspiciousTitForTat",
    "TitForTat",
    "TitForTwoTats",
    "make_strategy",
    "TournamentResult",
    "round_robin",
]
