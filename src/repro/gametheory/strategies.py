"""Classic repeated-game strategies, including BitTorrent's tit-for-tat.

Each strategy is a small state machine: ``first_move()`` opens, then
``next_move(my_history, their_history)`` reacts to the observed play.
Histories are lists of past actions (0 = cooperate, 1 = defect) in play
order.  Strategies must be deterministic given the histories and their own
RNG so tournaments are reproducible.
"""

from __future__ import annotations

import abc

import numpy as np

from .payoffs import COOPERATE, DEFECT

__all__ = [
    "Strategy",
    "TitForTat",
    "SuspiciousTitForTat",
    "TitForTwoTats",
    "AlwaysCooperate",
    "AlwaysDefect",
    "GrimTrigger",
    "Pavlov",
    "RandomStrategy",
    "Alternator",
    "STRATEGY_REGISTRY",
    "make_strategy",
]


class Strategy(abc.ABC):
    """A deterministic-given-history repeated-game strategy."""

    name: str = "strategy"

    @abc.abstractmethod
    def first_move(self) -> int:
        """Action in the first round."""

    @abc.abstractmethod
    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        """Action given full histories (both non-empty)."""

    def reset(self) -> None:
        """Clear internal state between matches (no-op by default)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TitForTat(Strategy):
    """Cooperate first, then mirror the opponent's last move (BitTorrent)."""

    name = "tit_for_tat"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        return their_history[-1]


class SuspiciousTitForTat(Strategy):
    """TFT that opens with a defection."""

    name = "suspicious_tft"

    def first_move(self) -> int:
        return DEFECT

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        return their_history[-1]


class TitForTwoTats(Strategy):
    """Defect only after two consecutive opponent defections (forgiving)."""

    name = "tit_for_two_tats"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        if len(their_history) >= 2 and their_history[-1] == their_history[-2] == DEFECT:
            return DEFECT
        return COOPERATE


class AlwaysCooperate(Strategy):
    """The altruist."""

    name = "always_cooperate"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        return COOPERATE


class AlwaysDefect(Strategy):
    """The free-rider."""

    name = "always_defect"

    def first_move(self) -> int:
        return DEFECT

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        return DEFECT


class GrimTrigger(Strategy):
    """Cooperate until the first betrayal, then defect forever."""

    name = "grim_trigger"

    def __init__(self) -> None:
        self._triggered = False

    def reset(self) -> None:
        self._triggered = False

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        if their_history[-1] == DEFECT:
            self._triggered = True
        return DEFECT if self._triggered else COOPERATE


class Pavlov(Strategy):
    """Win-stay / lose-shift: repeat after a good round, switch after a bad one.

    A round is "good" if the opponent cooperated.
    """

    name = "pavlov"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        if their_history[-1] == COOPERATE:
            return my_history[-1]
        return 1 - my_history[-1]


class RandomStrategy(Strategy):
    """Cooperate with probability ``p`` (seeded, hence reproducible)."""

    name = "random"

    def __init__(self, p_cooperate: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= p_cooperate <= 1.0:
            raise ValueError("p_cooperate must be in [0, 1]")
        self.p_cooperate = p_cooperate
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def first_move(self) -> int:
        return COOPERATE if self._rng.random() < self.p_cooperate else DEFECT

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        return self.first_move()


class Alternator(Strategy):
    """Cooperate, defect, cooperate, defect, ..."""

    name = "alternator"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history: list[int], their_history: list[int]) -> int:
        return 1 - my_history[-1]


STRATEGY_REGISTRY = {
    cls.name: cls
    for cls in (
        TitForTat,
        SuspiciousTitForTat,
        TitForTwoTats,
        AlwaysCooperate,
        AlwaysDefect,
        GrimTrigger,
        Pavlov,
        RandomStrategy,
        Alternator,
    )
}


def make_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a registered strategy by name."""
    try:
        cls = STRATEGY_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGY_REGISTRY)}"
        ) from None
    return cls(**kwargs)
