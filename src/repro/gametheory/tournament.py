"""Axelrod-style round-robin tournaments.

Every strategy plays every other (and optionally itself) for a fixed number
of rounds; scores are averaged per round so different tournament sizes stay
comparable.  The pairwise mean-payoff matrix doubles as the fitness input
of the replicator dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .payoffs import PayoffMatrix
from .repeated_game import play_match
from .strategies import Strategy

__all__ = ["TournamentResult", "round_robin"]


@dataclass(frozen=True)
class TournamentResult:
    """Scores of a round-robin tournament."""

    names: list[str]
    mean_payoff: np.ndarray  # (k, k): row strategy's mean per-round payoff
    cooperation: np.ndarray  # (k, k): row strategy's cooperation rate

    def ranking(self) -> list[tuple[str, float]]:
        """Strategies sorted by mean payoff against the field (desc)."""
        field_score = self.mean_payoff.mean(axis=1)
        order = np.argsort(-field_score)
        return [(self.names[i], float(field_score[i])) for i in order]

    def score_of(self, name: str) -> float:
        i = self.names.index(name)
        return float(self.mean_payoff[i].mean())


def round_robin(
    strategies: list[Strategy],
    payoffs: PayoffMatrix,
    rounds: int = 200,
    noise: float = 0.0,
    include_self_play: bool = True,
    seed: int = 0,
) -> TournamentResult:
    """Run the full tournament; deterministic given ``seed``."""
    k = len(strategies)
    if k < 2:
        raise ValueError("need at least two strategies")
    mean_payoff = np.zeros((k, k), dtype=np.float64)
    cooperation = np.zeros((k, k), dtype=np.float64)
    rng = np.random.default_rng(seed)
    for i in range(k):
        for j in range(i, k):
            if i == j and not include_self_play:
                continue
            result = play_match(
                strategies[i], strategies[j], payoffs, rounds, noise=noise, rng=rng
            )
            mean_payoff[i, j] = result.total_a / rounds
            mean_payoff[j, i] = result.total_b / rounds
            cooperation[i, j] = result.cooperation_rate_a()
            cooperation[j, i] = result.cooperation_rate_b()
    names = [s.name for s in strategies]
    return TournamentResult(names=names, mean_payoff=mean_payoff, cooperation=cooperation)
