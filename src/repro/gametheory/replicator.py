"""Discrete-time replicator dynamics over a strategy population.

Given a pairwise fitness matrix ``F`` (``F[i, j]`` = mean payoff of
strategy *i* against *j*, e.g. from a tournament), the population share
``x_i`` evolves as

    ``x_i' = x_i * f_i / f_bar``,   ``f_i = (F x)_i``,  ``f_bar = x . f``

This is the standard evolutionary lens on the paper's population-mix
question: which behaviours survive as the mixture shifts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReplicatorTrajectory", "replicator_dynamics"]


@dataclass(frozen=True)
class ReplicatorTrajectory:
    """Population shares over time, shape (steps + 1, k)."""

    shares: np.ndarray
    names: list[str]

    @property
    def final(self) -> np.ndarray:
        return self.shares[-1]

    def survivors(self, threshold: float = 1e-3) -> list[str]:
        return [n for n, x in zip(self.names, self.final) if x > threshold]


def replicator_dynamics(
    fitness: np.ndarray,
    initial_shares: np.ndarray,
    steps: int = 200,
    names: list[str] | None = None,
    floor: float = 0.0,
) -> ReplicatorTrajectory:
    """Iterate the discrete replicator map.

    ``floor`` optionally injects a small mutation rate (shares never drop
    below it), which avoids absorbing states in teaching examples.
    """
    f = np.asarray(fitness, dtype=np.float64)
    k = f.shape[0]
    if f.shape != (k, k):
        raise ValueError("fitness must be square")
    x = np.asarray(initial_shares, dtype=np.float64).copy()
    if x.shape != (k,) or np.any(x < 0):
        raise ValueError("initial_shares must be a non-negative vector of length k")
    total = x.sum()
    if total <= 0:
        raise ValueError("initial_shares must not be all zero")
    x /= total
    if steps < 0:
        raise ValueError("steps must be >= 0")
    if names is None:
        names = [f"strategy_{i}" for i in range(k)]

    # Replicator requires positive fitness values; shift if necessary.
    shift = min(0.0, float(f.min()))
    f_pos = f - shift + 1e-9

    traj = np.empty((steps + 1, k), dtype=np.float64)
    traj[0] = x
    for t in range(1, steps + 1):
        fit = f_pos @ x
        mean_fit = float(x @ fit)
        x = x * fit / mean_fit
        if floor > 0.0:
            x = np.maximum(x, floor)
            x /= x.sum()
        traj[t] = x
    return ReplicatorTrajectory(shares=traj, names=list(names))
