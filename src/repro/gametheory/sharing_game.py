"""Mean-field game-theoretic analysis of the sharing stage game.

A closed-form companion to the agent simulation: fix everybody else at a
constant sharing profile, compute a single deviating peer's *steady-state*
expected per-step utility, and derive best responses / symmetric equilibria
on the paper's 3x3 action grid.

This analysis explains both headline results analytically:

* **Without** service differentiation the received bandwidth does not
  depend on one's own sharing level, so ``U_S`` is strictly decreasing in
  both sharing components — free-riding is a dominant strategy.
* **With** differentiation the benefit term grows with one's reputation
  share, but the logistic reputation function saturates, so the best
  response lands at an *interior* sharing level — which is why the paper
  finds the scheme only "moderately effective" (+8-11 %).

The mean-field approximation: downloads arrive at a source as a thinned
uniform process, so the expected competition at a source when peer *i*
downloads there is ``1 + (N - 1) * p / N_S`` concurrent requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from ..core.params import ContributionParams, UtilityParams
from ..core.reputation import LogisticReputation, ReputationFunction

__all__ = ["SharingLevel", "MeanFieldSharingGame", "EquilibriumResult"]


@dataclass(frozen=True)
class SharingLevel:
    """One point of the paper's action grid: (articles, bandwidth) in [0,1]."""

    articles: float
    bandwidth: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.articles <= 1.0 and 0.0 <= self.bandwidth <= 1.0):
            raise ValueError("sharing fractions must lie in [0, 1]")


#: The paper's 3x3 grid: {0, 50, 100} files x {0, 50, 100}% bandwidth.
PAPER_GRID = [
    SharingLevel(a, b) for a, b in product((0.0, 0.5, 1.0), repeat=2)
]


@dataclass(frozen=True)
class EquilibriumResult:
    """Fixed point of the best-response map on the action grid."""

    level: SharingLevel
    utility: float
    iterations: int
    converged: bool


class MeanFieldSharingGame:
    """Steady-state sharing game under (or without) service differentiation."""

    def __init__(
        self,
        n_peers: int = 100,
        utility: UtilityParams | None = None,
        contribution: ContributionParams | None = None,
        reputation_fn: ReputationFunction | None = None,
        incentives_enabled: bool = True,
        download_probability: float = 1.0,
        grid: list[SharingLevel] | None = None,
    ) -> None:
        # download_probability defaults to 1.0, matching the engine's
        # reading of the paper's download model (every peer downloads once
        # per step from a uniformly random sharer).
        if n_peers < 2:
            raise ValueError("need at least two peers")
        self.n = int(n_peers)
        self.utility = utility if utility is not None else UtilityParams()
        self.contribution = (
            contribution if contribution is not None else ContributionParams()
        )
        self.reputation_fn = reputation_fn or LogisticReputation()
        self.incentives_enabled = bool(incentives_enabled)
        self.download_probability = download_probability
        self.grid = list(grid) if grid is not None else list(PAPER_GRID)

    # ------------------------------------------------------------------
    def steady_reputation(self, level: SharingLevel) -> float:
        """Reputation a peer converges to when playing ``level`` forever."""
        c_star = self.contribution.steady_state_sharing(level.articles, level.bandwidth)
        if np.isinf(c_star):
            return self.reputation_fn.r_max
        return float(self.reputation_fn(c_star))

    def expected_utility(
        self, own: SharingLevel, population: SharingLevel
    ) -> float:
        """Expected per-step ``U_S`` of one deviant against a uniform field."""
        p_pop = population
        # Sharers: everyone at the population level (articles > 0 required
        # to be a source).  If the field shares nothing, nothing can be
        # downloaded at all.
        n_s = self.n if p_pop.articles > 0 else 0
        if n_s == 0:
            benefit = 0.0
        else:
            p_dl = self.download_probability
            # Expected number of competing downloads at the chosen source,
            # given that our peer is one of them.
            competitors = (self.n - 1) * p_dl / n_s
            if self.incentives_enabled:
                r_own = self.steady_reputation(own)
                r_pop = self.steady_reputation(p_pop)
                share = r_own / (r_own + competitors * r_pop)
            else:
                share = 1.0 / (1.0 + competitors)
            benefit = self.utility.alpha * p_dl * p_pop.bandwidth * share
        cost = self.utility.beta * own.articles + self.utility.gamma * own.bandwidth
        return benefit - cost

    def best_response(self, population: SharingLevel) -> SharingLevel:
        """Utility-maximizing grid action against a uniform field."""
        utilities = [self.expected_utility(lv, population) for lv in self.grid]
        return self.grid[int(np.argmax(utilities))]

    def symmetric_equilibrium(
        self, start: SharingLevel | None = None, max_iter: int = 50
    ) -> EquilibriumResult:
        """Iterate the best-response map to a symmetric fixed point.

        On a finite grid the map either reaches a fixed point or cycles; we
        return the first fixed point, or the last iterate (converged=False)
        when a cycle is detected.
        """
        current = start if start is not None else SharingLevel(1.0, 1.0)
        seen = {current}
        for k in range(1, max_iter + 1):
            nxt = self.best_response(current)
            if nxt == current:
                return EquilibriumResult(
                    level=current,
                    utility=self.expected_utility(current, current),
                    iterations=k,
                    converged=True,
                )
            if nxt in seen:  # cycle
                return EquilibriumResult(
                    level=nxt,
                    utility=self.expected_utility(nxt, nxt),
                    iterations=k,
                    converged=False,
                )
            seen.add(nxt)
            current = nxt
        return EquilibriumResult(
            level=current,
            utility=self.expected_utility(current, current),
            iterations=max_iter,
            converged=False,
        )

    def utility_landscape(self, population: SharingLevel) -> dict[SharingLevel, float]:
        """Full grid -> utility map (used by the analysis example)."""
        return {lv: self.expected_utility(lv, population) for lv in self.grid}

    def is_free_riding_dominant(self) -> bool:
        """True iff (0, 0) is a best response to every population profile —
        the no-incentive pathology the scheme is designed to break."""
        zero = SharingLevel(0.0, 0.0)
        for pop in self.grid:
            br = self.best_response(pop)
            if br != zero:
                return False
        return True
