"""Two-player game payoff structures.

The repeated Prisoner's Dilemma "seems to be an appropriate model of
interaction among users in a P2P network" (paper section II-A, citing
Feldman et al.).  This module defines the canonical PD payoffs plus a
general symmetric 2x2 game container used by the tournament and the
replicator dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["COOPERATE", "DEFECT", "PayoffMatrix", "prisoners_dilemma"]

COOPERATE = 0
DEFECT = 1


@dataclass(frozen=True)
class PayoffMatrix:
    """Symmetric 2x2 game: ``payoff(a, b)`` is the row player's payoff."""

    matrix: tuple[tuple[float, float], tuple[float, float]]

    def payoff(self, own_action: int, other_action: int) -> float:
        return self.matrix[own_action][other_action]

    def as_array(self) -> np.ndarray:
        return np.asarray(self.matrix, dtype=np.float64)

    def payoffs(self, own: np.ndarray, other: np.ndarray) -> np.ndarray:
        """Vectorized lookup for action arrays."""
        arr = self.as_array()
        return arr[np.asarray(own), np.asarray(other)]


def prisoners_dilemma(
    temptation: float = 5.0,
    reward: float = 3.0,
    punishment: float = 1.0,
    sucker: float = 0.0,
) -> PayoffMatrix:
    """The canonical PD with the usual ``T > R > P > S`` ordering check.

    Also enforces ``2R > T + S`` so that mutual cooperation beats
    alternating exploitation in the repeated game (Axelrod's condition).
    """
    if not temptation > reward > punishment > sucker:
        raise ValueError("PD requires T > R > P > S")
    if not 2 * reward > temptation + sucker:
        raise ValueError("PD requires 2R > T + S")
    return PayoffMatrix(
        matrix=(
            (reward, sucker),  # I cooperate: (they cooperate, they defect)
            (temptation, punishment),  # I defect
        )
    )
