"""Action spaces of the paper's simulation (section IV-B).

Sharing: "an agent can choose from three different participation levels for
each resource: 0%, 50% or 100% of their bandwidth; and 0, 50 or 100 files"
— a 3x3 = 9-action grid, encoded as one integer per agent with vectorized
decoding into (bandwidth fraction, files fraction).

Editing/voting: "it can do it either constructively or destructively" — we
keep the *edit* behaviour and the *vote* behaviour as independent binary
choices, a 2x2 = 4-action grid, so an agent may e.g. learn to edit
constructively while voting with the destructive camp.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharingActionSpace", "EditActionSpace"]

_LEVELS = np.array([0.0, 0.5, 1.0])


class SharingActionSpace:
    """The 3x3 grid of (bandwidth level, files level) actions."""

    def __init__(self, levels: np.ndarray | None = None):
        self.levels = (
            np.asarray(levels, dtype=np.float64) if levels is not None else _LEVELS
        )
        if self.levels.ndim != 1 or self.levels.size < 2:
            raise ValueError("need at least two participation levels")
        if np.any((self.levels < 0) | (self.levels > 1)):
            raise ValueError("levels must lie in [0, 1]")
        self.n_levels = self.levels.size
        self.n_actions = self.n_levels**2

    def decode(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Action indices -> (bandwidth fractions, files fractions)."""
        actions = np.asarray(actions)
        if np.any((actions < 0) | (actions >= self.n_actions)):
            raise ValueError("action index out of range")
        bw = self.levels[actions // self.n_levels]
        files = self.levels[actions % self.n_levels]
        return bw, files

    def encode(self, bandwidth_level: int, files_level: int) -> int:
        """(level indices) -> action index."""
        if not (0 <= bandwidth_level < self.n_levels and 0 <= files_level < self.n_levels):
            raise ValueError("level index out of range")
        return bandwidth_level * self.n_levels + files_level

    @property
    def max_action(self) -> int:
        """The all-in action (100% bandwidth, 100 files) — the altruist's."""
        return self.encode(self.n_levels - 1, self.n_levels - 1)

    @property
    def min_action(self) -> int:
        """The free-rider action (0, 0) — the irrational peer's."""
        return self.encode(0, 0)


class EditActionSpace:
    """The 2x2 grid of (edit behaviour, vote behaviour) actions.

    Behaviour encoding: 1 = constructive, 0 = destructive.
    """

    n_actions = 4

    def decode(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Action indices -> (edit_constructive, vote_constructive) bools."""
        actions = np.asarray(actions)
        if np.any((actions < 0) | (actions >= self.n_actions)):
            raise ValueError("action index out of range")
        edit_constructive = (actions // 2).astype(bool)
        vote_constructive = (actions % 2).astype(bool)
        return edit_constructive, vote_constructive

    def encode(self, edit_constructive: bool, vote_constructive: bool) -> int:
        return int(edit_constructive) * 2 + int(vote_constructive)

    @property
    def constructive_action(self) -> int:
        """Fully constructive (altruist)."""
        return self.encode(True, True)

    @property
    def destructive_action(self) -> int:
        """Fully destructive (irrational peer)."""
        return self.encode(False, False)
