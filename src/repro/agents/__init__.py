"""Agents: action spaces, vectorized Q-learning, behaviour policies, mixes."""

from .actions import EditActionSpace, SharingActionSpace
from .behaviors import BehaviorEngine
from .population import PopulationMix, mixture_sweep
from .qlearning import VectorQLearner, boltzmann_probabilities, sample_categorical

__all__ = [
    "EditActionSpace",
    "SharingActionSpace",
    "BehaviorEngine",
    "PopulationMix",
    "mixture_sweep",
    "VectorQLearner",
    "boltzmann_probabilities",
    "sample_categorical",
]
