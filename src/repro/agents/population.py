"""Population mixes of rational / altruistic / irrational peers.

Paper section IV-B: "the occurrence of each user type is varied from
10-100% while the other two types each share half of the difference to
100%" — :func:`mixture_sweep` generates exactly those mixes, and
:class:`PopulationMix` turns fractions into concrete per-peer type codes
with largest-remainder rounding so counts always sum to the population
size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL

__all__ = ["PopulationMix", "mixture_sweep"]


@dataclass(frozen=True)
class PopulationMix:
    """Fractions of the three behaviour types (must sum to 1)."""

    rational: float
    altruistic: float
    irrational: float

    def __post_init__(self) -> None:
        fracs = (self.rational, self.altruistic, self.irrational)
        if any(f < -1e-12 for f in fracs):
            raise ValueError("fractions must be non-negative")
        if abs(sum(fracs) - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1, got {sum(fracs)}")

    def counts(self, n_peers: int) -> tuple[int, int, int]:
        """Largest-remainder apportionment of ``n_peers`` into the types."""
        fracs = np.array([self.rational, self.altruistic, self.irrational])
        raw = fracs * n_peers
        base = np.floor(raw).astype(int)
        remainder = n_peers - base.sum()
        # Assign leftover seats to the largest fractional parts.
        order = np.argsort(-(raw - base))
        base[order[:remainder]] += 1
        return int(base[0]), int(base[1]), int(base[2])

    def build(self, n_peers: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Per-peer type codes; shuffled if an rng is given (recommended so
        founders drawn by peer index are type-unbiased)."""
        n_rat, n_alt, n_irr = self.counts(n_peers)
        types = np.concatenate(
            [
                np.full(n_rat, RATIONAL, dtype=np.int8),
                np.full(n_alt, ALTRUISTIC, dtype=np.int8),
                np.full(n_irr, IRRATIONAL, dtype=np.int8),
            ]
        )
        if rng is not None:
            rng.shuffle(types)
        return types

    def describe(self) -> str:
        return (
            f"{self.rational:.0%} rational / {self.altruistic:.0%} altruistic / "
            f"{self.irrational:.0%} irrational"
        )


def mixture_sweep(
    vary: str,
    percentages: np.ndarray | list[int] | None = None,
) -> list[PopulationMix]:
    """The paper's mixture rule: the varied type takes x%, the other two
    split the remainder equally.

    ``vary`` is one of ``"rational"``, ``"altruistic"``, ``"irrational"``.
    ``percentages`` defaults to 10..90 in steps of 10 (the plotted range).
    """
    if vary not in ("rational", "altruistic", "irrational"):
        raise ValueError("vary must name one of the three behaviour types")
    if percentages is None:
        percentages = list(range(10, 100, 10))
    mixes = []
    for pct in percentages:
        if not 0 <= pct <= 100:
            raise ValueError("percentages must lie in [0, 100]")
        x = pct / 100.0
        rest = (1.0 - x) / 2.0
        parts = {"rational": rest, "altruistic": rest, "irrational": rest}
        parts[vary] = x
        mixes.append(PopulationMix(**parts))
    return mixes
