"""Vectorized tabular Q-learning with Boltzmann exploration (paper IV-A).

Every rational agent carries its own Q-matrix; the whole population learns
in lock-step, so the table is one array ``Q[agent, state, action]`` and the
update

    ``Q(s,a) <- (1-alpha) Q(s,a) + alpha (r + gamma max_b Q(s',b))``

is a single fancy-indexed assignment over all agents.  Action selection
uses the Boltzmann (softmax) distribution of the paper's Figure 2:

    ``p(a | s) = exp(Q(s,a)/T) / sum_b exp(Q(s,b)/T)``

``T = inf`` (the paper sets "the highest possible floating-point value"
during training) yields the uniform distribution; ``T -> 0`` approaches
greedy.  Sampling is an inverse-CDF draw: one uniform per agent against the
row-wise cumulative sum — no Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["boltzmann_probabilities", "sample_categorical", "VectorQLearner"]


def boltzmann_probabilities(
    q_values: np.ndarray, temperature: float | np.ndarray
) -> np.ndarray:
    """Softmax over the last axis at temperature ``T`` (Figure 2).

    Numerically stable (max-subtracted); ``T = inf`` returns the uniform
    distribution, matching the paper's "explore all actions with equal
    probability" training regime.  ``temperature`` may be a per-row
    ``(rows,)`` array (lane-batched selection, one temperature per agent's
    lane): the division is elementwise, so each row's probabilities are
    bit-identical to a scalar call at that row's temperature.
    """
    q = np.asarray(q_values, dtype=np.float64)
    if np.ndim(temperature) > 0:
        t = np.asarray(temperature, dtype=np.float64)
        if np.any(t <= 0):
            raise ValueError("temperature must be positive (use small T for greedy)")
        z = q / t.reshape(t.shape + (1,) * (q.ndim - t.ndim))
    else:
        if temperature <= 0:
            raise ValueError("temperature must be positive (use small T for greedy)")
        if np.isinf(temperature):
            shape = q.shape
            return np.full(shape, 1.0 / shape[-1])
        z = q / temperature
    z -= z.max(axis=-1, keepdims=True)
    np.exp(z, out=z)
    z /= z.sum(axis=-1, keepdims=True)
    return z


def sample_categorical(
    probabilities: np.ndarray,
    rng: np.random.Generator | None = None,
    u: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized categorical draw: one sample per row of ``probabilities``.

    Inverse-CDF method: cumulative sums per row, one uniform per row, then
    a row-wise count of how many CDF entries the uniform exceeds.

    The uniforms come from ``rng``, or from ``u`` (shape ``(rows, 1)``) if
    pre-drawn.  Pre-drawn uniforms are how the batched engine keeps per-
    replicate RNG streams bit-identical to sequential runs: it draws each
    replicate's uniforms from that replicate's generator, stacks them, and
    samples all replicates with one vectorized pass.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 2:
        raise ValueError("probabilities must be 2-D (rows = distributions)")
    cdf = np.cumsum(p, axis=1)
    # Guard against rounding: force the last CDF entry to 1.
    cdf[:, -1] = 1.0
    if u is None:
        if rng is None:
            raise ValueError("need an rng or pre-drawn uniforms u")
        u = rng.random((p.shape[0], 1))
    elif u.shape != (p.shape[0], 1):
        raise ValueError("u must have shape (rows, 1)")
    return (u > cdf).sum(axis=1)


class VectorQLearner:
    """Population of independent tabular Q-learners updated in lock-step."""

    def __init__(
        self,
        n_agents: int,
        n_states: int,
        n_actions: int,
        learning_rate: float = 0.1,
        discount: float = 0.9,
        initial_q: float = 0.0,
        kernels=None,
    ) -> None:
        if n_agents < 1 or n_states < 1 or n_actions < 2:
            raise ValueError("need n_agents >= 1, n_states >= 1, n_actions >= 2")
        # Lane-batched learners stack agents from lanes with different
        # hyper-parameters: ``learning_rate``/``discount`` may be
        # per-agent ``(n_agents,)`` arrays, applied elementwise in the
        # (per-agent-independent) TD backup.
        if not (
            np.all(np.asarray(learning_rate) > 0.0)
            and np.all(np.asarray(learning_rate) <= 1.0)
        ):
            raise ValueError("learning_rate must be in (0, 1]")
        if not (
            np.all(np.asarray(discount) >= 0.0) and np.all(np.asarray(discount) < 1.0)
        ):
            raise ValueError("discount must be in [0, 1)")
        self.n_agents = int(n_agents)
        self.n_states = int(n_states)
        self.n_actions = int(n_actions)
        self.learning_rate = (
            learning_rate
            if isinstance(learning_rate, np.ndarray)
            else float(learning_rate)
        )
        self.discount = (
            discount if isinstance(discount, np.ndarray) else float(discount)
        )
        self.q = np.full(
            (self.n_agents, self.n_states, self.n_actions),
            float(initial_q),
            dtype=np.float64,
        )
        self._agent_idx = np.arange(self.n_agents)
        if kernels is None:
            from ..sim.backends import default_kernels

            kernels = default_kernels()
        # The KernelBackend executing the TD backup; bit-identical across
        # backends, so a pure execution knob.
        self.kernels = kernels

    # ------------------------------------------------------------------
    def select_actions(
        self,
        states: np.ndarray,
        temperature: float,
        rng: np.random.Generator | None = None,
        subset: np.ndarray | None = None,
        u: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boltzmann action selection for all agents (or a subset).

        ``states`` has one entry per *selected* agent.  ``T = inf`` takes a
        fast path that skips the softmax entirely (it requires ``rng``).

        ``u`` is the replicate-axis hook: a learner stacked over the
        rational agents of several replicates can be sampled in one call
        while every replicate consumes its own RNG stream — the caller
        draws ``(k_r, 1)`` uniforms per replicate, concatenates them, and
        passes the stack here.
        """
        idx = self._agent_idx if subset is None else np.asarray(subset)
        states = np.asarray(states)
        if states.shape != idx.shape:
            raise ValueError("states must align with the selected agents")
        if np.ndim(temperature) == 0 and np.isinf(temperature):
            if rng is None:
                raise ValueError("the T=inf fast path draws from rng directly")
            return rng.integers(0, self.n_actions, size=idx.size)
        q_rows = self.q[idx, states]  # (k, n_actions) gather
        probs = boltzmann_probabilities(q_rows, temperature)
        return sample_categorical(probs, rng, u=u)

    def greedy_actions(
        self, states: np.ndarray, subset: np.ndarray | None = None
    ) -> np.ndarray:
        """Argmax actions (ties -> lowest index), used by analysis only."""
        idx = self._agent_idx if subset is None else np.asarray(subset)
        return self.q[idx, np.asarray(states)].argmax(axis=1)

    def update(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        subset: np.ndarray | None = None,
    ) -> None:
        """One vectorized temporal-difference backup for the selected agents."""
        idx = self._agent_idx if subset is None else np.asarray(subset)
        states = np.asarray(states)
        actions = np.asarray(actions)
        rewards = np.asarray(rewards, dtype=np.float64)
        next_states = np.asarray(next_states)
        if not (states.shape == actions.shape == rewards.shape == next_states.shape == idx.shape):
            raise ValueError("all update arrays must align with the selected agents")
        gamma = self.discount
        a = self.learning_rate
        if subset is not None:
            # Per-agent hyper-parameter arrays must follow the gather.
            if isinstance(gamma, np.ndarray):
                gamma = gamma[idx]
            if isinstance(a, np.ndarray):
                a = a[idx]
        self.kernels.q_update(
            self.q, idx, states, actions, rewards, next_states, a, gamma
        )

    # ------------------------------------------------------------------
    def policy_probabilities(self, temperature: float) -> np.ndarray:
        """Full (agents, states, actions) Boltzmann policy — analysis helper."""
        return boltzmann_probabilities(self.q, temperature)

    def reset(self, initial_q: float = 0.0) -> None:
        self.q.fill(float(initial_q))

    def copy(self) -> "VectorQLearner":
        clone = VectorQLearner(
            self.n_agents,
            self.n_states,
            self.n_actions,
            learning_rate=self.learning_rate,
            discount=self.discount,
            kernels=self.kernels,
        )
        clone.q[:] = self.q
        return clone
