"""Behaviour policies: rational (Q-learning), altruistic, irrational.

Paper section IV-B convention: "rational peers always try to maximize
their benefit, irrational ones are always free-riders with regard to
sharing as well as destructive editors and voters.  Altruistic peers always
share the most they can and perform only constructive edits and votes."

:class:`BehaviorEngine` composes the three into population-wide action
arrays.  Only the rational subset touches the Q-learners; the fixed types
are filled in with constant actions, all vectorized.
"""

from __future__ import annotations

import numpy as np

from ..network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL
from .actions import EditActionSpace, SharingActionSpace
from .qlearning import VectorQLearner

__all__ = ["BehaviorEngine"]


class BehaviorEngine:
    """Maps (types, reputations, Q-matrices) to this step's actions."""

    def __init__(
        self,
        types: np.ndarray,
        sharing_space: SharingActionSpace,
        edit_space: EditActionSpace,
        sharing_learner: VectorQLearner,
        edit_learner: VectorQLearner,
    ) -> None:
        self.types = np.asarray(types, dtype=np.int8)
        self.n = self.types.size
        self.sharing_space = sharing_space
        self.edit_space = edit_space
        self.rational_idx = np.flatnonzero(self.types == RATIONAL)
        self.altruistic_idx = np.flatnonzero(self.types == ALTRUISTIC)
        self.irrational_idx = np.flatnonzero(self.types == IRRATIONAL)
        if sharing_learner.n_agents != self.rational_idx.size:
            raise ValueError("sharing learner must cover exactly the rational peers")
        if edit_learner.n_agents != self.rational_idx.size:
            raise ValueError("edit learner must cover exactly the rational peers")
        self.sharing_learner = sharing_learner
        self.edit_learner = edit_learner

    # ------------------------------------------------------------------
    # Action selection
    # ------------------------------------------------------------------
    def sharing_actions(
        self, states: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-peer sharing action indices.

        ``states`` are the *rational* peers' discretized reputations (one
        entry per rational peer, ordered like ``rational_idx``).
        """
        actions = np.empty(self.n, dtype=np.int64)
        actions[self.altruistic_idx] = self.sharing_space.max_action
        actions[self.irrational_idx] = self.sharing_space.min_action
        if self.rational_idx.size:
            actions[self.rational_idx] = self.sharing_learner.select_actions(
                states, temperature, rng
            )
        return actions

    def edit_actions(
        self, states: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-peer edit/vote behaviour action indices (same contract)."""
        actions = np.empty(self.n, dtype=np.int64)
        actions[self.altruistic_idx] = self.edit_space.constructive_action
        actions[self.irrational_idx] = self.edit_space.destructive_action
        if self.rational_idx.size:
            actions[self.rational_idx] = self.edit_learner.select_actions(
                states, temperature, rng
            )
        return actions

    # ------------------------------------------------------------------
    # Learning (rational subset only)
    # ------------------------------------------------------------------
    def learn_sharing(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> None:
        """TD-update the sharing Q-matrices from population-wide arrays.

        ``actions`` and ``rewards`` are indexed by peer; states are already
        restricted to the rational subset.
        """
        if not self.rational_idx.size:
            return
        self.sharing_learner.update(
            states,
            actions[self.rational_idx],
            rewards[self.rational_idx],
            next_states,
        )

    def learn_editing(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> None:
        if not self.rational_idx.size:
            return
        self.edit_learner.update(
            states,
            actions[self.rational_idx],
            rewards[self.rational_idx],
            next_states,
        )
