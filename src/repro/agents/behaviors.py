"""Behaviour policies: rational (Q-learning), altruistic, irrational.

Paper section IV-B convention: "rational peers always try to maximize
their benefit, irrational ones are always free-riders with regard to
sharing as well as destructive editors and voters.  Altruistic peers always
share the most they can and perform only constructive edits and votes."

:class:`BehaviorEngine` composes the three into population-wide action
arrays.  Only the rational subset touches the Q-learners; the fixed types
are filled in with constant actions, all vectorized.
"""

from __future__ import annotations

import numpy as np

from ..network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL
from .actions import EditActionSpace, SharingActionSpace
from .qlearning import VectorQLearner

__all__ = ["BehaviorEngine", "BatchedBehaviorEngine"]


class BehaviorEngine:
    """Maps (types, reputations, Q-matrices) to this step's actions."""

    def __init__(
        self,
        types: np.ndarray,
        sharing_space: SharingActionSpace,
        edit_space: EditActionSpace,
        sharing_learner: VectorQLearner,
        edit_learner: VectorQLearner,
    ) -> None:
        self.types = np.asarray(types, dtype=np.int8)
        self.n = self.types.size
        self.sharing_space = sharing_space
        self.edit_space = edit_space
        self.rational_idx = np.flatnonzero(self.types == RATIONAL)
        self.altruistic_idx = np.flatnonzero(self.types == ALTRUISTIC)
        self.irrational_idx = np.flatnonzero(self.types == IRRATIONAL)
        if sharing_learner.n_agents != self.rational_idx.size:
            raise ValueError("sharing learner must cover exactly the rational peers")
        if edit_learner.n_agents != self.rational_idx.size:
            raise ValueError("edit learner must cover exactly the rational peers")
        self.sharing_learner = sharing_learner
        self.edit_learner = edit_learner

    # ------------------------------------------------------------------
    # Action selection
    # ------------------------------------------------------------------
    def sharing_actions(
        self, states: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-peer sharing action indices.

        ``states`` are the *rational* peers' discretized reputations (one
        entry per rational peer, ordered like ``rational_idx``).
        """
        actions = np.empty(self.n, dtype=np.int64)
        actions[self.altruistic_idx] = self.sharing_space.max_action
        actions[self.irrational_idx] = self.sharing_space.min_action
        if self.rational_idx.size:
            actions[self.rational_idx] = self.sharing_learner.select_actions(
                states, temperature, rng
            )
        return actions

    def edit_actions(
        self, states: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-peer edit/vote behaviour action indices (same contract)."""
        actions = np.empty(self.n, dtype=np.int64)
        actions[self.altruistic_idx] = self.edit_space.constructive_action
        actions[self.irrational_idx] = self.edit_space.destructive_action
        if self.rational_idx.size:
            actions[self.rational_idx] = self.edit_learner.select_actions(
                states, temperature, rng
            )
        return actions

    # ------------------------------------------------------------------
    # Learning (rational subset only)
    # ------------------------------------------------------------------
    def learn_sharing(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> None:
        """TD-update the sharing Q-matrices from population-wide arrays.

        ``actions`` and ``rewards`` are indexed by peer; states are already
        restricted to the rational subset.
        """
        if not self.rational_idx.size:
            return
        self.sharing_learner.update(
            states,
            actions[self.rational_idx],
            rewards[self.rational_idx],
            next_states,
        )

    def learn_editing(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> None:
        if not self.rational_idx.size:
            return
        self.edit_learner.update(
            states,
            actions[self.rational_idx],
            rewards[self.rational_idx],
            next_states,
        )


class BatchedBehaviorEngine:
    """Replicate-stacked behaviour engine over flat ``R * N`` peer slots.

    One learner holds the Q-matrices of *all* replicates' rational peers
    (stacked in replicate order), so action selection and TD updates are
    single vectorized calls regardless of ``R``.  Randomness stays
    per-replicate: each replicate's uniforms (or ``T = inf`` integers)
    are drawn from that replicate's own generator, in the same order and
    shapes a solo :class:`BehaviorEngine` run would draw them — which is
    what makes a batched replicate reproduce its sequential twin seed for
    seed.  ``R = 1`` with a single rng behaves exactly like
    :class:`BehaviorEngine` (including the no-rational degenerate case,
    which draws nothing).
    """

    def __init__(
        self,
        types: np.ndarray,
        sharing_space: SharingActionSpace,
        edit_space: EditActionSpace,
        sharing_learner: VectorQLearner,
        edit_learner: VectorQLearner,
    ) -> None:
        types = np.asarray(types, dtype=np.int8)
        if types.ndim != 2:
            raise ValueError("types must be (n_replicates, n_agents)")
        self.n_replicates, self.n_agents = types.shape
        self.types = types.reshape(-1)
        self.n = self.types.size
        self.sharing_space = sharing_space
        self.edit_space = edit_space
        self.rational_idx = np.flatnonzero(self.types == RATIONAL)
        self.altruistic_idx = np.flatnonzero(self.types == ALTRUISTIC)
        self.irrational_idx = np.flatnonzero(self.types == IRRATIONAL)
        self.rational_counts = [
            int((types[r] == RATIONAL).sum()) for r in range(self.n_replicates)
        ]
        # Start offset of each replicate's span in the stacked rational
        # order (used by the per-lane-temperature selection path).
        self._rational_starts = np.concatenate(
            ([0], np.cumsum(self.rational_counts))
        )
        n_rational = self.rational_idx.size
        expected = max(n_rational, 1)
        if sharing_learner.n_agents != expected:
            raise ValueError("sharing learner must cover exactly the rational peers")
        if edit_learner.n_agents != expected:
            raise ValueError("edit learner must cover exactly the rational peers")
        self.sharing_learner = sharing_learner
        self.edit_learner = edit_learner

    # ------------------------------------------------------------------
    @staticmethod
    def _as_rngs(rngs) -> list:
        """Normalize a single rng-like (Generator, BufferedRNG, ...) or a
        per-replicate sequence of them into a list."""
        return list(rngs) if isinstance(rngs, (list, tuple)) else [rngs]

    def _select(
        self, learner: VectorQLearner, states: np.ndarray, temperature, rngs
    ) -> np.ndarray:
        """Stacked rational action selection with per-replicate streams.

        ``temperature`` is a scalar (all lanes in the same regime — the
        homogeneous fast path) or a per-lane ``(R,)`` array: each lane's
        rational span draws from its own stream with its own temperature
        (``T = inf`` lanes take the uniform-integer path, finite lanes are
        Boltzmann-sampled in one stacked call with per-row temperatures),
        reproducing every lane's sequential draw sequence exactly.
        """
        rngs = self._as_rngs(rngs)
        if np.ndim(temperature) == 0:
            if np.isinf(temperature):
                parts = [
                    rngs[r].integers(0, learner.n_actions, size=k)
                    for r, k in enumerate(self.rational_counts)
                    if k
                ]
                return np.concatenate(parts)
            u = np.concatenate(
                [
                    rngs[r].random((k, 1))
                    for r, k in enumerate(self.rational_counts)
                    if k
                ]
            )
            return learner.select_actions(states, temperature, u=u)

        t = np.asarray(temperature, dtype=np.float64)
        starts = self._rational_starts
        actions = np.empty(states.size, dtype=np.int64)
        u_parts: list[np.ndarray] = []
        finite_spans: list[np.ndarray] = []
        t_rows: list[np.ndarray] = []
        for r, k in enumerate(self.rational_counts):
            if not k:
                continue
            span = slice(int(starts[r]), int(starts[r]) + k)
            if np.isinf(t[r]):
                actions[span] = rngs[r].integers(0, learner.n_actions, size=k)
            else:
                u_parts.append(rngs[r].random((k, 1)))
                finite_spans.append(np.arange(span.start, span.stop))
                t_rows.append(np.full(k, t[r]))
        if u_parts:
            sub = np.concatenate(finite_spans)
            actions[sub] = learner.select_actions(
                states[sub],
                np.concatenate(t_rows),
                subset=sub,
                u=np.concatenate(u_parts),
            )
        return actions

    def sharing_actions(self, states: np.ndarray, temperature: float, rngs):
        """Per-slot sharing action indices; ``states`` covers the stacked
        rational peers (ordered like ``rational_idx``)."""
        actions = np.empty(self.n, dtype=np.int64)
        actions[self.altruistic_idx] = self.sharing_space.max_action
        actions[self.irrational_idx] = self.sharing_space.min_action
        if self.rational_idx.size:
            actions[self.rational_idx] = self._select(
                self.sharing_learner, states, temperature, rngs
            )
        return actions

    def edit_actions(self, states: np.ndarray, temperature: float, rngs):
        """Per-slot edit/vote behaviour action indices (same contract)."""
        actions = np.empty(self.n, dtype=np.int64)
        actions[self.altruistic_idx] = self.edit_space.constructive_action
        actions[self.irrational_idx] = self.edit_space.destructive_action
        if self.rational_idx.size:
            actions[self.rational_idx] = self._select(
                self.edit_learner, states, temperature, rngs
            )
        return actions

    def apply_ring_policy(
        self,
        mask: np.ndarray,
        share_actions: np.ndarray,
        edit_actions: np.ndarray,
    ) -> None:
        """Overwrite masked slots' actions with the collusion-ring policy.

        Ring members farm reputation: they always play the all-in sharing
        action and the fully constructive edit action, whatever their
        behaviour type selected.  The overwrite happens on the *action
        index* arrays, so downstream decoding and TD updates see the
        forced actions (a rational colluder's learner trains on what the
        ring made it do).  Vote rigging is not an action-space behaviour
        and lives in the edit/vote kernel instead.
        """
        share_actions[mask] = self.sharing_space.max_action
        edit_actions[mask] = self.edit_space.constructive_action

    # ------------------------------------------------------------------
    def learn_sharing(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> None:
        if not self.rational_idx.size:
            return
        self.sharing_learner.update(
            states,
            actions[self.rational_idx],
            rewards[self.rational_idx],
            next_states,
        )

    def learn_editing(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
    ) -> None:
        if not self.rational_idx.size:
            return
        self.edit_learner.update(
            states,
            actions[self.rational_idx],
            rewards[self.rational_idx],
            next_states,
        )
