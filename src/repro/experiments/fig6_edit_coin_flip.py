"""Figure 6: rational edit behaviour when altruists == irrationals.

The rational share varies from 10 % to 100 %; altruistic and irrational
peers split the remainder equally, so neither constructive nor destructive
behaviour has a built-in majority.  Paper result: "the outcome is
completely random" — individual runs converge to either camp, so the
per-seed constructive fractions are bimodal and their across-seed spread
is large.  We report the mean constructive/destructive fractions *and* the
across-seed standard deviation (the paper's randomness, quantified).
"""

from __future__ import annotations

import numpy as np

from ..analysis.figures import FigureData
from ..sim.scenarios import fig6_configs
from ._common import default_seeds, run_grid

__all__ = ["run"]


def run(
    fast: bool = False,
    n_seeds: int = 5,
    backend: str = "process",
    workers: int | None = None,
    percentages: list[int] | None = None,
    **_: object,
) -> list[FigureData]:
    seeds = default_seeds(n_seeds)
    grid = fig6_configs(seeds, fast=fast, percentages=percentages)
    grouped = run_grid(grid, backend=backend, workers=workers)

    pcts, cons_mean, dest_mean, cons_std = [], [], [], []
    per_seed: dict[int, list[float]] = {}
    for pct, results in grouped:
        fracs = np.array(
            [r.summary["edit_constructive_fraction_rational"] for r in results]
        )
        fracs = fracs[~np.isnan(fracs)]
        pcts.append(pct)
        m = float(fracs.mean()) if fracs.size else float("nan")
        cons_mean.append(m)
        dest_mean.append(1.0 - m)
        cons_std.append(float(fracs.std()) if fracs.size else float("nan"))
        per_seed[pct] = [round(float(f), 4) for f in fracs]

    x = np.asarray(pcts, dtype=np.float64)
    fig = FigureData(
        name="fig6",
        title="Rational edits, altruistic == irrational remainder",
        x_label="percentage of rational peers",
        y_label="fraction of rational edits",
        x=x,
        series={
            "constructive": np.asarray(cons_mean),
            "destructive": np.asarray(dest_mean),
            "constructive_std": np.asarray(cons_std),
        },
        meta={
            "n_seeds": n_seeds,
            "per_seed_constructive": str(per_seed),
        },
        kind="bar",
    )
    return [fig]
