"""Figure 7: rational agents adopt the majority's edit behaviour.

Top panel: the altruistic share varies 10-90 % — once altruists dominate,
rational agents learn constructive editing/voting.  Bottom panel: the
irrational share varies — once vandals dominate, rational agents learn
destructive behaviour.  This is the paper's headline robustness finding
("rational peers behave according to the majority").
"""

from __future__ import annotations

import numpy as np

from ..analysis.figures import FigureData
from ..sim.scenarios import mixture_configs
from ._common import default_seeds, run_grid

__all__ = ["run"]


def run(
    fast: bool = False,
    n_seeds: int = 3,
    backend: str = "process",
    workers: int | None = None,
    percentages: list[int] | None = None,
    **_: object,
) -> list[FigureData]:
    seeds = default_seeds(n_seeds)
    figs = []
    for vary in ("altruistic", "irrational"):
        grid = mixture_configs(vary, seeds, fast=fast, percentages=percentages)
        grouped = run_grid(grid, backend=backend, workers=workers)
        pcts, cons, dest, spread = [], [], [], []
        for pct, results in grouped:
            fracs = np.array(
                [r.summary["edit_constructive_fraction_rational"] for r in results]
            )
            fracs = fracs[~np.isnan(fracs)]
            m = float(fracs.mean()) if fracs.size else float("nan")
            pcts.append(pct)
            cons.append(m)
            dest.append(1.0 - m)
            spread.append(float(fracs.std()) if fracs.size else float("nan"))
        figs.append(
            FigureData(
                name=f"fig7_{vary}",
                title=f"Rational edits vs {vary} share",
                x_label=f"percentage of {vary} agents",
                y_label="fraction of rational edits",
                x=np.asarray(pcts, dtype=np.float64),
                series={
                    "constructive": np.asarray(cons),
                    "destructive": np.asarray(dest),
                },
                errors={"constructive": np.asarray(spread)},
                meta={"n_seeds": n_seeds},
                kind="bar",
            )
        )
    return figs
