"""Figure 3: shared articles/bandwidth with vs without the incentive scheme.

All-rational population (the paper's "Effectiveness with Rational Peers").
Paper result: with incentives the peers share approximately 8 % more
articles and 11 % more bandwidth than without.
"""

from __future__ import annotations

import numpy as np

from ..analysis.figures import FigureData
from ..analysis.stats import relative_change, welch_t_test
from ..sim.scenarios import fig3_configs
from ..sim._sweep import run_sweep
from ._common import aggregate_metric, default_seeds

__all__ = ["run"]


def run(
    fast: bool = False,
    n_seeds: int = 3,
    backend: str = "process",
    workers: int | None = None,
    **_: object,
) -> list[FigureData]:
    seeds = default_seeds(n_seeds)
    with_cfgs, without_cfgs = fig3_configs(seeds, fast=fast)
    results = run_sweep(with_cfgs + without_cfgs, backend=backend, workers=workers)
    with_res = results[: len(with_cfgs)]
    without_res = results[len(with_cfgs) :]

    rows = {}
    errs = {}
    for label, res in (("incentive", with_res), ("no_incentive", without_res)):
        f_mean, f_hw = aggregate_metric(res, "shared_files")
        b_mean, b_hw = aggregate_metric(res, "shared_bandwidth")
        rows[label] = np.array([f_mean, b_mean])
        errs[label] = np.array([f_hw, b_hw])

    gain_articles = relative_change(rows["no_incentive"][0], rows["incentive"][0])
    gain_bandwidth = relative_change(rows["no_incentive"][1], rows["incentive"][1])
    _, p_articles = welch_t_test(
        [r.summary["shared_files"] for r in with_res],
        [r.summary["shared_files"] for r in without_res],
    )
    _, p_bandwidth = welch_t_test(
        [r.summary["shared_bandwidth"] for r in with_res],
        [r.summary["shared_bandwidth"] for r in without_res],
    )
    fig = FigureData(
        name="fig3",
        title="Shared articles (x=0) and bandwidth (x=1), rational peers",
        x_label="resource",
        y_label="shared fraction",
        x=np.array([0.0, 1.0]),
        series=rows,
        errors=errs,
        meta={
            "gain_articles": round(float(gain_articles), 4),
            "gain_bandwidth": round(float(gain_bandwidth), 4),
            "p_articles": round(float(p_articles), 4),
            "p_bandwidth": round(float(p_bandwidth), 4),
            "paper_gain_articles": 0.08,
            "paper_gain_bandwidth": 0.11,
            "n_seeds": n_seeds,
        },
        kind="bar",
    )
    return [fig]
