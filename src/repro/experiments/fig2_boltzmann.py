"""Figure 2: Boltzmann distributions over x = 1..10 at T=2 and T=1000.

Reproduces the paper's illustration of the exploration-exploitation
control: at ``T = 2`` the distribution concentrates on high values, at
``T = 1000`` it is effectively uniform (probability ~= 0.1 everywhere).
"""

from __future__ import annotations

import numpy as np

from ..agents.qlearning import boltzmann_probabilities
from ..analysis.figures import FigureData

__all__ = ["run"]


def run(
    fast: bool = False,
    temperatures: tuple[float, ...] = (2.0, 1000.0),
    n_values: int = 10,
    **_: object,
) -> list[FigureData]:
    x = np.arange(1, n_values + 1, dtype=np.float64)
    figs = []
    for t in temperatures:
        p = boltzmann_probabilities(x[None, :], t)[0]
        figs.append(
            FigureData(
                name=f"fig2_T{t:g}",
                title=f"Boltzmann distribution, T={t:g}",
                x_label="x",
                y_label="probability",
                x=x,
                series={"p": p},
                meta={"T": t, "sum": float(p.sum())},
                kind="bar",
            )
        )
    return figs
