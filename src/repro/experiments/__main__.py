"""``python -m repro.experiments`` entry point."""

import sys

from .runner import main

sys.exit(main())
