"""CLI: regenerate any of the paper's figures (or the ablations).

Usage::

    repro-experiments fig3 --fast
    repro-experiments all --out results/ --seeds 3 --backend process
    python -m repro.experiments fig7 --fast --backend serial

Each experiment prints an ASCII rendition of the figure and writes
``<name>.csv`` + ``<name>.json`` under ``--out`` (default ``results/``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..obs import Stopwatch, get_tracer

from . import (
    ablations,
    adversary_panel,
    fig1_reputation,
    fig2_boltzmann,
    fig3_incentive_effect,
    fig4_population_mix,
    fig5_rational_stability,
    fig6_edit_coin_flip,
    fig7_majority_following,
    scheme_comparison,
)

EXPERIMENTS = {
    "fig1": fig1_reputation.run,
    "fig2": fig2_boltzmann.run,
    "fig3": fig3_incentive_effect.run,
    "fig4": fig4_population_mix.run,
    "fig5": fig5_rational_stability.run,
    # fig4+5 from one sweep; used by 'all' to avoid repeating the sweep.
    "fig4+5": fig4_population_mix.run_fig4_and_fig5,
    "fig6": fig6_edit_coin_flip.run,
    "fig7": fig7_majority_following.run,
    "ablation-repfunc": ablations.run_reputation_function_ablation,
    "ablation-rmin": ablations.run_rmin_ablation,
    "scheme-comparison": scheme_comparison.run,
    "adversary-panel": adversary_panel.run,
}

PAPER_FIGURES = ["fig1", "fig2", "fig3", "fig4+5", "fig6", "fig7"]

#: Added to ``all`` by ``--extras``: not part of the paper's figure set,
#: so regenerating them by default would triple the runtime of ``all``.
EXTRA_EXPERIMENTS = [
    "ablation-repfunc",
    "ablation-rmin",
    "scheme-comparison",
    "adversary-panel",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from Bocek et al. (IPDPS 2008).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/ablation to regenerate ('all' = fig1..fig7)",
    )
    parser.add_argument("--fast", action="store_true", help="reduced horizon")
    parser.add_argument("--seeds", type=int, default=None, help="seeds per point")
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default="process",
        help="sweep execution backend",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--out", type=Path, default=Path("results"))
    parser.add_argument(
        "--extras",
        action="store_true",
        help="with 'all': also run the ablations and the scheme comparison",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="cache sweeps in this run-store directory (skips cached configs)",
    )
    return parser


def run_experiment(name: str, args: argparse.Namespace, store=None) -> list:
    kwargs = dict(fast=args.fast, backend=args.backend, workers=args.workers)
    if args.seeds is not None:
        kwargs["n_seeds"] = args.seeds
    cache0 = (store.hits, store.misses) if store is not None else (0, 0)
    # Timing via the obs layer: Stopwatch for the reported duration, plus
    # an experiment/<name> span when an enabled tracer is ambient.
    watch = Stopwatch()
    with get_tracer().span(f"experiment/{name}"):
        figs = EXPERIMENTS[name](**kwargs)
    dt = watch.elapsed()
    for fig in figs:
        print(fig.render())
        csv_path = fig.to_csv(args.out / f"{fig.name}.csv")
        fig.to_json(args.out / f"{fig.name}.json")
        print(f"-> wrote {csv_path}")
    if store is not None:
        print(
            f"[{name}] cache: {store.hits - cache0[0]} hits / "
            f"{store.misses - cache0[1]} misses"
        )
    print(f"[{name}] done in {dt:.1f}s\n")
    return figs


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        names = PAPER_FIGURES + (EXTRA_EXPERIMENTS if args.extras else [])
    else:
        names = [args.experiment]
    store = None
    if args.store is not None:
        # The experiment modules call run_sweep themselves, so the store
        # is installed as the ambient default rather than threaded through
        # every figure module's signature.
        from ..sim._sweep import set_default_store
        from ..store._runstore import RunStore

        store = RunStore(args.store)
        previous = set_default_store(store)
    try:
        for name in names:
            run_experiment(name, args, store=store)
    finally:
        if store is not None:
            set_default_store(previous)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
