"""Figure 1: the logistic reputation function for g=19 and several betas.

A pure function sweep — no simulation.  Reproduces the paper's curves
``R(C) = 1/(1 + 19 exp(-beta C))`` for beta in {0.3, 0.2, 0.15, 0.1} over
``C in [0, 50]``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.figures import FigureData
from ..core.params import ReputationParams
from ..core.reputation import LogisticReputation

__all__ = ["run"]

PAPER_BETAS = (0.3, 0.2, 0.15, 0.1)


def run(
    fast: bool = False,
    betas: tuple[float, ...] = PAPER_BETAS,
    g: float = 19.0,
    c_max: float = 50.0,
    n_points: int = 101,
    **_: object,
) -> list[FigureData]:
    if fast:
        n_points = 26
    c = np.linspace(0.0, c_max, n_points)
    series = {}
    for beta in betas:
        fn = LogisticReputation(ReputationParams(g=g, beta=beta))
        series[f"beta={beta}"] = fn(c)
    fig = FigureData(
        name="fig1",
        title=f"Reputation function, g={g:g}",
        x_label="contribution_value",
        y_label="reputation_value",
        x=c,
        series=series,
        meta={"g": g, "r_min": 0.05},
    )
    return [fig]
