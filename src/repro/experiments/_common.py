"""Shared machinery for the per-figure experiment drivers."""

from __future__ import annotations

import numpy as np

from ..analysis.stats import mean_ci
from ..sim.config import SimulationConfig
from ..sim.engine import SimulationResult
from ..sim.rng import spawn_seeds
from ..sim._sweep import run_sweep

__all__ = ["default_seeds", "run_grid", "aggregate_metric"]

#: Root seed all experiments derive their run seeds from.
EXPERIMENT_ROOT_SEED = 20080414  # IPDPS 2008 conference date


def default_seeds(n_seeds: int, root: int = EXPERIMENT_ROOT_SEED) -> list[int]:
    return spawn_seeds(root, n_seeds)


def run_grid(
    grid: list[tuple[int, list[SimulationConfig]]],
    backend: str = "process",
    workers: int | None = None,
    store=None,
    progress=None,
) -> list[tuple[int, list[SimulationResult]]]:
    """Run a (label, configs) grid as one flat sweep, regroup results.

    ``store``/``progress`` pass straight through to :func:`run_sweep`
    (the ambient default store applies when ``store`` is None).
    """
    flat: list[SimulationConfig] = []
    spans: list[tuple[int, int, int]] = []
    for label, configs in grid:
        spans.append((label, len(flat), len(flat) + len(configs)))
        flat.extend(configs)
    results = run_sweep(
        flat, backend=backend, workers=workers, store=store, progress=progress
    )
    return [(label, results[a:b]) for label, a, b in spans]


def aggregate_metric(
    results: list[SimulationResult], key: str
) -> tuple[float, float]:
    """(mean, CI half-width) of one summary metric across seeds."""
    ci = mean_ci(np.array([r.summary[key] for r in results]))
    return ci.mean, ci.half_width
