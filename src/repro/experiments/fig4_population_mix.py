"""Figure 4: network-wide sharing vs population mix.

Sweeps the altruistic and the irrational fraction from 10 % to 90 % (the
other two types split the remainder) and reports the mean shared articles
and bandwidth *per peer*.  Paper result: performance rises ~linearly with
altruists and falls ~linearly with irrationals.
"""

from __future__ import annotations

import numpy as np

from ..analysis.figures import FigureData
from ..sim.scenarios import mixture_configs
from ._common import aggregate_metric, default_seeds, run_grid

__all__ = ["run", "mixture_figure"]


#: (metric key for articles, metric key for bandwidth, title suffix)
FIGURE_METRICS = {
    "fig4": ("shared_files", "shared_bandwidth", "per peer"),
    "fig5": (
        "shared_files_rational",
        "shared_bandwidth_rational",
        "per rational peer",
    ),
}


def mixture_figures(
    which: tuple[str, ...],
    fast: bool,
    n_seeds: int,
    backend: str,
    workers: int | None,
    percentages: list[int] | None = None,
) -> list[FigureData]:
    """Shared driver: Figures 4 and 5 differ only in the reported metric,
    so one sweep regenerates any subset of them (``which``)."""
    seeds = default_seeds(n_seeds)
    # data[fig][store][vary] -> list of means over the percentage axis
    data: dict[str, dict[str, dict[str, list[float]]]] = {}
    err: dict[str, dict[str, dict[str, list[float]]]] = {}
    pcts: list[int] = []
    for vary in ("altruistic", "irrational"):
        grid = mixture_configs(vary, seeds, fast=fast, percentages=percentages)
        grouped = run_grid(grid, backend=backend, workers=workers)
        pcts = [label for label, _ in grouped]
        for fig_name in which:
            metric_files, metric_bw, _ = FIGURE_METRICS[fig_name]
            for metric, store in ((metric_files, "files"), (metric_bw, "bandwidth")):
                means, hws = [], []
                for _, res in grouped:
                    m, hw = aggregate_metric(res, metric)
                    means.append(m)
                    hws.append(hw)
                data.setdefault(fig_name, {}).setdefault(store, {})[vary] = means
                err.setdefault(fig_name, {}).setdefault(store, {})[vary] = hws

    x = np.asarray(pcts, dtype=np.float64)
    figs = []
    for fig_name in which:
        suffix = FIGURE_METRICS[fig_name][2]
        for store, ylabel in (
            ("files", "shared articles"),
            ("bandwidth", "shared bandwidth"),
        ):
            figs.append(
                FigureData(
                    name=f"{fig_name}_{store}",
                    title=f"{ylabel} {suffix} vs altruistic/irrational share",
                    x_label="percentage of user type",
                    y_label=ylabel,
                    x=x,
                    series={
                        k: np.asarray(v) for k, v in data[fig_name][store].items()
                    },
                    errors={
                        k: np.asarray(v) for k, v in err[fig_name][store].items()
                    },
                    meta={"n_seeds": n_seeds},
                )
            )
    return figs


def run(
    fast: bool = False,
    n_seeds: int = 3,
    backend: str = "process",
    workers: int | None = None,
    percentages: list[int] | None = None,
    **_: object,
) -> list[FigureData]:
    return mixture_figures(
        ("fig4",),
        fast=fast,
        n_seeds=n_seeds,
        backend=backend,
        workers=workers,
        percentages=percentages,
    )


def run_fig4_and_fig5(
    fast: bool = False,
    n_seeds: int = 3,
    backend: str = "process",
    workers: int | None = None,
    percentages: list[int] | None = None,
    **_: object,
) -> list[FigureData]:
    """Regenerate Figures 4 and 5 from a single mixture sweep (the runner
    uses this for ``all`` so the expensive sweep runs once)."""
    return mixture_figures(
        ("fig4", "fig5"),
        fast=fast,
        n_seeds=n_seeds,
        backend=backend,
        workers=workers,
        percentages=percentages,
    )
