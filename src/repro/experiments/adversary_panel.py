"""Adversary panel: every incentive scheme vs collusion and sybil attacks.

Runs the ``adversary/shootout`` scenario pack — the four incentive
schemes each facing (a) collusion rings (25% of peers in rings of 4
that serve and upvote only each other) and (b) sybil attackers (20% of
peers discarding their identity at rate 0.05) — and reports the sharing
level each scheme sustains under each attack.

This extends the paper's robustness story to adversarial pressure the
figures never probed: shared-history reputation pays for collusion
resistance with vulnerability to cheap identities, while tit-for-tat's
private histories are naturally sybil-proof but cannot see a ring
serving only itself.
"""

from __future__ import annotations

import numpy as np

from ..analysis.figures import FigureData
from ..store.registry import expand_scenario
from ..sim._sweep import run_sweep
from ._common import aggregate_metric

__all__ = ["run", "SCHEMES", "ATTACKS"]

SCHEMES = ("none", "tft", "karma", "reputation")
ATTACKS = ("collusion", "sybil")


def run(
    fast: bool = False,
    n_seeds: int = 3,
    backend: str = "process",
    workers: int | None = None,
    **_: object,
) -> list[FigureData]:
    """Run the shootout grid and tabulate sharing per scheme x attack."""
    configs = expand_scenario(
        "adversary/shootout", fast=fast, n_seeds=n_seeds, schemes=SCHEMES
    )
    results = run_sweep(configs, backend=backend, workers=workers)

    # Group by what each config actually enables, not by expansion order.
    grouped: dict[tuple[str, str], list] = {}
    for cfg, result in zip(configs, results):
        attack = "collusion" if cfg.collusion_fraction > 0 else "sybil"
        grouped.setdefault((cfg.scheme, attack), []).append(result)

    series: dict[str, list[float]] = {a: [] for a in ATTACKS}
    errors: dict[str, list[float]] = {a: [] for a in ATTACKS}
    for scheme in SCHEMES:
        for attack in ATTACKS:
            mean, half = aggregate_metric(
                grouped[(scheme, attack)], "shared_bandwidth"
            )
            series[attack].append(mean)
            errors[attack].append(half)

    fig = FigureData(
        name="adversary_panel",
        title="Sharing sustained under collusion and sybil attacks",
        x_label="scheme_index",
        y_label="shared bandwidth",
        x=np.arange(len(SCHEMES), dtype=np.float64),
        series={k: np.asarray(v) for k, v in series.items()},
        errors={k: np.asarray(v) for k, v in errors.items()},
        meta={"schemes": ",".join(SCHEMES), "n_seeds": n_seeds},
        kind="bar",
    )
    return [fig]
