"""Experiment drivers: one module per paper figure, plus ablations.

Regenerate from the command line::

    repro-experiments all --fast
    python -m repro.experiments fig3
"""

from . import (  # noqa: F401  (re-exported for the runner)
    ablations,
    fig1_reputation,
    fig2_boltzmann,
    fig3_incentive_effect,
    fig4_population_mix,
    fig5_rational_stability,
    fig6_edit_coin_flip,
    fig7_majority_following,
    scheme_comparison,
)

__all__ = [
    "ablations",
    "fig1_reputation",
    "fig2_boltzmann",
    "fig3_incentive_effect",
    "fig4_population_mix",
    "fig5_rational_stability",
    "fig6_edit_coin_flip",
    "fig7_majority_following",
    "scheme_comparison",
]
