"""Figure 5: sharing *per rational peer* vs population mix.

Same sweep as Figure 4 but restricted to the rational subpopulation.
Paper result: nearly flat — "the behavior of rational agents does not seem
to be affected by varying degrees of altruistic and irrational agents"
(articles ~0.21-0.29, bandwidth ~0.54-0.68 in the paper's plots).
"""

from __future__ import annotations

from ..analysis.figures import FigureData
from .fig4_population_mix import mixture_figures

__all__ = ["run"]


def run(
    fast: bool = False,
    n_seeds: int = 3,
    backend: str = "process",
    workers: int | None = None,
    percentages: list[int] | None = None,
    **_: object,
) -> list[FigureData]:
    return mixture_figures(
        ("fig5",),
        fast=fast,
        n_seeds=n_seeds,
        backend=backend,
        workers=workers,
        percentages=percentages,
    )
