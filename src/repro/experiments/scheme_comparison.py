"""Scheme bake-off: the paper's scheme vs its related-work categories.

Runs the all-rational Figure-3 workload under four schemes — no
incentives, tit-for-tat (private history, section II-B2), karma
(trade-based, section II-B1) and the paper's shared-history reputation
scheme — and reports the sharing levels each one sustains.

The point the paper argues qualitatively becomes measurable: on a
workload dominated by non-direct relations, TFT's private history barely
distinguishes peers (a downloader almost never served its source before),
so it behaves like the no-incentive baseline; the shared-history
reputation scheme is the one that moves sharing.
"""

from __future__ import annotations

import numpy as np

from ..analysis.figures import FigureData
from ..sim.scenarios import base_config
from ..sim._sweep import run_sweep
from ._common import aggregate_metric, default_seeds

__all__ = ["run", "SCHEMES"]

SCHEMES = ("none", "tft", "karma", "reputation")


def run(
    fast: bool = False,
    n_seeds: int = 3,
    backend: str = "process",
    workers: int | None = None,
    **_: object,
) -> list[FigureData]:
    seeds = default_seeds(n_seeds)
    configs = [
        base_config(fast, scheme=scheme, seed=s)
        for scheme in SCHEMES
        for s in seeds
    ]
    results = run_sweep(configs, backend=backend, workers=workers)

    files_m, files_e, bw_m, bw_e = [], [], [], []
    for i, scheme in enumerate(SCHEMES):
        chunk = results[i * n_seeds : (i + 1) * n_seeds]
        fm, fh = aggregate_metric(chunk, "shared_files")
        bm, bh = aggregate_metric(chunk, "shared_bandwidth")
        files_m.append(fm)
        files_e.append(fh)
        bw_m.append(bm)
        bw_e.append(bh)

    fig = FigureData(
        name="scheme_comparison",
        title="Sharing sustained per incentive scheme (rational peers)",
        x_label="scheme_index",
        y_label="shared fraction",
        x=np.arange(len(SCHEMES), dtype=np.float64),
        series={"articles": np.asarray(files_m), "bandwidth": np.asarray(bw_m)},
        errors={"articles": np.asarray(files_e), "bandwidth": np.asarray(bw_e)},
        meta={"schemes": ",".join(SCHEMES), "n_seeds": n_seeds},
        kind="bar",
    )
    return [fig]
