"""Ablations beyond the paper's figures (its future-work directions).

* ``run_reputation_function_ablation`` — "future work will investigate new
  and existing reputation functions in order to maximize sharing": sweeps
  the logistic steepness beta and compares alternative function families
  (linear / power / step) on the Figure-3 metric.
* ``run_rmin_ablation`` — section III-A's R_min trade-off: "a high R_min
  provides incentives for whitewashing the identity".  Sweeps R_min with a
  whitewashing churn model switched on and reports sharing plus whitewash
  pressure (how much reputation a peer loses by resetting its identity).
"""

from __future__ import annotations

import numpy as np

from ..analysis.figures import FigureData
from ..core.params import PaperConstants, ReputationParams, ServiceParams
from ..sim.scenarios import base_config
from ..sim._sweep import run_sweep
from ._common import aggregate_metric, default_seeds

__all__ = ["run_reputation_function_ablation", "run_rmin_ablation"]


def run_reputation_function_ablation(
    fast: bool = False,
    n_seeds: int = 2,
    backend: str = "process",
    workers: int | None = None,
    betas: tuple[float, ...] = (0.1, 0.15, 0.2, 0.3),
    families: tuple[str, ...] = ("logistic", "linear", "power", "step"),
    **_: object,
) -> list[FigureData]:
    seeds = default_seeds(n_seeds)
    figs = []

    # Sweep the logistic steepness.
    configs, labels = [], []
    for beta in betas:
        constants = PaperConstants().with_overrides(
            reputation_s=ReputationParams(beta=beta)
        )
        for s in seeds:
            configs.append(base_config(fast, constants=constants, seed=s))
        labels.append(beta)
    results = run_sweep(configs, backend=backend, workers=workers)
    files_m, bw_m = [], []
    for i, beta in enumerate(labels):
        chunk = results[i * n_seeds : (i + 1) * n_seeds]
        files_m.append(aggregate_metric(chunk, "shared_files")[0])
        bw_m.append(aggregate_metric(chunk, "shared_bandwidth")[0])
    figs.append(
        FigureData(
            name="ablation_beta",
            title="Sharing vs logistic steepness beta",
            x_label="beta",
            y_label="shared fraction",
            x=np.asarray(labels, dtype=np.float64),
            series={"articles": np.asarray(files_m), "bandwidth": np.asarray(bw_m)},
            meta={"n_seeds": n_seeds},
        )
    )

    # Compare function families at the default operating point.
    configs = []
    for fam in families:
        for s in seeds:
            configs.append(base_config(fast, reputation_fn_s=fam, seed=s))
    results = run_sweep(configs, backend=backend, workers=workers)
    files_m, bw_m = [], []
    for i, fam in enumerate(families):
        chunk = results[i * n_seeds : (i + 1) * n_seeds]
        files_m.append(aggregate_metric(chunk, "shared_files")[0])
        bw_m.append(aggregate_metric(chunk, "shared_bandwidth")[0])
    figs.append(
        FigureData(
            name="ablation_family",
            title="Sharing vs reputation-function family",
            x_label="family_index",
            y_label="shared fraction",
            x=np.arange(len(families), dtype=np.float64),
            series={"articles": np.asarray(files_m), "bandwidth": np.asarray(bw_m)},
            meta={"families": ",".join(families), "n_seeds": n_seeds},
            kind="bar",
        )
    )
    return figs


def run_rmin_ablation(
    fast: bool = False,
    n_seeds: int = 2,
    backend: str = "process",
    workers: int | None = None,
    r_mins: tuple[float, ...] = (0.02, 0.05, 0.10, 0.20, 0.40),
    whitewash_rate: float = 0.002,
    **_: object,
) -> list[FigureData]:
    seeds = default_seeds(n_seeds)
    configs = []
    for r_min in r_mins:
        theta = max(0.5 * (r_min + 1.0) * 0.2, r_min + 0.05)  # keep theta > r_min
        constants = PaperConstants().with_overrides(
            reputation_s=ReputationParams(r_min=r_min),
            service=ServiceParams(edit_threshold=theta),
        )
        for s in seeds:
            configs.append(
                base_config(
                    fast,
                    constants=constants,
                    whitewash_rate=whitewash_rate,
                    seed=s,
                )
            )
    results = run_sweep(configs, backend=backend, workers=workers)
    files_m, bw_m, wash_loss = [], [], []
    for i, r_min in enumerate(r_mins):
        chunk = results[i * n_seeds : (i + 1) * n_seeds]
        files_m.append(aggregate_metric(chunk, "shared_files")[0])
        bw_m.append(aggregate_metric(chunk, "shared_bandwidth")[0])
        # Whitewash pressure: the reputation a steady sharer forfeits by
        # resetting to R_min.  High R_min => small loss => whitewashing
        # is cheap (the paper's warning).
        mean_rep = aggregate_metric(chunk, "reputation_s_rational")[0]
        wash_loss.append(mean_rep - r_min)
    figs = [
        FigureData(
            name="ablation_rmin",
            title="Sharing and whitewash pressure vs R_min",
            x_label="r_min",
            y_label="value",
            x=np.asarray(r_mins, dtype=np.float64),
            series={
                "articles": np.asarray(files_m),
                "bandwidth": np.asarray(bw_m),
                "whitewash_loss": np.asarray(wash_loss),
            },
            meta={"whitewash_rate": whitewash_rate, "n_seeds": n_seeds},
        )
    ]
    return figs
