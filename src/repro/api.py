"""Stable public facade of the reproduction package.

Everything an external consumer needs lives behind these few names;
anything not exported here (module layout, private helpers, the
``_sweep``/``_runstore`` implementation modules) may move between
releases without notice.  The facade follows semantic versioning: names
in ``__all__`` only change behaviour or signature with a major version
bump (see the "Public API" section of the README).

Quickstart::

    >>> import repro.api as api
    >>> cfg = api.SimulationConfig(n_agents=8, n_articles=2,
    ...                            founders_per_article=2,
    ...                            training_steps=5, eval_steps=5)
    >>> result = api.run(cfg)
    >>> 0.0 <= result.summary["shared_bandwidth"] <= 1.0
    True
    >>> sorted(b["name"] for b in api.list_backends())
    ['compiled', 'numpy']
"""

from __future__ import annotations

from typing import Any

from .sim._sweep import run_sweep as _run_sweep
from .sim.backends import list_backends
from .sim.config import EngineConfig, ScaleConfig, SimulationConfig
from .sim.engine import SimulationResult, run_simulation
from .store._runstore import RunStore
from .store.compose import compose_scenarios

__all__ = [
    "SimulationConfig",
    "ScaleConfig",
    "EngineConfig",
    "SimulationResult",
    "RunStore",
    "run",
    "sweep",
    "compose",
    "open_store",
    "list_backends",
]


def run(config: SimulationConfig, *, backend: str | None = None) -> SimulationResult:
    """Execute one full simulation (training + evaluation) and summarize it.

    ``backend`` overrides the config's kernel backend
    (``engine.backend``): ``"numpy"`` is the always-on reference,
    ``"compiled"`` the JIT-compiled kernels (falls back to numpy with a
    warning when no compiler is available).  Execution policy only — it
    never changes the result or the config's store hash.
    """
    if backend is not None:
        config = config.with_(**{"engine.backend": backend})
    return run_simulation(config)


def sweep(
    configs: list[SimulationConfig],
    *,
    store: RunStore | None = None,
    executor: str = "process",
    backend: str | None = None,
    **kwargs: Any,
) -> list[SimulationResult]:
    """Run a grid of configs; results align with the input list.

    ``executor`` picks the parallelization (``serial`` | ``thread`` |
    ``process``); ``backend`` picks the kernel backend every config runs
    on (``None`` keeps each config's own ``engine.backend``).  ``store``
    enables caching and resumability.  Remaining keyword arguments
    (``lane_batch``, ``dispatch``, ``on_error``, ``checkpoint_every``,
    ...) forward to :func:`repro.sim._sweep.run_sweep`, the engine-level
    entry point behind this facade.
    """
    return _run_sweep(
        configs,
        backend=executor,
        store=store,
        kernel_backend=backend,
        **kwargs,
    )


def compose(
    base: Any, *modifiers: Any, **kwargs: Any
) -> list[SimulationConfig]:
    """Expand a scenario pack and cross it with modifiers into configs.

    Thin alias of :func:`repro.store.compose.compose_scenarios`:
    ``compose("paper/fig3", "churn/storm", n_seeds=3)`` yields the
    fig3 grid under a churn storm, ready for :func:`sweep`.
    """
    return compose_scenarios(base, *modifiers, **kwargs)


def open_store(root: Any) -> RunStore:
    """Open (creating if needed) the on-disk run store at ``root``."""
    return RunStore(root)
