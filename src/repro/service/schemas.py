"""Request/response schemas of the simulation service HTTP API.

The submit endpoint accepts three spellings of "what to run", all of
which reduce to a list of :class:`~repro.sim.config.SimulationConfig`
before anything is scheduled — the service's job identity, dedup and
cache keys are *config hashes*, never raw request bytes, so the same
work submitted in different spellings (a scenario-algebra spec, its
hand-expanded config dicts, a different field order) collapses onto the
same store entries and the same in-flight computations:

* ``{"scenario": "pack+mod[+mod...]"}`` — a scenario-algebra spec
  resolved through :func:`repro.store.compose.resolve_scenario`, with
  optional ``fast``/``seeds``/``overrides`` knobs mirroring the
  ``repro run`` CLI;
* ``{"config": {...}}`` — one raw canonical config dict revived via
  :func:`repro.store.hashing.config_from_dict`;
* ``{"configs": [{...}, ...]}`` — a list of raw config dicts (an
  explicit grid).

Validation failures raise :class:`SchemaError`, which the HTTP layer
maps to a 400 response carrying the message.  Event-collecting configs
are rejected up front: the store cannot persist their event logs, so
the service could neither cache nor replay them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim.config import SimulationConfig
from ..store.compose import resolve_scenario
from ..store.hashing import config_from_dict

__all__ = ["SchemaError", "SubmitSpec", "parse_submit"]

#: Hard cap on configs per submission: a single request must not be able
#: to swallow the whole queue bound (and with it every other client's
#: admission) in one call.
MAX_CONFIGS_PER_JOB = 4096


class SchemaError(ValueError):
    """A request body failed validation; the message is client-facing."""


@dataclass(frozen=True)
class SubmitSpec:
    """One validated submission: the configs to run plus a display label."""

    configs: tuple[SimulationConfig, ...]
    label: str


def _parse_scenario_spec(body: dict[str, Any]) -> SubmitSpec:
    """Expand a ``{"scenario": ...}`` submission into concrete configs."""
    spec = body["scenario"]
    if not isinstance(spec, str) or not spec:
        raise SchemaError("'scenario' must be a non-empty string")
    fast = body.get("fast", False)
    if not isinstance(fast, bool):
        raise SchemaError("'fast' must be a boolean")
    seeds = body.get("seeds", 1)
    if not isinstance(seeds, int) or isinstance(seeds, bool) or seeds < 1:
        raise SchemaError("'seeds' must be a positive integer")
    overrides = body.get("overrides")
    if overrides is not None and not isinstance(overrides, dict):
        raise SchemaError("'overrides' must be an object of config fields")
    try:
        pack = resolve_scenario(spec)
        configs = pack.expand(fast=fast, n_seeds=seeds, overrides=overrides or None)
    except (KeyError, ValueError, TypeError) as exc:
        raise SchemaError(str(exc.args[0] if exc.args else exc)) from exc
    return SubmitSpec(configs=tuple(configs), label=spec)


def _parse_config_dicts(raw: list[Any]) -> tuple[SimulationConfig, ...]:
    """Revive a list of raw canonical config dicts."""
    configs = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise SchemaError(f"config #{i} must be an object")
        try:
            configs.append(config_from_dict(entry))
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"config #{i} invalid: {exc}") from exc
    return tuple(configs)


def parse_submit(body: Any) -> SubmitSpec:
    """Validate a submit request body into a :class:`SubmitSpec`.

    Exactly one of ``scenario``, ``config`` or ``configs`` must be
    present.  Every resulting config is checked against the service's
    storability rules (no ``collect_events``) and the per-job size cap.
    """
    if not isinstance(body, dict):
        raise SchemaError("request body must be a JSON object")
    keys = [k for k in ("scenario", "config", "configs") if k in body]
    if len(keys) != 1:
        raise SchemaError(
            "exactly one of 'scenario', 'config' or 'configs' is required"
        )
    if keys[0] == "scenario":
        spec = _parse_scenario_spec(body)
    elif keys[0] == "config":
        spec = SubmitSpec(
            configs=_parse_config_dicts([body["config"]]), label="config"
        )
    else:
        raw = body["configs"]
        if not isinstance(raw, list):
            raise SchemaError("'configs' must be a list of objects")
        spec = SubmitSpec(
            configs=_parse_config_dicts(raw), label=f"configs[{len(raw)}]"
        )
    if not spec.configs:
        raise SchemaError("submission expands to zero configs")
    if len(spec.configs) > MAX_CONFIGS_PER_JOB:
        raise SchemaError(
            f"submission expands to {len(spec.configs)} configs; "
            f"the per-job cap is {MAX_CONFIGS_PER_JOB}"
        )
    for cfg in spec.configs:
        if cfg.collect_events:
            raise SchemaError(
                "collect_events configs cannot be served: event logs are "
                "not persisted, so results could not be cached or replayed"
            )
    return spec
