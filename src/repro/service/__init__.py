"""Simulation-as-a-service: an async HTTP job API over the RunStore.

The always-on front-end of the reproduction stack (docs/SERVICE.md).
Clients POST scenario-algebra specs or raw config grids; the service
reduces every submission to config hashes, dedupes against the
content-addressed :class:`~repro.store.RunStore` *and* against work
currently in flight, schedules what remains on a bounded worker pool
through :func:`repro.sim.sweep.run_sweep`, and streams per-config
progress over SSE.  Stdlib-only, like the obs layer it reports through.

Modules:

* :mod:`repro.service.schemas` — request validation (scenario specs,
  raw config dicts) into :class:`SubmitSpec`;
* :mod:`repro.service.hub` — per-job SSE event streams with bounded
  replay history;
* :mod:`repro.service.jobs` — the job/compute-unit split, in-flight
  dedup, bounded admission and the worker pool;
* :mod:`repro.service.app` — the asyncio HTTP server and the
  ``repro serve`` entry point.
"""

from .app import ServiceSettings, SimulationService, serve
from .hub import EventHub, JobEvent, sse_encode
from .jobs import Job, JobManager, QueueFull, ServiceClosing
from .schemas import SchemaError, SubmitSpec, parse_submit

__all__ = [
    "ServiceSettings",
    "SimulationService",
    "serve",
    "EventHub",
    "JobEvent",
    "sse_encode",
    "Job",
    "JobManager",
    "QueueFull",
    "ServiceClosing",
    "SchemaError",
    "SubmitSpec",
    "parse_submit",
]
