"""Per-job event hub: bounded replay history plus live SSE fan-out.

Every job owns one event stream.  Publishers (the job manager, driven by
sweep progress callbacks) append :class:`JobEvent` records; subscribers
(HTTP clients on ``GET /jobs/<id>/events``) receive the retained history
first and then live events as they land, so a client that connects
*after* submission still sees the whole lifecycle — the replay is what
makes the SSE endpoint usable for polling-averse clients without a
subscribe-before-submit handshake.

The hub is single-threaded by design: every method must be called on
the service's event loop (worker threads hop over via
``loop.call_soon_threadsafe``), which makes the append + fan-out
atomic without locks.  Per-job history is a bounded ring — a
pathological million-config job cannot pin unbounded memory — and the
drop count is surfaced on the stream so consumers know the replay is
partial.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

__all__ = ["JobEvent", "EventHub", "sse_encode"]

#: Events retained per job for late-subscriber replay; older events are
#: dropped oldest-first (the drop count is reported in replays).
DEFAULT_HISTORY_LIMIT = 4096

#: Event types that end a job's stream; subscribers disconnect after one.
TERMINAL_EVENTS = frozenset({"completed", "failed"})


@dataclass(frozen=True)
class JobEvent:
    """One server-sent event: a monotonically numbered typed payload."""

    seq: int
    event: str
    data: dict[str, Any]

    @property
    def terminal(self) -> bool:
        """Whether this event ends the job's stream."""
        return self.event in TERMINAL_EVENTS


def sse_encode(event: JobEvent) -> bytes:
    """Render one event in the ``text/event-stream`` wire format."""
    payload = json.dumps(event.data, separators=(",", ":"))
    return (
        f"id: {event.seq}\nevent: {event.event}\ndata: {payload}\n\n"
    ).encode("utf-8")


class _Stream:
    """One job's retained history and live subscriber queues."""

    __slots__ = ("events", "dropped", "seq", "subscribers", "closed")

    def __init__(self) -> None:
        self.events: list[JobEvent] = []
        self.dropped = 0
        self.seq = 0
        self.subscribers: list[asyncio.Queue] = []
        self.closed = False


class EventHub:
    """Fan-out of job lifecycle events to any number of SSE subscribers."""

    def __init__(self, history_limit: int = DEFAULT_HISTORY_LIMIT):
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.history_limit = int(history_limit)
        self._streams: dict[str, _Stream] = {}

    def _stream(self, job_id: str) -> _Stream:
        stream = self._streams.get(job_id)
        if stream is None:
            stream = self._streams[job_id] = _Stream()
        return stream

    # ------------------------------------------------------------------
    # Publishing (event-loop thread only)
    # ------------------------------------------------------------------
    def publish(self, job_id: str, event: str, data: dict[str, Any]) -> JobEvent:
        """Append one event and push it to every live subscriber.

        A terminal event (``completed``/``failed``) closes the stream:
        later publishes on the same job are refused — the job lifecycle
        is strictly one terminal event — and subscribers drain and
        disconnect.
        """
        stream = self._stream(job_id)
        if stream.closed:
            raise RuntimeError(f"job {job_id} already published a terminal event")
        stream.seq += 1
        ev = JobEvent(seq=stream.seq, event=event, data=data)
        stream.events.append(ev)
        if len(stream.events) > self.history_limit:
            del stream.events[0]
            stream.dropped += 1
        if ev.terminal:
            stream.closed = True
        for queue in stream.subscribers:
            queue.put_nowait(ev)
        return ev

    # ------------------------------------------------------------------
    # Subscribing
    # ------------------------------------------------------------------
    def subscribe(self, job_id: str) -> tuple[list[JobEvent], int, asyncio.Queue]:
        """Join a job's stream: ``(history, dropped, live queue)``.

        The returned history snapshot covers everything retained so far
        (``dropped`` counts ring-evicted events the replay cannot
        include); events published after this call land on the queue.
        For an already closed stream the queue never produces — the
        terminal event is in the history.
        """
        stream = self._stream(job_id)
        queue: asyncio.Queue = asyncio.Queue()
        if not stream.closed:
            stream.subscribers.append(queue)
        return list(stream.events), stream.dropped, queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        """Detach one subscriber queue (idempotent)."""
        stream = self._streams.get(job_id)
        if stream is not None:
            try:
                stream.subscribers.remove(queue)
            except ValueError:
                pass

    def subscriber_count(self, job_id: str) -> int:
        """Live subscribers on one job's stream (0 for unknown jobs)."""
        stream = self._streams.get(job_id)
        return len(stream.subscribers) if stream is not None else 0

    def close_all(self) -> None:
        """Wake every subscriber with a shutdown event (service exit)."""
        for job_id, stream in self._streams.items():
            if stream.closed:
                continue
            stream.seq += 1
            ev = JobEvent(
                seq=stream.seq,
                event="failed",
                data={"job_id": job_id, "error": "service shutting down"},
            )
            stream.events.append(ev)
            stream.closed = True
            for queue in stream.subscribers:
                queue.put_nowait(ev)
