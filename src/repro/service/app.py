"""Asyncio HTTP front-end of the simulation service.

A deliberately small, stdlib-only HTTP/1.1 server (the repo's zero-dep
stance: the obs layer renders Prometheus text without a client library,
and this layer serves it without a web framework).  One
:class:`asyncio.Server` accepts connections; each request is parsed,
routed, answered and the connection closed (``Connection: close``) —
the service's long-lived channel is the SSE stream, not keep-alive.

Routes::

    GET  /                   API index
    GET  /healthz            liveness + queue counters
    GET  /metrics            Prometheus text exposition
    POST /jobs               submit (scenario spec or raw config dicts)
    GET  /jobs               list jobs (most recent first)
    GET  /jobs/<id>          job status + per-config results
    GET  /jobs/<id>/events   SSE stream (replay + live, ends on terminal)

Backpressure is surfaced exactly as the store dedup is: admission is
atomic inside :meth:`~repro.service.jobs.JobManager.submit`, so a 429
(queue full, with ``Retry-After``) or 503 (shutting down) means *nothing*
of the submission was enqueued.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Awaitable, Callable

from ..obs import MetricsRegistry
from ..store._runstore import RunStore
from .hub import EventHub, sse_encode
from .jobs import JobManager, QueueFull, ServiceClosing
from .schemas import SchemaError, parse_submit

__all__ = ["ServiceSettings", "SimulationService", "serve"]

#: Request bodies above this are refused with 413 before being read.
MAX_BODY_BYTES = 8 << 20


class _HttpError(Exception):
    """An error response to render; carries status + extra headers."""

    def __init__(
        self, status: int, message: str, headers: list[tuple[str, str]] | None = None
    ):
        self.status = status
        self.message = message
        self.headers = headers or []
        super().__init__(message)


_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServiceSettings:
    """Tunables of one service instance (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8321
    store_path: str | Path = "runstore"
    workers: int = 2
    max_pending: int = 256
    batch_width: int = 4
    dispatch: str | None = None
    #: Steps between mid-run resume snapshots (0 disables); see
    #: :mod:`repro.resilience`.
    checkpoint_every: int = 0
    history_limit: int = 4096
    heartbeat_s: float = 15.0
    shutdown_timeout_s: float = 30.0
    extra: dict[str, Any] = field(default_factory=dict)


class SimulationService:
    """The HTTP server plus the job manager and hub it fronts."""

    def __init__(
        self,
        store: RunStore,
        settings: ServiceSettings | None = None,
        metrics: MetricsRegistry | None = None,
        runner: Callable | None = None,
    ):
        self.settings = settings if settings is not None else ServiceSettings()
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.hub = EventHub(history_limit=self.settings.history_limit)
        self.manager = JobManager(
            store,
            hub=self.hub,
            metrics=self.metrics,
            workers=self.settings.workers,
            max_pending=self.settings.max_pending,
            batch_width=self.settings.batch_width,
            dispatch=self.settings.dispatch,
            runner=runner,
            checkpoint_every=self.settings.checkpoint_every,
        )
        self._server: asyncio.Server | None = None
        self.port: int | None = None  # actual bound port (settings may say 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and spawn the compute workers."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain compute, wake streams."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.close(timeout_s=self.settings.shutdown_timeout_s)

    @property
    def url(self) -> str:
        """Base URL of the bound server (valid after :meth:`start`)."""
        return f"http://{self.settings.host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Parse one request, dispatch it, close the connection."""
        started = time.perf_counter()
        method = path = "?"
        route = "unparsed"
        status = 500
        try:
            method, path, body = await self._read_request(reader)
            route, handler = self._route(method, path)
            status = await handler(writer, path, body)
        except _HttpError as exc:
            status = exc.status
            await self._respond_json(
                writer, exc.status, {"error": exc.message}, exc.headers
            )
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            status = 499  # client went away mid-request/stream
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await self._respond_json(writer, 500, {"error": str(exc)})
            except OSError:
                pass
        finally:
            self.metrics.counter(
                "service_requests_total",
                "HTTP requests by method, route and status",
                method=method,
                route=route,
                status=status,
            ).inc()
            self.metrics.histogram(
                "service_request_seconds",
                "Request handling wall time",
                route=route,
            ).observe(time.perf_counter() - started)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        """Parse the request line, headers and (bounded) body."""
        line = await reader.readline()
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    def _route(
        self, method: str, target: str
    ) -> tuple[str, Callable[..., Awaitable[int]]]:
        """Map ``(method, path)`` to a handler + metrics route label."""
        path = target.split("?", 1)[0]
        segments = [s for s in path.split("/") if s]
        if not segments:
            return "/", self._require(method, "GET", self._handle_index)
        if segments == ["healthz"]:
            return "/healthz", self._require(method, "GET", self._handle_healthz)
        if segments == ["metrics"]:
            return "/metrics", self._require(method, "GET", self._handle_metrics)
        if segments == ["jobs"]:
            if method == "POST":
                return "/jobs", self._handle_submit
            return "/jobs", self._require(method, "GET", self._handle_list)
        if len(segments) == 2 and segments[0] == "jobs":
            return "/jobs/{id}", self._require(method, "GET", self._handle_job)
        if len(segments) == 3 and segments[0] == "jobs" and segments[2] == "events":
            return (
                "/jobs/{id}/events",
                self._require(method, "GET", self._handle_events),
            )
        raise _HttpError(404, f"no such endpoint: {path}")

    @staticmethod
    def _require(method: str, expected: str, handler: Callable) -> Callable:
        if method != expected:
            raise _HttpError(405, f"method {method} not allowed here")
        return handler

    # ------------------------------------------------------------------
    # Handlers (each returns the response status for metrics)
    # ------------------------------------------------------------------
    async def _handle_index(self, writer, path: str, body: bytes) -> int:
        await self._respond_json(
            writer,
            200,
            {
                "service": "repro simulation service",
                "endpoints": [
                    "GET /healthz",
                    "GET /metrics",
                    "POST /jobs",
                    "GET /jobs",
                    "GET /jobs/{id}",
                    "GET /jobs/{id}/events",
                ],
            },
        )
        return 200

    async def _handle_healthz(self, writer, path: str, body: bytes) -> int:
        payload = {
            "status": "shutting_down" if self.manager.closing else "ok",
            "jobs": len(self.manager.jobs),
            "queue_depth": self.manager.queue_depth,
            "inflight_units": self.manager.inflight,
            "max_pending": self.manager.max_pending,
        }
        status = 503 if self.manager.closing else 200
        await self._respond_json(writer, status, payload)
        return status

    async def _handle_metrics(self, writer, path: str, body: bytes) -> int:
        text = self.metrics.exposition().encode("utf-8")
        await self._respond(
            writer, 200, text, content_type="text/plain; version=0.0.4"
        )
        return 200

    async def _handle_submit(self, writer, path: str, body: bytes) -> int:
        try:
            parsed = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc
        try:
            spec = parse_submit(parsed)
        except SchemaError as exc:
            raise _HttpError(400, str(exc)) from exc
        try:
            job = self.manager.submit(spec)
        except QueueFull as exc:
            raise _HttpError(
                429, str(exc), headers=[("Retry-After", str(exc.retry_after_s))]
            ) from exc
        except ServiceClosing as exc:
            raise _HttpError(503, str(exc), headers=[("Retry-After", "5")]) from exc
        await self._respond_json(
            writer,
            201,
            job.view(),
            headers=[("Location", f"/jobs/{job.id}")],
        )
        return 201

    async def _handle_list(self, writer, path: str, body: bytes) -> int:
        jobs = sorted(
            self.manager.jobs.values(), key=lambda j: j.created_at, reverse=True
        )
        await self._respond_json(
            writer, 200, {"jobs": [j.view() for j in jobs], "count": len(jobs)}
        )
        return 200

    def _job_or_404(self, path: str):
        job_id = [s for s in path.split("?", 1)[0].split("/") if s][1]
        job = self.manager.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job: {job_id}")
        return job

    async def _handle_job(self, writer, path: str, body: bytes) -> int:
        job = self._job_or_404(path)
        view = job.view(full=True)
        # Failed slots get their persisted quarantine artifact surfaced
        # (hash, attempt count, last error) — the API's window into the
        # store's errors/ directory, same data as `repro ls --errors`.
        quarantined = []
        for entry in view["results"]:
            if entry.get("status") != "failed":
                continue
            artifact = self.store.get_error(entry["config_hash"]) or {}
            detail = {
                "config_hash": entry["config_hash"],
                "attempts": artifact.get("attempts", entry.get("attempts")),
                "error": artifact.get("error", entry.get("error")),
            }
            if "created_at" in artifact:
                detail["created_at"] = artifact["created_at"]
            quarantined.append(detail)
        if quarantined:
            view["quarantined"] = quarantined
        await self._respond_json(writer, 200, view)
        return 200

    async def _handle_events(self, writer, path: str, body: bytes) -> int:
        job = self._job_or_404(path)
        history, dropped, queue = self.hub.subscribe(job.id)
        self.metrics.gauge(
            "service_sse_subscribers", "Open SSE streams"
        ).inc()
        try:
            writer.write(
                self._head(
                    200,
                    [
                        ("Content-Type", "text/event-stream"),
                        ("Cache-Control", "no-store"),
                        ("Connection", "close"),
                    ],
                )
            )
            if dropped:
                writer.write(f": {dropped} earlier events dropped\n\n".encode())
            terminal = False
            for ev in history:
                writer.write(sse_encode(ev))
                terminal = terminal or ev.terminal
            await writer.drain()
            while not terminal:
                try:
                    ev = await asyncio.wait_for(
                        queue.get(), timeout=self.settings.heartbeat_s
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
                    continue
                writer.write(sse_encode(ev))
                await writer.drain()
                terminal = ev.terminal
        finally:
            self.hub.unsubscribe(job.id, queue)
            self.metrics.gauge(
                "service_sse_subscribers", "Open SSE streams"
            ).inc(-1)
        return 200

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _head(status: int, headers: list[tuple[str, str]]) -> bytes:
        reason = _STATUS_TEXT.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines += [f"{k}: {v}" for k, v in headers]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: list[tuple[str, str]] | None = None,
    ) -> None:
        all_headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
            ("Connection", "close"),
        ] + (headers or [])
        writer.write(self._head(status, all_headers) + body)
        await writer.drain()

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        headers: list[tuple[str, str]] | None = None,
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        await self._respond(writer, status, body, headers=headers)


async def _serve_async(settings: ServiceSettings) -> None:
    """Run one service until SIGINT/SIGTERM, then shut down gracefully."""
    store = RunStore(settings.store_path)
    service = SimulationService(store, settings)
    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # non-main thread / windows
            pass
    print(
        f"repro service listening on {service.url} "
        f"(store={store.root}, workers={settings.workers}, "
        f"max_pending={settings.max_pending})",
        flush=True,
    )
    await stop.wait()
    print("repro service shutting down ...", flush=True)
    await service.stop()


def serve(settings: ServiceSettings) -> int:
    """Blocking entry point behind ``repro serve``."""
    try:
        asyncio.run(_serve_async(settings))
    except KeyboardInterrupt:
        pass
    return 0
