"""Job queue and worker pool of the simulation service.

A *job* is one client submission (a scenario spec or raw config grid)
reduced to its unique config hashes.  A *compute unit* is one config the
service has agreed to simulate.  The two are deliberately decoupled —
units are shared across jobs — because that is where the service's
"millions of users" economics come from:

* **store dedup** — a config whose hash is already in the
  :class:`~repro.store.RunStore` is served instantly, no unit created;
* **in-flight dedup** — a config some other job is *currently* computing
  is joined, not recomputed: the new job becomes another waiter on the
  existing unit, and one simulation feeds every subscriber;
* **bounded admission** — only genuinely new units consume queue
  capacity; a submission that needs more units than the queue has free
  raises :class:`QueueFull` *before* enqueueing anything (admission is
  atomic: a rejected job leaves no partial units behind).

Workers are asyncio tasks that drain the unit queue in small batches and
execute them through :func:`repro.sim.sweep.run_sweep` (serial backend,
store-persisting) on a thread pool — NumPy releases the GIL in the
kernels, so worker threads overlap compute.  The sweep's
:class:`~repro.sim._sweep.SweepProgress` callback fires as each config
lands and is hopped onto the event loop, where unit resolution updates
every waiting job and publishes its SSE events.  All manager state is
therefore mutated on the loop thread only; compute threads never touch
it directly.

Failure degrades per *unit*, not per job: compute runs with
``on_error="quarantine"`` (see :mod:`repro.resilience`), so a config
that exhausts its retry budget is booked as a failed slot
(``config_failed`` event, persisted ``errors/<hash>.json`` artifact)
and the job still terminates — as ``partial`` — once its remaining
configs land.
"""

from __future__ import annotations

import asyncio
import inspect
import secrets
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs import MetricsRegistry
from ..sim.config import SimulationConfig
from ..sim._sweep import run_sweep
from ..store.hashing import config_hash
from .hub import EventHub
from .schemas import SubmitSpec

__all__ = ["Job", "JobManager", "QueueFull", "ServiceClosing"]


class QueueFull(RuntimeError):
    """Admission refused: the pending-unit queue has no room for the job.

    ``retry_after_s`` is the backpressure hint surfaced to clients as a
    ``Retry-After`` header (HTTP 429).
    """

    def __init__(self, needed: int, capacity: int, retry_after_s: int):
        self.needed = needed
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        super().__init__(
            f"queue full: job needs {needed} new compute unit(s), "
            f"{capacity} slot(s) free; retry in ~{retry_after_s}s"
        )


class ServiceClosing(RuntimeError):
    """Admission refused: the service is shutting down (HTTP 503)."""


@dataclass
class Job:
    """One client submission and its live bookkeeping."""

    id: str
    label: str
    #: Unique config hashes in submission order (in-job duplicates collapse).
    hashes: tuple[str, ...]
    #: Configs as submitted, duplicates included.
    submitted: int
    created_at: float
    state: str = "queued"  # queued | running | completed | partial | failed
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: hash -> {"status": "pending"|"done"|"failed", "source": ...,
    #: "summary": ...} — failed slots additionally carry "error" and
    #: "attempts" from the quarantine artifact.
    slots: dict[str, dict[str, Any]] = field(default_factory=dict)
    done: int = 0
    n_cached: int = 0
    n_computed: int = 0
    #: Configs quarantined after exhausting their retry budget; the job
    #: still finishes ("partial"), degraded rather than failed outright.
    n_failed: int = 0

    @property
    def total(self) -> int:
        """Unique configs this job waits on."""
        return len(self.hashes)

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in ("completed", "partial", "failed")

    def view(self, full: bool = False) -> dict[str, Any]:
        """JSON-able representation (``full`` adds per-config results)."""
        out: dict[str, Any] = {
            "id": self.id,
            "label": self.label,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "cached": self.n_cached,
            "computed": self.n_computed,
            "failed": self.n_failed,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            out["error"] = self.error
        if full:
            out["results"] = [
                {"config_hash": h, **self.slots[h]} for h in self.hashes
            ]
        return out


class _Unit:
    """One in-flight config computation and the jobs waiting on it."""

    __slots__ = ("config", "hash", "waiters", "running")

    def __init__(self, config: SimulationConfig, hash_: str):
        self.config = config
        self.hash = hash_
        self.waiters: list[Job] = []
        self.running = False


#: ``runner(configs, progress, on_failure)`` — executes the given
#: configs (persisting into the store), fires ``progress(done, total,
#: index, result, cached, stats)`` per completed config and
#: ``on_failure(failure)`` (a :class:`repro.sim._sweep.SweepFailure`) per
#: config quarantined after exhausting its retry budget.  Injectable for
#: tests; legacy two-argument runners are adapted (their units can then
#: only succeed or fail the whole batch).
Runner = Callable[[list[SimulationConfig], Callable, Callable], None]


def _adapt_runner(runner: Callable) -> Callable:
    """Bridge legacy ``runner(configs, progress)`` callables."""
    try:
        params = inspect.signature(runner).parameters.values()
    except (TypeError, ValueError):  # builtins/C callables: assume new-style
        return runner
    if any(p.kind == p.VAR_POSITIONAL for p in params):
        return runner
    n_positional = sum(
        1
        for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    )
    if n_positional >= 3:
        return runner
    return lambda configs, progress, on_failure: runner(configs, progress)


class JobManager:
    """Owns jobs, compute units, the bounded queue and the worker pool."""

    def __init__(
        self,
        store: Any,
        hub: EventHub | None = None,
        metrics: MetricsRegistry | None = None,
        workers: int = 2,
        max_pending: int = 256,
        batch_width: int = 4,
        dispatch: str | None = None,
        runner: Runner | None = None,
        checkpoint_every: int = 0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if batch_width < 1:
            raise ValueError("batch_width must be >= 1")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.store = store
        self.hub = hub if hub is not None else EventHub()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.workers = int(workers)
        self.max_pending = int(max_pending)
        self.batch_width = int(batch_width)
        self.dispatch = dispatch
        self.checkpoint_every = int(checkpoint_every)
        self._runner = (
            _adapt_runner(runner) if runner is not None else self._default_runner
        )
        self.jobs: dict[str, Job] = {}
        self._units: dict[str, _Unit] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._pending = 0  # units enqueued but not yet claimed by a worker
        self._seq = 0
        self._tasks: list[asyncio.Task] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker tasks (call once, on the serving loop)."""
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="svc-compute"
        )
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"svc-worker-{i}")
            for i in range(self.workers)
        ]

    async def close(self, timeout_s: float = 30.0) -> None:
        """Graceful shutdown: refuse new work, let running compute land.

        Queued-but-unclaimed units are failed immediately ("service
        shutting down"); units already computing get ``timeout_s`` to
        finish and persist before their workers are cancelled outright.
        """
        self._closing = True
        # Fail everything still waiting in the queue.
        orphans: list[_Unit] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                orphans.append(item)
        self._pending = 0
        self._gauges()
        if orphans:
            self._fail_units(orphans, "service shutting down")
        for _ in self._tasks:
            self._queue.put_nowait(None)  # one stop sentinel per worker
        if self._tasks:
            _, pending = await asyncio.wait(self._tasks, timeout=timeout_s)
            for task in pending:
                task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self.hub.close_all()

    @property
    def closing(self) -> bool:
        """Whether shutdown has begun (admission is refused)."""
        return self._closing

    @property
    def queue_depth(self) -> int:
        """Units enqueued and not yet claimed by a worker."""
        return self._pending

    @property
    def inflight(self) -> int:
        """Units anywhere between admission and resolution."""
        return len(self._units)

    # ------------------------------------------------------------------
    # Submission (event-loop thread)
    # ------------------------------------------------------------------
    def submit(self, spec: SubmitSpec) -> Job:
        """Admit one submission; returns the (possibly already done) job.

        Raises :class:`QueueFull` when the genuinely new units would
        overflow ``max_pending`` (nothing is enqueued in that case) and
        :class:`ServiceClosing` during shutdown.
        """
        if self._closing:
            raise ServiceClosing("service is shutting down")
        # Peer processes (sweep workers, other service replicas on the
        # same store) may have landed results since the last look.
        self.store.refresh()
        unique: dict[str, SimulationConfig] = {}
        for cfg in spec.configs:
            unique.setdefault(config_hash(cfg), cfg)
        cached: list[str] = []
        attached: list[str] = []
        fresh: list[str] = []
        for h in unique:
            if self.store.contains_hash(h):
                cached.append(h)
            elif h in self._units:
                attached.append(h)
            else:
                fresh.append(h)
        free = self.max_pending - self._pending
        if len(fresh) > free:
            self.metrics.counter(
                "service_backpressure_total",
                "Submissions refused because the unit queue was full",
            ).inc()
            raise QueueFull(
                needed=len(fresh),
                capacity=max(0, free),
                retry_after_s=self._retry_after(),
            )
        self._seq += 1
        job = Job(
            id=f"job-{self._seq:05d}-{secrets.token_hex(3)}",
            label=spec.label,
            hashes=tuple(unique),
            submitted=len(spec.configs),
            created_at=time.time(),
        )
        self.jobs[job.id] = job
        for h in job.hashes:
            job.slots[h] = {"status": "pending", "source": None, "summary": None}
        self.metrics.counter(
            "service_jobs_submitted_total", "Jobs admitted by the service"
        ).inc()
        self.hub.publish(
            job.id,
            "queued",
            {
                "job_id": job.id,
                "label": job.label,
                "total": job.total,
                "cached": len(cached),
                "inflight": len(attached),
                "queued": len(fresh),
            },
        )
        for h in cached:
            self._serve_from_store(job, h)
        for h in attached:
            unit = self._units[h]
            unit.waiters.append(job)
            self._count_config("joined")
            if unit.running:
                self._mark_started(job)
        for h in fresh:
            unit = _Unit(unique[h], h)
            unit.waiters.append(job)
            self._units[h] = unit
            self._pending += 1
            self._queue.put_nowait(unit)
            self._count_config("queued")
        self._gauges()
        self._maybe_finish(job)
        return job

    def _retry_after(self) -> int:
        """Backpressure hint: rough seconds until queue slots free up."""
        return max(1, round(self._pending / max(1, self.workers)))

    def _serve_from_store(self, job: Job, h: str) -> None:
        """Fill one job slot straight from the store (no unit)."""
        rec = self.store.get_record(h)
        slot = job.slots[h]
        slot["status"] = "done"
        slot["source"] = "cache"
        slot["summary"] = dict(rec.summary) if rec is not None else None
        job.done += 1
        job.n_cached += 1
        self._count_config("cached")
        self._publish_progress(job, h, source="cache")

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        """Claim unit batches off the queue and execute them."""
        assert self._loop is not None and self._pool is not None
        while True:
            unit = await self._queue.get()
            if unit is None:  # stop sentinel from close()
                return
            batch = [unit]
            while len(batch) < self.batch_width:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:  # keep sentinels for sibling workers
                    self._queue.put_nowait(None)
                    break
                batch.append(extra)
            self._pending -= len(batch)
            self._gauges()
            for u in batch:
                u.running = True
                for job in u.waiters:
                    self._mark_started(job)
            try:
                await self._loop.run_in_executor(
                    self._pool, self._execute_batch, batch
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - reported per job
                self._fail_units(
                    [u for u in batch if u.hash in self._units], str(exc)
                )

    def _execute_batch(self, batch: list[_Unit]) -> None:
        """Run one claimed batch in a compute thread."""
        assert self._loop is not None
        loop = self._loop
        by_hash = {u.hash: u for u in batch}

        def progress(done, total, index, result, cached, stats) -> None:
            """Hop each landed config onto the loop for resolution."""
            unit = batch[index]
            summary = dict(result.summary)
            wall = float(result.wall_time_s)
            try:
                loop.call_soon_threadsafe(
                    self._resolve_unit, unit, summary, wall, cached, stats
                )
            except RuntimeError:  # loop already closed (hard shutdown)
                pass

        def on_failure(failure) -> None:
            """Hop each quarantined config onto the loop for degradation."""
            unit = by_hash.get(failure.config_hash)
            if unit is None:
                return
            try:
                loop.call_soon_threadsafe(
                    self._quarantine_unit,
                    unit,
                    failure.error,
                    int(failure.attempts),
                )
            except RuntimeError:  # loop already closed (hard shutdown)
                pass

        self._runner([u.config for u in batch], progress, on_failure)

    def _default_runner(
        self,
        configs: list[SimulationConfig],
        progress: Callable,
        on_failure: Callable,
    ) -> None:
        """Execute configs via :func:`run_sweep` (serial, store-backed).

        Runs with ``on_error="quarantine"``: one poisonous config costs
        its own slot (a quarantine artifact plus an ``on_failure``
        signal), never the whole batch or the jobs waiting on its
        siblings.
        """
        run_sweep(
            configs,
            backend="serial",
            store=self.store,
            progress=progress,
            dispatch=self.dispatch,
            on_error="quarantine",
            on_failure=on_failure,
            checkpoint_every=self.checkpoint_every,
        )

    # ------------------------------------------------------------------
    # Resolution (event-loop thread)
    # ------------------------------------------------------------------
    def _resolve_unit(
        self,
        unit: _Unit,
        summary: dict[str, float],
        wall_s: float,
        cached: bool,
        stats: Any,
    ) -> None:
        """Book one landed config into every waiting job."""
        if self._units.pop(unit.hash, None) is None:
            return  # already failed/resolved (shutdown race)
        source = "cache" if cached else "computed"
        self._count_config("served" if cached else "computed")
        if not cached:
            self.metrics.histogram(
                "service_config_seconds", "Wall time of computed configs"
            ).observe(wall_s)
        for job in unit.waiters:
            if job.finished:
                continue
            slot = job.slots[unit.hash]
            slot["status"] = "done"
            slot["source"] = source
            slot["summary"] = summary
            job.done += 1
            if cached:
                job.n_cached += 1
            else:
                job.n_computed += 1
            self._publish_progress(job, unit.hash, source=source, stats=stats)
            self._maybe_finish(job)
        self._gauges()

    def _quarantine_unit(self, unit: _Unit, error: str, attempts: int) -> None:
        """Book one quarantined config: waiting jobs degrade, not fail.

        The slot is marked ``failed`` (with the artifact's error text
        and attempt count), a ``config_failed`` event goes out on every
        waiting job's stream, and the job still reaches a terminal state
        — ``partial`` — once its remaining configs land.
        """
        if self._units.pop(unit.hash, None) is None:
            return  # already failed/resolved (shutdown race)
        self._count_config("failed")
        self.metrics.counter(
            "service_quarantined_total",
            "Compute units quarantined after exhausting retries",
        ).inc()
        for job in unit.waiters:
            if job.finished:
                continue
            slot = job.slots[unit.hash]
            slot["status"] = "failed"
            slot["source"] = "quarantine"
            slot["summary"] = None
            slot["error"] = error
            slot["attempts"] = attempts
            job.done += 1
            job.n_failed += 1
            self.hub.publish(
                job.id,
                "config_failed",
                {
                    "job_id": job.id,
                    "done": job.done,
                    "total": job.total,
                    "config_hash": unit.hash,
                    "error": error,
                    "attempts": attempts,
                },
            )
            self._maybe_finish(job)
        self._gauges()

    def _fail_units(self, units: Sequence[_Unit], error: str) -> None:
        """Fail every job waiting on the given (unresolved) units."""
        failed_jobs: dict[str, Job] = {}
        for unit in units:
            if self._units.pop(unit.hash, None) is None:
                continue
            for job in unit.waiters:
                if not job.finished:
                    failed_jobs[job.id] = job
        for job in failed_jobs.values():
            job.state = "failed"
            job.error = error
            job.finished_at = time.time()
            self.metrics.counter(
                "service_jobs_total", "Finished jobs by outcome", outcome="failed"
            ).inc()
            self.hub.publish(
                job.id, "failed", {"job_id": job.id, "error": error}
            )
        self._gauges()

    def _mark_started(self, job: Job) -> None:
        """First compute for this job began: record and announce it."""
        if job.started_at is not None or job.finished:
            return
        job.started_at = time.time()
        job.state = "running"
        self.hub.publish(
            job.id, "started", {"job_id": job.id, "total": job.total}
        )

    def _maybe_finish(self, job: Job) -> None:
        """Complete the job once every unique config has settled.

        A job with quarantined slots finishes as ``partial`` — clients
        get every healthy result plus an enumeration of the gaps,
        instead of an all-or-nothing failure.
        """
        if job.finished or job.done < job.total:
            return
        job.state = "partial" if job.n_failed else "completed"
        job.finished_at = time.time()
        self.metrics.counter(
            "service_jobs_total", "Finished jobs by outcome", outcome=job.state
        ).inc()
        self.metrics.histogram(
            "service_job_seconds", "Submission-to-completion wall time"
        ).observe(job.finished_at - job.created_at)
        self.hub.publish(
            job.id,
            "completed",
            {
                "job_id": job.id,
                "state": job.state,
                "total": job.total,
                "cached": job.n_cached,
                "computed": job.n_computed,
                "failed": job.n_failed,
                "wall_s": job.finished_at - job.created_at,
                "results": [
                    {
                        "config_hash": h,
                        "status": job.slots[h]["status"],
                        "source": job.slots[h]["source"],
                        "summary": job.slots[h]["summary"],
                    }
                    for h in job.hashes
                ],
            },
        )

    def _publish_progress(
        self, job: Job, h: str, source: str, stats: Any = None
    ) -> None:
        """Emit one per-config progress event on the job's stream."""
        if job.finished:
            return
        data = {
            "job_id": job.id,
            "done": job.done,
            "total": job.total,
            "config_hash": h,
            "source": source,
        }
        if stats is not None:  # the run_sweep SweepProgress tail
            data["sweep"] = {
                "elapsed_s": stats.elapsed_s,
                "eta_s": stats.eta_s,
                "cached": stats.cached,
                "computed": stats.computed,
            }
        self.hub.publish(job.id, "progress", data)

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def _count_config(self, source: str) -> None:
        self.metrics.counter(
            "service_configs_total",
            "Config slots by how they were satisfied",
            source=source,
        ).inc()

    def _gauges(self) -> None:
        self.metrics.gauge(
            "service_queue_depth", "Compute units queued, not yet claimed"
        ).set(self._pending)
        self.metrics.gauge(
            "service_inflight_units", "Compute units between admission and landing"
        ).set(len(self._units))
        self.metrics.gauge(
            "service_jobs_active", "Jobs not yet in a terminal state"
        ).set(sum(1 for j in self.jobs.values() if not j.finished))
