"""Store-coordinated cooperative sweep dispatch: lease-based grid draining.

N independent sweep invocations — separate terminals, cron jobs, or
machines sharing a filesystem — cooperatively drain one grid with zero
duplicate computation, using the :class:`~repro.store.RunStore` as the
only coordination substrate.  No daemon, no sockets: the protocol is
plain atomic filesystem operations under the store root.

The pieces:

* **task keys** — a grid is partitioned once, deterministically, into
  lane-batched task units (:func:`plan_dispatch_tasks`, built on
  :func:`repro.sim._sweep.plan_lane_batches`); a task's key is the sha256
  of its member config hashes, so every invocation that plans the same
  grid derives the same keys.
* **grid manifests** — :meth:`RunStore.put_grid` publishes the grid
  (canonical config dicts + the lane width it was planned with) under
  ``grids/<key>.json``, so a bare ``repro sweep-worker <store>``
  invocation can reconstruct the identical task partition and join the
  drain without being handed the grid out of band.
* **leases** — ``claims/<task-key>.lease`` files created with
  ``O_CREAT | O_EXCL`` (:meth:`LeaseBoard.claim`): exactly one claimant
  wins the create, carries its owner id and a heartbeat timestamp, and
  renews the heartbeat from a background thread while the task computes
  (:meth:`LeaseBoard.renew` verifies ownership before every rewrite).
  Finished tasks release their lease (:meth:`LeaseBoard.release`).
* **stale-lease reclamation** — a worker that stops heartbeating
  (crashed, SIGKILLed, unplugged) is declared dead once its lease's
  heartbeat is older than the configurable expiry; a survivor reclaims
  the lease by atomically renaming it away (only one renamer can win)
  and recomputes the task (:meth:`LeaseBoard.reclaim`).  Robustness is
  built into the protocol: every claimed-but-unfinished task is
  eventually recomputed by survivors.

Correctness does not depend on lease exclusivity — results are
deterministic per config and ``RunStore.put`` is idempotent — leases
only prevent *duplicate work*.  The one duplicate-compute window is a
live-but-stalled worker whose lease expires (it keeps computing while a
survivor recomputes); choose ``expiry_s`` well above the heartbeat
interval plus worst-case scheduling delay and cross-machine clock skew.

Telemetry (when the ambient :class:`repro.obs.Tracer` is enabled):
``sweep_leases_total{event=claimed|renewed|released|expired|reclaimed}``
counters, a ``sweep_throughput_configs_per_sec`` gauge, and
``dispatch/task`` / ``dispatch/wait`` / ``dispatch/drain`` spans — all
of which surface in ``repro stats`` once persisted as telemetry
artifacts (``repro sweep-worker --trace``).
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from ..obs import Stopwatch, get_tracer
from ..resilience.faults import fault_point
from ..resilience.retry import DEFAULT_STORE_RETRY, RetryPolicy
from ..sim.config import SimulationConfig
from .hashing import config_hash

__all__ = [
    "DEFAULT_LEASE_EXPIRY_S",
    "DEFAULT_POLL_INTERVAL_S",
    "DEFAULT_DISPATCH_LANE_WIDTH",
    "task_key",
    "default_owner_id",
    "Lease",
    "LeaseLost",
    "LeaseBoard",
    "DispatchTask",
    "DispatchStats",
    "StoreDispatcher",
    "plan_dispatch_tasks",
    "publish_sweep_grid",
    "last_dispatch_stats",
]

#: Seconds without a heartbeat after which a lease is considered stale
#: and may be reclaimed by any surviving worker.  Must comfortably exceed
#: the heartbeat interval (``expiry_s / 4`` by default) plus scheduling
#: delay and cross-machine clock skew; see docs/ARCHITECTURE.md.
DEFAULT_LEASE_EXPIRY_S = 30.0

#: Seconds a dispatcher sleeps between passes when every open task is
#: leased by someone else (it is waiting for their results to land).
DEFAULT_POLL_INTERVAL_S = 0.25

#: Lanes per dispatch task when the caller gives no explicit width.  A
#: fixed constant — never derived from the local machine — because every
#: cooperating invocation must partition the grid identically for the
#: task keys to line up.  Small enough that modest grids still split
#: into several claimable units.
DEFAULT_DISPATCH_LANE_WIDTH = 8

_CLAIMS_DIR = "claims"


def task_key(config_hashes: Iterable[str]) -> str:
    """Deterministic key of one dispatch task: sha256 over its hashes.

    Sorted before hashing so the key depends on the task's config *set*,
    not on lane order inside the batch.
    """
    digest = hashlib.sha256()
    for h in sorted(config_hashes):
        digest.update(h.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def default_owner_id() -> str:
    """A lease owner id unique across hosts, processes and restarts."""
    return f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(4)}"


class LeaseLost(RuntimeError):
    """A renew found the lease gone or owned by someone else.

    Raised when this worker was presumed dead and its task reclaimed;
    the correct response is to finish (results are idempotent) but stop
    renewing and never release the successor's lease.
    """


@dataclass(frozen=True)
class Lease:
    """One claim file's contents: who owns a task and since when."""

    key: str
    owner: str
    created_at: float
    heartbeat_at: float
    expiry_s: float
    config_hashes: tuple[str, ...] = ()

    def age_s(self, now: float | None = None) -> float:
        """Seconds since the last heartbeat."""
        return (time.time() if now is None else now) - self.heartbeat_at

    def is_stale(self, now: float | None = None) -> bool:
        """Whether the owner has missed enough heartbeats to be dead."""
        return self.age_s(now) > self.expiry_s

    def as_dict(self) -> dict[str, Any]:
        """JSON-able lease-file payload."""
        return {
            "key": self.key,
            "owner": self.owner,
            "created_at": self.created_at,
            "heartbeat_at": self.heartbeat_at,
            "expiry_s": self.expiry_s,
            "config_hashes": list(self.config_hashes),
        }


class LeaseBoard:
    """Atomic lease files under ``<store root>/claims/``.

    Pure-filesystem mutual exclusion: ``claim`` is an ``O_EXCL`` create
    (exactly one winner per key), ``renew`` verifies ownership and
    atomically replaces the payload, ``release`` verifies ownership and
    unlinks, ``reclaim`` renames a stale lease to a unique graveyard
    name — ``os.rename`` has one winner, so two survivors cannot both
    reclaim the same corpse.  Readers tolerate torn or corrupt lease
    files by falling back to the file's mtime as the heartbeat.
    """

    def __init__(
        self,
        root: str | Path,
        owner: str | None = None,
        expiry_s: float = DEFAULT_LEASE_EXPIRY_S,
        retry: RetryPolicy | None = DEFAULT_STORE_RETRY,
    ):
        if expiry_s <= 0:
            raise ValueError("expiry_s must be positive")
        self.claims_dir = Path(root) / _CLAIMS_DIR
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self.owner = owner or default_owner_id()
        self.expiry_s = float(expiry_s)
        #: Bounded retry around the claim/renew filesystem writes.  A
        #: lost claim race (``FileExistsError``) is never retried — it is
        #: an answer, not a failure.
        self.retry = retry

    def _io(self, fn: Callable[[], Any], site: str) -> Any:
        return self.retry.call(fn, site=site) if self.retry is not None else fn()

    def _path(self, key: str) -> Path:
        return self.claims_dir / f"{key}.lease"

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def claim(
        self, key: str, config_hashes: Sequence[str] = ()
    ) -> Lease | None:
        """Try to claim ``key``; ``None`` when someone else holds it.

        The ``O_EXCL`` create is the whole mutual exclusion: losing the
        race surfaces as ``FileExistsError``, never as a torn file.
        Failure point ``lease/claim`` fires per attempt inside the retry
        wrapper, so a single-occurrence injected ``OSError`` is ridden
        out transparently.
        """
        now = time.time()
        lease = Lease(
            key=key,
            owner=self.owner,
            created_at=now,
            heartbeat_at=now,
            expiry_s=self.expiry_s,
            config_hashes=tuple(config_hashes),
        )

        def attempt() -> Lease | None:
            fault_point("lease/claim", key=key)
            try:
                fd = os.open(
                    self._path(key), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                return None  # lost the race: an answer, not an error
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(lease.as_dict()))
            return lease

        return self._io(attempt, "lease/claim")

    def read(self, key: str) -> Lease | None:
        """The current lease on ``key``, or ``None`` when unclaimed.

        A lease file that cannot be parsed (torn write, corruption) is
        still a lease — an unknown owner whose heartbeat is the file's
        mtime, so staleness math keeps working on garbage.
        """
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
            data = json.loads(raw)
            return Lease(
                key=key,
                owner=str(data["owner"]),
                created_at=float(data["created_at"]),
                heartbeat_at=float(data["heartbeat_at"]),
                expiry_s=float(data["expiry_s"]),
                config_hashes=tuple(data.get("config_hashes") or ()),
            )
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                return None  # vanished between read and stat: unclaimed
            return Lease(
                key=key,
                owner="<unreadable>",
                created_at=mtime,
                heartbeat_at=mtime,
                expiry_s=self.expiry_s,
            )

    def renew(self, lease: Lease) -> Lease:
        """Refresh the heartbeat; raises :class:`LeaseLost` if usurped.

        Verifies on disk that this board still owns the lease before the
        atomic replace — a reclaimed worker must not clobber its
        successor's claim.  (The verify/replace pair is not atomic; the
        race window is microseconds against an expiry measured in
        seconds, and a clobbered successor merely recomputes — results
        stay correct because the store is idempotent.)

        Failure point ``lease/renew`` supports the ``lease-loss`` action
        — an injected :class:`LeaseLost`, as if a survivor had reclaimed
        this worker mid-compute — in addition to the usual
        error/crash/delay.
        """
        spec = fault_point("lease/renew", key=lease.key)
        if spec is not None and spec.action == "lease-loss":
            raise LeaseLost(
                f"injected lease loss on {lease.key[:12]} (fault plan)"
            )
        current = self.read(lease.key)
        if current is None or current.owner != self.owner:
            raise LeaseLost(
                f"lease {lease.key[:12]} now belongs to "
                f"{current.owner if current else 'nobody'}"
            )
        renewed = replace(lease, heartbeat_at=time.time())
        path = self._path(lease.key)
        tmp = self.claims_dir / f".{lease.key}.{os.getpid()}.tmp"

        def write() -> None:
            tmp.write_text(json.dumps(renewed.as_dict()), encoding="utf-8")
            os.replace(tmp, path)

        self._io(write, "lease/renew")
        return renewed

    def release(self, lease: Lease) -> bool:
        """Drop a finished task's lease; ``False`` if it was not ours."""
        fault_point("lease/release", key=lease.key)
        current = self.read(lease.key)
        if current is None or current.owner != self.owner:
            return False
        try:
            self._path(lease.key).unlink()
        except FileNotFoundError:
            return False
        return True

    def reclaim(self, key: str) -> bool:
        """Atomically remove a (presumed stale) lease; ``True`` if we won.

        The rename to a unique graveyard name is the arbitration: of N
        survivors racing to reclaim one corpse, exactly one rename
        succeeds and the losers see ``FileNotFoundError``.  The winner
        does not inherit the lease — it (or anyone else) claims the now
        free key through the normal ``claim`` path.
        """
        grave = self.claims_dir / f".reap-{key}-{secrets.token_hex(4)}"
        try:
            os.rename(self._path(key), grave)
        except FileNotFoundError:
            return False
        grave.unlink(missing_ok=True)
        return True

    def active(self) -> list[Lease]:
        """Every currently claimed lease (sorted by key)."""
        out = []
        for path in sorted(self.claims_dir.glob("*.lease")):
            lease = self.read(path.stem)
            if lease is not None:
                out.append(lease)
        return out


@dataclass(frozen=True)
class DispatchTask:
    """One claimable unit of a grid: a lane-compatible config batch."""

    key: str
    configs: tuple[SimulationConfig, ...]
    config_hashes: tuple[str, ...]


@dataclass
class DispatchStats:
    """Counters of one cooperative drain (mirrored into the tracer)."""

    owner: str = ""
    claimed: int = 0
    renewed: int = 0
    released: int = 0
    expired: int = 0
    reclaimed: int = 0
    lease_lost: int = 0
    #: Configs this invocation simulated itself.
    computed: int = 0
    #: Configs that landed in the store via some other invocation (or
    #: were already there) while this drain watched.
    served: int = 0
    #: Claimed tasks this invocation resumed from a mid-run snapshot
    #: (typically a reclaimed task's checkpoint) instead of step 0.
    resumed: int = 0
    #: Configs settled by a quarantine artifact — failed permanently,
    #: whether quarantined by this invocation or observed from a peer.
    quarantined: int = 0
    #: Transient heartbeat-renew failures the beat thread rode out.
    heartbeat_failures: int = 0
    wall_s: float = 0.0
    computed_hashes: list[str] = field(default_factory=list)

    @property
    def configs_per_sec(self) -> float:
        """Locally computed configs per wall second of the drain."""
        return self.computed / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-able dump (``repro sweep-worker --summary-json``)."""
        return {
            "owner": self.owner,
            "claimed": self.claimed,
            "renewed": self.renewed,
            "released": self.released,
            "expired": self.expired,
            "reclaimed": self.reclaimed,
            "lease_lost": self.lease_lost,
            "computed": self.computed,
            "served": self.served,
            "resumed": self.resumed,
            "quarantined": self.quarantined,
            "heartbeat_failures": self.heartbeat_failures,
            "wall_s": self.wall_s,
            "configs_per_sec": self.configs_per_sec,
            "computed_hashes": list(self.computed_hashes),
        }


#: Snapshot of the most recent drain in this process (ambient, like the
#: default store): lets the CLI report lease counters without threading
#: a stats object through ``run_sweep``'s signature.
_LAST_STATS: DispatchStats | None = None


def last_dispatch_stats() -> DispatchStats | None:
    """Stats of this process's most recent cooperative drain, if any."""
    return _LAST_STATS


def plan_dispatch_tasks(
    grid: Sequence[SimulationConfig],
    lane_width: int = DEFAULT_DISPATCH_LANE_WIDTH,
) -> list[DispatchTask]:
    """Partition a grid into the deterministic dispatch task units.

    Delegates grouping to :func:`repro.sim._sweep.plan_lane_batches`
    (memory-budgeted, structure-compatible batches) and then chunks
    every batch to at most ``lane_width`` lanes so grids split into
    multiple claimable units.  Both steps depend only on the grid
    itself — never on local core counts or worker numbers — so every
    cooperating invocation derives the same partition and therefore the
    same task keys.  Event-collecting configs are rejected: their
    results cannot be shared through the store.
    """
    if lane_width < 1:
        raise ValueError("lane_width must be >= 1")
    for cfg in grid:
        if cfg.collect_events:
            raise ValueError(
                "event-collecting configs cannot be dispatched through the "
                "store (event logs are not persisted); run them locally"
            )
    # Imported lazily: repro.sim._sweep imports this package's siblings at
    # call time, keeping `import repro.store` free of the sim engine.
    from ..sim._sweep import plan_lane_batches

    batches = plan_lane_batches([(cfg, [i]) for i, cfg in enumerate(grid)])
    tasks: list[DispatchTask] = []
    for batch in batches:
        configs = [cfg for cfg, _ in batch]
        for start in range(0, len(configs), lane_width):
            chunk = configs[start : start + lane_width]
            hashes = tuple(config_hash(c) for c in chunk)
            tasks.append(
                DispatchTask(
                    key=task_key(hashes),
                    configs=tuple(chunk),
                    config_hashes=hashes,
                )
            )
    return tasks


def publish_sweep_grid(
    store: Any,
    configs: Sequence[SimulationConfig],
    lane_width: int | None = None,
) -> tuple[str, list[SimulationConfig]]:
    """Publish a grid manifest; returns ``(grid key, deduped grid)``.

    The manifest is the single planning input every cooperating
    invocation shares: the deduplicated, event-free config list in first
    appearance order plus the lane width, which together determine the
    task partition.  The CLI's ``repro sweep --dispatch=store`` publishes
    automatically; ``--publish-only`` publishes without draining so a
    fleet of ``repro sweep-worker`` processes can do all the computing.
    """
    width = lane_width if lane_width is not None else DEFAULT_DISPATCH_LANE_WIDTH
    seen: set[SimulationConfig] = set()
    grid: list[SimulationConfig] = []
    for cfg in configs:
        if cfg.collect_events or cfg in seen:
            continue
        seen.add(cfg)
        grid.append(cfg)
    key = store.put_grid(grid, lane_width=width)
    return key, grid


class StoreDispatcher:
    """Drives one invocation's share of a cooperative grid drain.

    The drain loop over the task units: serve every config another
    worker has already landed in the store, claim an unclaimed task and
    execute its missing lanes (heartbeating from a background thread),
    reclaim tasks whose owner stopped heartbeating, and poll while
    everything open is leased elsewhere.  Returns when every task's
    configs are in the store.
    """

    def __init__(
        self,
        store: Any,
        owner: str | None = None,
        expiry_s: float = DEFAULT_LEASE_EXPIRY_S,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        heartbeat_interval_s: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.store = store
        self.board = LeaseBoard(store.root, owner=owner, expiry_s=expiry_s)
        self.poll_interval_s = float(poll_interval_s)
        #: Renew cadence: a quarter of the expiry, so a worker survives
        #: three consecutive missed beats before being declared dead.
        self.heartbeat_interval_s = (
            float(heartbeat_interval_s)
            if heartbeat_interval_s is not None
            else max(0.05, expiry_s / 4.0)
        )
        self._sleep = sleep
        #: Stats object of the drain in progress (or the last one) —
        #: the channel through which the task runner reports events the
        #: dispatcher cannot see itself (snapshot resumes).
        self._current_stats: DispatchStats | None = None

    def note_resumed(self) -> None:
        """Record that the running task resumed from a mid-run snapshot
        (called by the task runner, which is the only party that knows)."""
        if self._current_stats is not None:
            self._current_stats.resumed += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter(
                "resilience_snapshots_total",
                "Resume-snapshot lifecycle events",
                event="dispatch_resumed",
            ).inc()

    # ------------------------------------------------------------------
    def drain(
        self,
        tasks: Sequence[DispatchTask],
        run_task: Callable[[list[SimulationConfig], DispatchTask], list[Any]],
        on_computed: Callable[[SimulationConfig, str, Any], None],
        on_served: Callable[[SimulationConfig, str], None],
        on_failed: Callable[[SimulationConfig, str], None] | None = None,
        quarantine: bool = False,
    ) -> DispatchStats:
        """Cooperatively drain ``tasks``; blocks until all are complete.

        ``run_task(configs, task)`` executes the given (missing) lanes
        and returns their results in order; ``on_computed(cfg, hash,
        result)`` **must persist the result into the store** — task
        completion is judged by store contents, which is also what lets
        every other worker observe the progress.  ``on_served(cfg,
        hash)`` fires once per config that appeared in the store without
        local computation (pre-cached or computed by a peer).

        ``quarantine=True`` makes the drain quarantine-aware: a config
        with a persisted quarantine artifact (``RunStore.has_error``)
        counts as *settled* — workers stop waiting for a result that
        will never land.  ``run_task`` may return ``None`` in a result
        slot to signal it quarantined that config (after persisting the
        artifact); ``on_failed(cfg, hash)`` fires once per config
        settled by failure, local or observed from a peer.  With the
        default ``quarantine=False`` stale artifacts are ignored and the
        drain keeps its complete-results-or-raise contract.

        Raises whatever ``run_task`` raises, after releasing the lease
        so survivors retry the task without waiting out the expiry.
        """
        global _LAST_STATS
        tracer = get_tracer()
        stats = DispatchStats(owner=self.board.owner)
        self._current_stats = stats
        watch = Stopwatch()
        open_tasks: dict[str, DispatchTask] = {t.key: t for t in tasks if t.configs}
        #: hash -> config awaiting an on_served/on_failed signal.
        unserved: dict[str, SimulationConfig] = {
            h: c
            for t in open_tasks.values()
            for c, h in zip(t.configs, t.config_hashes)
        }

        def count(event: str) -> None:
            """Bump one lease counter, mirrored into the tracer."""
            setattr(stats, event, getattr(stats, event) + 1)
            if tracer.enabled:
                tracer.metrics.counter(
                    "sweep_leases_total", "Lease protocol events", event=event
                ).inc()

        def settled(h: str) -> bool:
            """A config needs no more work: result landed, or quarantined."""
            if self.store.contains_hash(h):
                return True
            return quarantine and self.store.has_error(h)

        def mark_failed(cfg: SimulationConfig, h: str) -> None:
            stats.quarantined += 1
            if tracer.enabled:
                tracer.metrics.counter(
                    "resilience_quarantined_total",
                    "Configs settled by a quarantine artifact",
                ).inc()
            if on_failed is not None:
                on_failed(cfg, h)

        def serve_landed() -> None:
            """Serve configs peers have landed since the last look (and
            anything cached before the drain began); surface configs a
            peer quarantined."""
            for h in [h for h in unserved if self.store.contains_hash(h)]:
                on_served(unserved.pop(h), h)
                stats.served += 1
            if quarantine:
                for h in [h for h in unserved if self.store.has_error(h)]:
                    mark_failed(unserved.pop(h), h)

        while open_tasks:
            self.store.refresh()
            serve_landed()
            progressed = False
            for key in list(open_tasks):
                task = open_tasks[key]
                missing = [
                    (c, h)
                    for c, h in zip(task.configs, task.config_hashes)
                    if not settled(h)
                ]
                if not missing:
                    del open_tasks[key]
                    progressed = True
                    # Tidy a corpse left between a peer's final put and
                    # its release (crash window): the task is done, the
                    # lease is noise.
                    leftover = self.board.read(key)
                    if leftover is not None and leftover.is_stale():
                        self.board.reclaim(key)
                    continue
                lease = self.board.claim(key, task.config_hashes)
                if lease is None:
                    holder = self.board.read(key)
                    if holder is not None and holder.is_stale():
                        count("expired")
                        if self.board.reclaim(key):
                            count("reclaimed")
                            lease = self.board.claim(key, task.config_hashes)
                if lease is None:
                    continue
                count("claimed")
                # The pass's store view can be seconds stale by the time
                # this claim lands (earlier tasks in the pass computed in
                # between), and a peer may have claimed, completed and
                # released this very task in that window.  Results are
                # always persisted *before* release, so one refresh
                # settles it: recompute the missing set before working.
                self.store.refresh()
                serve_landed()
                missing = [
                    (c, h)
                    for c, h in zip(task.configs, task.config_hashes)
                    if not settled(h)
                ]
                if not missing:
                    if self.board.release(lease):
                        count("released")
                    del open_tasks[key]
                    progressed = True
                    continue
                task_watch = Stopwatch()
                try:
                    results = self._execute_leased(
                        lease,
                        lambda: run_task([c for c, _ in missing], task),
                        stats,
                        count,
                    )
                except BaseException:
                    # Release immediately so survivors retry without
                    # waiting out the expiry; they will hit the same
                    # deterministic failure and fail fast too.
                    if self.board.release(lease):
                        count("released")
                    raise
                for (cfg, h), result in zip(missing, results):
                    if quarantine and result is None:
                        # run_task quarantined this config (artifact
                        # already persisted): settled by failure.
                        unserved.pop(h, None)
                        mark_failed(cfg, h)
                        continue
                    on_computed(cfg, h, result)
                    unserved.pop(h, None)
                    stats.computed += 1
                    stats.computed_hashes.append(h)
                if self.board.release(lease):
                    count("released")
                if tracer.enabled:
                    tracer.record(
                        "dispatch/task",
                        task_watch.elapsed(),
                        attrs={"lanes": len(missing)},
                    )
                del open_tasks[key]
                progressed = True
            if open_tasks and not progressed:
                if tracer.enabled:
                    tracer.record("dispatch/wait", self.poll_interval_s)
                self._sleep(self.poll_interval_s)
        stats.wall_s = watch.elapsed()
        if tracer.enabled:
            tracer.record("dispatch/drain", stats.wall_s)
            tracer.metrics.gauge(
                "sweep_throughput_configs_per_sec",
                "Locally computed configs per second of the last drain",
            ).set(stats.configs_per_sec)
        _LAST_STATS = stats
        return stats

    # ------------------------------------------------------------------
    def _execute_leased(
        self,
        lease: Lease,
        fn: Callable[[], list[Any]],
        stats: DispatchStats,
        count: Callable[[str], None],
    ) -> list[Any]:
        """Run ``fn`` while a daemon thread renews the lease.

        NumPy releases the GIL inside the big kernels, so the heartbeat
        thread keeps beating during compute.  If a renew discovers the
        lease was reclaimed (this worker was presumed dead), beating
        stops and the loss is counted — the computation still finishes
        and persists, which is harmless because results are
        deterministic and the store idempotent.
        """
        stop = threading.Event()

        def beat() -> None:
            held = lease
            while not stop.wait(self.heartbeat_interval_s):
                try:
                    held = self.board.renew(held)
                    count("renewed")
                except LeaseLost:
                    stats.lease_lost += 1
                    return
                except OSError:
                    # Transient renew-write failure (real or injected):
                    # keep beating — the lease survives missed beats up
                    # to the expiry, and the next renew usually lands.
                    stats.heartbeat_failures += 1

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        try:
            return fn()
        finally:
            stop.set()
            thread.join(timeout=self.heartbeat_interval_s + 5.0)
