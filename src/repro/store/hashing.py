"""Canonical config hashing: a :class:`SimulationConfig` is its own cache key.

The store never trusts object identity — two configs built in different
processes (or different releases) must map to the same key iff they
describe the same run.  The recipe:

1. recursively convert the config (and its nested frozen dataclasses:
   :class:`PopulationMix`, :class:`PaperConstants` and friends) into plain
   dicts of JSON scalars;
2. replace the non-JSON floats (``inf``/``-inf``/``nan``) with sentinel
   strings so the serialization stays strict JSON;
3. dump with sorted keys and fixed separators — byte-stable across Python
   versions because ``repr``-based float formatting round-trips;
4. sha256 the bytes together with a schema version, so a future change to
   the serialization rules invalidates old keys instead of aliasing them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any

from ..sim.config import SimulationConfig

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "canonical_config_dict",
    "canonical_json",
    "config_from_dict",
    "config_hash",
    "revive_floats",
    "short_hash",
]

#: Bump when the canonicalization rules (or config semantics) change in a
#: way that must invalidate previously stored keys.  v2: the ``scale``
#: section joined :class:`~repro.sim.config.SimulationConfig` — every
#: config now canonicalizes with its scale leaves, so pre-scale keys must
#: not alias the (behaviourally identical) defaults.
CONFIG_SCHEMA_VERSION = 2

_INF = "__inf__"
_NEG_INF = "__-inf__"
_NAN = "__nan__"


def _canonical(value: Any) -> Any:
    """Recursively reduce ``value`` to JSON-safe plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return _NAN
        if math.isinf(value):
            return _INF if value > 0 else _NEG_INF
        if value.is_integer():
            # Python compares 0 == 0.0, so dataclass-equal configs can mix
            # int and float in the same field (e.g. a CLI-parsed 0 vs a
            # builder's 0.0).  Serialize integral floats as ints so equal
            # configs always share one key.
            return int(value)
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def canonical_config_dict(config: SimulationConfig) -> dict:
    """The config as a nested dict of JSON scalars (floats sentinel-encoded).

    The ``engine`` section (kernel backend and friends) is *excluded*:
    backends are bit-identical by contract, so runs differing only in
    how they execute must share one cache key.  Round-trips through
    :func:`config_from_dict` revive the default engine section, which
    re-canonicalizes to the same bytes.
    """
    data = _canonical(config)
    data.pop("engine", None)
    return data


def revive_floats(obj: Any) -> Any:
    """Inverse of the float sentinel encoding (for display / round-trips)."""
    if isinstance(obj, dict):
        return {k: revive_floats(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [revive_floats(v) for v in obj]
    if obj == _INF:
        return float("inf")
    if obj == _NEG_INF:
        return float("-inf")
    if obj == _NAN:
        return float("nan")
    return obj


def _revive_dataclass(cls: type, data: dict) -> Any:
    """Rebuild a (possibly nested) config dataclass from plain dicts."""
    import typing

    hints = typing.get_type_hints(cls)
    kwargs: dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue  # field added since the dict was written: keep default
        value = data[f.name]
        hint = hints.get(f.name)
        if dataclasses.is_dataclass(hint) and isinstance(value, dict):
            value = _revive_dataclass(hint, value)
        kwargs[f.name] = value
    return cls(**kwargs)


def config_from_dict(data: dict) -> SimulationConfig:
    """Inverse of :func:`canonical_config_dict`: revive a real config.

    Round-trip stable under the hash: a revived config canonicalizes to
    the same bytes (integral floats come back as ints, which the
    canonicalizer re-normalizes identically), so grid manifests and
    payload config dicts rebuild configs that hash to their stored keys.
    Unknown keys are rejected (they would silently change the run), and
    missing keys fall back to field defaults.
    """
    if not isinstance(data, dict):
        raise TypeError(f"config dict expected, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(SimulationConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown config fields: {', '.join(sorted(unknown))}")
    return _revive_dataclass(SimulationConfig, revive_floats(data))


def canonical_json(obj: Any) -> str:
    """Deterministic strict-JSON serialization (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def config_hash(config: SimulationConfig) -> str:
    """sha256 hex digest of the config's canonical serialization."""
    envelope = {
        "schema_version": CONFIG_SCHEMA_VERSION,
        "config": canonical_config_dict(config),
    }
    return hashlib.sha256(canonical_json(envelope).encode("utf-8")).hexdigest()


def short_hash(config_or_hash: SimulationConfig | str, n: int = 12) -> str:
    """Abbreviated key for human-facing output (CLI tables, error messages)."""
    if isinstance(config_or_hash, str):
        return config_or_hash[:n]
    return config_hash(config_or_hash)[:n]
