"""On-disk, content-addressed store of finished simulation runs.

Layout under the store root::

    index.jsonl             one slim record per stored run (append-only)
    runs/<hash>.json        full payload: record + canonical config dict
    telemetry/<hash>.json   optional per-run telemetry artifact (traced
                            runs only; see :mod:`repro.obs.artifact`)
    grids/<key>.json        published sweep-grid manifests (distributed
                            dispatch; see :mod:`repro.store.dispatch`)
    claims/<key>.lease      live task leases of cooperating sweep
                            workers (managed by the dispatch layer)
    checkpoints/<key>.ckpt  mid-run resume snapshots of in-flight tasks
                            (ephemeral; see :mod:`repro.resilience`)
    errors/<hash>.json      quarantine artifacts of configs that kept
                            failing (traceback + fault context; see
                            docs/RESILIENCE.md)

The index is the fast path — it is loaded once at open and answers
``contains``/``get`` without touching payload files.  Payloads carry the
canonical config dict so ``repro ls`` / ``repro report`` can render runs
without re-hydrating a :class:`SimulationConfig`.

Durability model (pure stdlib, no locking daemon):

* ``put`` writes the payload to a temp file and ``os.replace``s it into
  place, then appends one index line — a crash between the two leaves an
  *orphan* payload which the next open adopts back into the index;
* loading tolerates corruption: malformed JSON lines, records with a
  foreign schema version and index entries whose payload vanished are
  skipped, never fatal.  A sweep interrupted by SIGKILL therefore resumes
  from exactly the set of runs whose payloads hit the disk;
* the store is safe to share between concurrent writer processes: the
  index is append-only (one flushed+fsynced line per ``put``), payload
  temp files carry the writer's pid so two processes putting the same
  hash cannot tear each other's writes, and :meth:`RunStore.refresh`
  folds in index lines appended by other processes since open — the
  substrate the distributed sweep dispatch coordinates over.

Only summary statistics are persisted; per-step event logs
(``SimulationResult.events``) are diagnostics and are dropped on ``put``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..resilience.faults import InjectedFault, fault_point, torn_bytes
from ..resilience.quarantine import QUARANTINE_SCHEMA_VERSION
from ..resilience.retry import DEFAULT_STORE_RETRY, RetryPolicy
from ..resilience.snapshot import SnapshotStore
from ..sim.config import SimulationConfig
from ..sim.engine import SimulationResult
from .hashing import CONFIG_SCHEMA_VERSION, canonical_config_dict, config_hash

__all__ = [
    "STORE_SCHEMA_VERSION",
    "GRID_SCHEMA_VERSION",
    "QUARANTINE_SCHEMA_VERSION",
    "StoredRun",
    "GridManifest",
    "RunStore",
]

#: Version of the on-disk record layout (independent of the config-hash
#: schema version; both are embedded in every record).
STORE_SCHEMA_VERSION = 1

#: Version of the sweep-grid manifest layout (``grids/<key>.json``).
GRID_SCHEMA_VERSION = 1

_INDEX_NAME = "index.jsonl"
_RUNS_DIR = "runs"
_TELEMETRY_DIR = "telemetry"
_GRIDS_DIR = "grids"
_ERRORS_DIR = "errors"
_INDEX_FIELDS = (
    "config_hash",
    "schema_version",
    "summary",
    "training_summary",
    "wall_time_s",
    "extras",
)


@dataclass
class StoredRun:
    """One persisted run: everything needed to skip re-executing it."""

    config_hash: str
    summary: dict[str, float]
    training_summary: dict[str, float]
    wall_time_s: float
    extras: dict[str, float] = field(default_factory=dict)
    schema_version: int = STORE_SCHEMA_VERSION
    #: Canonical config dict (present on payload-backed records only).
    config: dict[str, Any] | None = None
    created_at: float | None = None

    @classmethod
    def from_result(cls, result: SimulationResult) -> "StoredRun":
        """Snapshot a finished :class:`SimulationResult` for persistence."""
        return cls(
            config_hash=config_hash(result.config),
            summary=dict(result.summary),
            training_summary=dict(result.training_summary),
            wall_time_s=float(result.wall_time_s),
            extras=dict(result.extras),
            config=canonical_config_dict(result.config),
            created_at=time.time(),
        )

    @classmethod
    def from_record(cls, record: Any) -> "StoredRun | None":
        """Validate a parsed JSON record; ``None`` if it is unusable."""
        if not isinstance(record, dict):
            return None
        if record.get("schema_version") != STORE_SCHEMA_VERSION:
            return None
        if not isinstance(record.get("config_hash"), str):
            return None
        if not all(k in record for k in _INDEX_FIELDS):
            return None
        if not isinstance(record["summary"], dict):
            return None
        if not isinstance(record["training_summary"], dict):
            return None
        if not isinstance(record.get("extras") or {}, dict):
            return None
        try:
            return cls(
                config_hash=record["config_hash"],
                summary=record["summary"],
                training_summary=record["training_summary"],
                wall_time_s=float(record["wall_time_s"]),
                extras=record.get("extras") or {},
                schema_version=int(record["schema_version"]),
                config=record.get("config"),
                created_at=record.get("created_at"),
            )
        except (TypeError, ValueError):
            return None

    def index_record(self) -> dict[str, Any]:
        """The slim dict serialized as this run's ``index.jsonl`` line."""
        return {k: getattr(self, k) for k in _INDEX_FIELDS}

    def payload_record(self) -> dict[str, Any]:
        """The full dict serialized as this run's payload file."""
        rec = self.index_record()
        rec["config"] = self.config
        rec["created_at"] = self.created_at
        return rec

    def to_result(self, config: SimulationConfig) -> SimulationResult:
        """Re-materialize a :class:`SimulationResult` for ``config``.

        Events are never persisted, so they come back as ``None``.
        """
        return SimulationResult(
            config=config,
            summary=dict(self.summary),
            training_summary=dict(self.training_summary),
            wall_time_s=self.wall_time_s,
            events=None,
            extras=dict(self.extras),
        )


@dataclass(frozen=True)
class GridManifest:
    """One published sweep grid: the shared planning input of a drain.

    Cooperating invocations must partition the grid identically for
    their dispatch task keys to line up, so the manifest pins everything
    the partition depends on: the config list (in first-appearance
    order) and the lane width.  See :mod:`repro.store.dispatch`.
    """

    key: str
    configs: tuple[SimulationConfig, ...]
    config_hashes: tuple[str, ...]
    lane_width: int
    created_at: float | None = None


class RunStore:
    """Content-addressed store of :class:`SimulationResult` summaries.

    ``hits``/``misses`` count ``get`` outcomes since the store was opened;
    the experiment runner prints them per experiment.  Example::

        >>> import tempfile
        >>> from repro.sim.config import SimulationConfig
        >>> from repro.sim.engine import run_simulation
        >>> from repro.store import RunStore
        >>> cfg = SimulationConfig(n_agents=8, n_articles=2,
        ...                        founders_per_article=2,
        ...                        training_steps=5, eval_steps=5)
        >>> store = RunStore(tempfile.mkdtemp())
        >>> hash_ = store.put(run_simulation(cfg))
        >>> store.get(cfg) is not None  # served from cache from now on
        True
        >>> store.stats["stored"], store.hits, store.misses
        (1, 1, 0)
    """

    def __init__(
        self,
        root: str | Path,
        recover_orphans: bool = True,
        retry: RetryPolicy | None = DEFAULT_STORE_RETRY,
    ):
        self.root = Path(root)
        self.runs_dir = self.root / _RUNS_DIR
        self.telemetry_dir = self.root / _TELEMETRY_DIR
        self.grids_dir = self.root / _GRIDS_DIR
        self.errors_dir = self.root / _ERRORS_DIR
        self.index_path = self.root / _INDEX_NAME
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        #: Bounded retry wrapping ``put``'s filesystem sequence (payload
        #: write + index append are idempotent, so re-running the whole
        #: sequence after a transient ``OSError`` is always safe).
        #: ``None`` disables retrying.
        self.retry = retry
        self._snapshots: SnapshotStore | None = None
        self._records: dict[str, StoredRun] = {}
        #: Byte offset of the last *complete* index line consumed; the
        #: tail past it (lines appended by other processes, or a torn
        #: final line) is picked up by :meth:`refresh`.
        self._index_pos = 0
        self.hits = 0
        self.misses = 0
        self._load_index()
        if recover_orphans:
            self._recover_orphans()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _consume_index_lines(self, data: bytes) -> int:
        """Fold complete ``data`` lines into the records; returns count."""
        n = 0
        for raw in data.splitlines():
            line = raw.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write / corruption: skip, never fatal
            rec = StoredRun.from_record(parsed)
            if rec is not None:
                self._records[rec.config_hash] = rec  # last write wins
                n += 1
        return n

    def _load_index(self) -> None:
        try:
            data = self.index_path.read_bytes()
        except OSError:
            return
        end = data.rfind(b"\n") + 1  # a torn final line stays unconsumed
        self._index_pos = end
        self._consume_index_lines(data[:end])

    def refresh(self) -> int:
        """Fold in index lines appended since open (or the last refresh).

        Failure point ``store/refresh`` fires at the top (an active
        chaos plan can starve readers); real ``OSError`` from the stat
        or read still degrades to "nothing new".

        The cross-process fast path of the distributed sweep dispatch:
        cooperating workers appending to the shared index become visible
        without re-reading the whole file — only the tail past the last
        consumed complete line is parsed, and a torn trailing line is
        left for the next refresh.  Returns the number of records read
        (re-reads of this process's own appends included; last write
        wins, so folding them again is harmless).

        An index *shorter* than the last consumed offset means the file
        was rotated or rewritten out from under us (a compaction, a
        restore from backup); the byte-offset tail would then skip — or
        tear through the middle of — records written after the rewrite,
        so the refresh falls back to a full rescan from byte zero.
        Records already in memory are kept (they were valid when read;
        last write wins on the re-read).
        """
        fault_point("store/refresh")
        try:
            size = self.index_path.stat().st_size
        except OSError:
            return 0
        if size < self._index_pos:
            self._index_pos = 0  # index shrank: rescan from the start
        if size <= self._index_pos:
            return 0
        with self.index_path.open("rb") as fh:
            fh.seek(self._index_pos)
            data = fh.read()
        end = data.rfind(b"\n") + 1
        if end <= 0:
            return 0
        self._index_pos += end
        return self._consume_index_lines(data[:end])

    def _recover_orphans(self) -> None:
        """Adopt payload files whose index line never made it to disk."""
        for path in sorted(self.runs_dir.glob("*.json")):
            h = path.stem
            if h in self._records:
                continue
            rec = self._read_payload(h)
            if rec is not None:
                self._records[h] = rec
                self._append_index(rec)

    def _read_payload(self, config_hash_: str) -> StoredRun | None:
        path = self.runs_dir / f"{config_hash_}.json"
        try:
            parsed = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        rec = StoredRun.from_record(parsed)
        if rec is None or rec.config_hash != config_hash_:
            return None
        return rec

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _tail_is_torn(self) -> bool:
        """Whether the index ends mid-line (a writer died mid-append)."""
        try:
            with self.index_path.open("rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size == 0:
                    return False
                fh.seek(size - 1)
                return fh.read(1) != b"\n"
        except OSError:
            return False

    def _append_index(self, rec: StoredRun) -> None:
        """Append one index line (flushed + fsynced).

        Self-healing: a torn tail left by a writer that died mid-append
        is terminated with a newline first, so this record starts on its
        own line instead of fusing with the corpse's fragment (which
        would lose *both* records to the JSON-decode skip).  Failure
        point ``store/index-append`` supports ``torn-write`` — partial
        line bytes hit the disk, then the append raises — which is
        exactly the corruption the healing path and the loader's
        complete-line discipline are tested against.
        """
        spec = fault_point("store/index-append", key=rec.config_hash)
        line = json.dumps(rec.index_record()) + "\n"
        with self.index_path.open("a", encoding="utf-8") as fh:
            if self._tail_is_torn():
                fh.write("\n")
            if spec is not None and spec.action == "torn-write":
                torn = torn_bytes(spec, line.encode("utf-8"))
                fh.write(torn.decode("utf-8", errors="ignore").rstrip("\n"))
                fh.flush()
                os.fsync(fh.fileno())
                raise InjectedFault(
                    "store/index-append", -1, "torn index append"
                )
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def put(self, result: SimulationResult, allow_partial: bool = False) -> str:
        """Persist one finished run; returns its config hash.

        Re-putting an already stored hash overwrites the payload and
        appends a superseding index line (loading keeps the last record
        per hash).  Event-collecting runs are not
        stored (see :meth:`get`); putting one raises to keep cache
        contents and cache keys consistent.  Results carrying the
        ``manual_summary`` provenance marker (from
        :meth:`~repro.sim.engine.CollaborationSimulation.summarize`,
        i.e. manually driven phases rather than the canonical ``run()``
        protocol) are refused unless ``allow_partial=True`` — the caller
        thereby vouches that the summary stands in for a full run of its
        config; the marker stays visible in the stored extras.
        """
        if result.config.collect_events:
            raise ValueError(
                "refusing to store a collect_events run: event logs are "
                "not persisted, so serving it from cache would change "
                "results"
            )
        if result.extras.get("manual_summary") and not allow_partial:
            raise ValueError(
                "refusing to store a manually summarized run under its "
                "config hash: it would be served as if produced by the "
                "canonical run() protocol; pass allow_partial=True to "
                "store it anyway"
            )
        rec = StoredRun.from_result(result)
        payload = json.dumps(rec.payload_record())
        final = self.runs_dir / f"{rec.config_hash}.json"
        # The pid keeps concurrent writers of the *same* hash (possible
        # under distributed dispatch after a lease reclaim) from tearing
        # each other's temp file; both replaces land identical bytes.
        tmp = self.runs_dir / f".{rec.config_hash}.{os.getpid()}.tmp"

        def write_once() -> None:
            """One attempt of the idempotent persist sequence; the
            store's retry policy re-runs it whole on ``OSError``."""
            fault_point("store/put", key=rec.config_hash)
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, final)
            # Always append, even for an overwrite: the index is an
            # append-only log and loading takes the last record per hash,
            # so a reopened store agrees with the payload instead of
            # serving the stale line.
            self._append_index(rec)

        if self.retry is not None:
            self.retry.call(write_once, site="store/put")
        else:
            write_once()
        self._records[rec.config_hash] = rec
        return rec.config_hash

    # ------------------------------------------------------------------
    # Telemetry artifacts
    # ------------------------------------------------------------------
    def put_telemetry(
        self, payload: dict[str, Any], config_hash_: str | None = None
    ) -> str:
        """Persist one per-run telemetry artifact; returns its key.

        ``payload`` is a :func:`repro.obs.build_telemetry` document; the
        key is ``config_hash_`` or, when omitted, the payload's own
        ``config_hash`` — the same content hash the run record uses, so
        results and telemetry of a traced run are retrievable together.
        Telemetry lives beside the index (``telemetry/<hash>.json``,
        atomic replace, last write wins) but is *diagnostic*: it never
        affects ``get``/``contains`` cache decisions, and re-tracing a
        cached config simply refreshes its artifact.
        """
        from ..obs.artifact import validate_telemetry

        key = config_hash_ or payload.get("config_hash")
        if not isinstance(key, str) or not key:
            raise ValueError("telemetry payload carries no config hash key")
        if validate_telemetry(payload) is None:
            raise ValueError("not a valid telemetry artifact payload")
        self.telemetry_dir.mkdir(parents=True, exist_ok=True)
        final = self.telemetry_dir / f"{key}.json"
        tmp = self.telemetry_dir / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, final)
        return key

    # ------------------------------------------------------------------
    # Quarantine artifacts (resilience layer)
    # ------------------------------------------------------------------
    def put_error(self, payload: dict[str, Any]) -> str:
        """Persist one quarantine artifact; returns its config hash.

        ``payload`` comes from
        :func:`repro.resilience.quarantine.build_error_payload` —
        traceback, attempt count and the fault context active when the
        config kept failing.  Artifacts live at ``errors/<hash>.json``
        (atomic replace, last write wins) and are *advisory*: they never
        affect ``get``/``contains``, but the dispatch drain treats a
        quarantined config as settled so cooperating workers stop
        waiting for a result that will never land.
        """
        key = payload.get("config_hash")
        if not isinstance(key, str) or not key:
            raise ValueError("quarantine payload carries no config hash")
        if payload.get("schema_version") != QUARANTINE_SCHEMA_VERSION:
            raise ValueError("not a valid quarantine artifact payload")
        self.errors_dir.mkdir(parents=True, exist_ok=True)
        final = self.errors_dir / f"{key}.json"
        tmp = self.errors_dir / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, final)
        return key

    def get_error(self, config: SimulationConfig | str) -> dict[str, Any] | None:
        """Quarantine artifact for a config (or hash), or ``None``.

        Corruption-tolerant like every other artifact read: unreadable
        or foreign-version files read as missing, never fatal.
        """
        key = config if isinstance(config, str) else config_hash(config)
        path = self.errors_dir / f"{key}.json"
        try:
            parsed = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(parsed, dict):
            return None
        if parsed.get("schema_version") != QUARANTINE_SCHEMA_VERSION:
            return None
        return parsed

    def has_error(self, config_hash_: str) -> bool:
        """Whether a quarantine artifact exists for this hash (cheap
        existence check — the dispatch drain polls it per missing
        config, so no JSON parse here)."""
        return (self.errors_dir / f"{config_hash_}.json").is_file()

    def error_hashes(self) -> list[str]:
        """Config hashes with a quarantine artifact (sorted)."""
        if not self.errors_dir.is_dir():
            return []
        return sorted(
            p.stem for p in self.errors_dir.glob("*.json")
            if not p.stem.startswith(".")
        )

    def clear_error(self, config_hash_: str) -> bool:
        """Drop one quarantine artifact (a re-run may now land normally);
        returns whether one existed."""
        try:
            (self.errors_dir / f"{config_hash_}.json").unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------
    # Mid-run resume snapshots (resilience layer)
    # ------------------------------------------------------------------
    @property
    def snapshots(self) -> SnapshotStore:
        """The store's ``checkpoints/`` snapshot family (created lazily)."""
        if self._snapshots is None:
            self._snapshots = SnapshotStore(self.root)
        return self._snapshots

    def put_snapshot(self, key: str, blob: bytes) -> None:
        """Persist a mid-run resume snapshot under ``checkpoints/<key>.ckpt``."""
        self.snapshots.save(key, blob)

    def get_snapshot(self, key: str) -> bytes | None:
        return self.snapshots.load(key)

    def delete_snapshot(self, key: str) -> None:
        self.snapshots.delete(key)

    def snapshot_keys(self) -> list[str]:
        return self.snapshots.keys()

    # ------------------------------------------------------------------
    # Sweep-grid manifests (distributed dispatch)
    # ------------------------------------------------------------------
    def put_grid(
        self, configs: list[SimulationConfig], lane_width: int
    ) -> str:
        """Publish a sweep-grid manifest; returns its key.

        The key is content-derived (config hashes in grid order plus the
        lane width), so republishing the same grid — every cooperating
        ``repro sweep --dispatch=store`` invocation does — overwrites
        one manifest idempotently instead of accumulating copies.
        Event-collecting configs are refused for the same reason ``put``
        refuses their results.
        """
        from .hashing import canonical_config_dict, canonical_json, config_hash

        if lane_width < 1:
            raise ValueError("lane_width must be >= 1")
        for cfg in configs:
            if cfg.collect_events:
                raise ValueError(
                    "refusing to publish a collect_events config in a grid "
                    "manifest: its results cannot be shared through the store"
                )
        hashes = [config_hash(c) for c in configs]
        key_doc = {
            "schema_version": GRID_SCHEMA_VERSION,
            "config_hashes": hashes,
            "lane_width": int(lane_width),
        }
        key = hashlib.sha256(canonical_json(key_doc).encode("utf-8")).hexdigest()
        payload = {
            "schema_version": GRID_SCHEMA_VERSION,
            "config_schema_version": CONFIG_SCHEMA_VERSION,
            "key": key,
            "lane_width": int(lane_width),
            "created_at": time.time(),
            "config_hashes": hashes,
            "configs": [canonical_config_dict(c) for c in configs],
        }
        self.grids_dir.mkdir(parents=True, exist_ok=True)
        final = self.grids_dir / f"{key}.json"
        tmp = self.grids_dir / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, final)
        return key

    def get_grid(self, key: str) -> GridManifest | None:
        """A published grid manifest with revived configs, or ``None``.

        Follows the store's tolerance rules: unreadable files, foreign
        schema versions (manifest *or* config canonicalization) and
        configs that no longer revive read as missing, never fatal.
        """
        from .hashing import config_from_dict

        path = self.grids_dir / f"{key}.json"
        try:
            parsed = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(parsed, dict):
            return None
        if parsed.get("schema_version") != GRID_SCHEMA_VERSION:
            return None
        if parsed.get("config_schema_version") != CONFIG_SCHEMA_VERSION:
            return None
        raw_configs = parsed.get("configs")
        raw_hashes = parsed.get("config_hashes")
        if not isinstance(raw_configs, list) or not isinstance(raw_hashes, list):
            return None
        if len(raw_configs) != len(raw_hashes):
            return None
        try:
            configs = tuple(config_from_dict(c) for c in raw_configs)
            lane_width = int(parsed["lane_width"])
        except (TypeError, ValueError, KeyError):
            return None
        return GridManifest(
            key=key,
            configs=configs,
            config_hashes=tuple(str(h) for h in raw_hashes),
            lane_width=lane_width,
            created_at=parsed.get("created_at"),
        )

    def grid_keys(self) -> list[str]:
        """Keys of every published grid manifest (sorted)."""
        if not self.grids_dir.is_dir():
            return []
        return sorted(
            p.stem for p in self.grids_dir.glob("*.json")
            if not p.stem.startswith(".")
        )

    def get_telemetry(
        self, config: SimulationConfig | str
    ) -> dict[str, Any] | None:
        """Stored telemetry artifact for a config (or hash), or ``None``.

        Follows the store's corruption-tolerance rules: unreadable files
        and foreign schema versions read as missing, never fatal.
        """
        from ..obs.artifact import validate_telemetry

        key = config if isinstance(config, str) else config_hash(config)
        path = self.telemetry_dir / f"{key}.json"
        try:
            parsed = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return validate_telemetry(parsed)

    def telemetry_hashes(self) -> list[str]:
        """Config hashes with a stored telemetry artifact (sorted)."""
        if not self.telemetry_dir.is_dir():
            return []
        return sorted(
            p.stem for p in self.telemetry_dir.glob("*.json")
            if not p.stem.startswith(".")
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def contains(self, config: SimulationConfig) -> bool:
        """Whether a result for ``config`` is stored (also ``in``)."""
        return config_hash(config) in self._records

    __contains__ = contains

    def contains_hash(self, config_hash_: str) -> bool:
        """Whether a record with this content hash is loaded.

        Pure membership — no hit/miss accounting — because the dispatch
        layer polls it while waiting on other workers and would skew the
        cache counters otherwise.  Pair with :meth:`refresh` to observe
        records other processes append.
        """
        return config_hash_ in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, config: SimulationConfig) -> SimulationResult | None:
        """Cached result for ``config``, or ``None`` (counted as a miss).

        Configs with ``collect_events=True`` are never served from cache:
        the store persists summaries only, so a cached answer would drop
        the event log the caller explicitly asked for.
        """
        if config.collect_events:
            self.misses += 1
            return None
        rec = self._records.get(config_hash(config))
        if rec is None:
            self.misses += 1
            return None
        self.hits += 1
        return rec.to_result(config)

    def get_record(self, config_hash_: str) -> StoredRun | None:
        """Payload-backed record (with config dict) for one hash."""
        rec = self._records.get(config_hash_)
        if rec is None:
            return None
        if rec.config is not None:
            return rec
        full = self._read_payload(config_hash_)
        if full is not None:
            self._records[config_hash_] = full
            return full
        return rec  # index-only record: payload lost, summary still usable

    def records(self) -> list[StoredRun]:
        """All stored runs, payload-backed where possible, oldest first."""
        out = [self.get_record(h) for h in self._records]
        recs = [r for r in out if r is not None]
        recs.sort(key=lambda r: (r.created_at or 0.0, r.config_hash))
        return recs

    def query(self, **filters: Any) -> list[StoredRun]:
        """Stored runs whose config matches every filter.

        Keys are config field names; dotted paths reach nested dataclass
        fields (``mix.rational``).  Records without a config payload never
        match.
        """
        canon_filters = {k: _canon_scalar(v) for k, v in filters.items()}

        def matches(rec: StoredRun) -> bool:
            """Whether one record's config satisfies every filter."""
            if rec.config is None:
                return False
            for dotted, want in canon_filters.items():
                node: Any = rec.config
                for part in dotted.split("."):
                    if not isinstance(node, dict) or part not in node:
                        return False
                    node = node[part]
                if node != want:
                    return False
            return True

        return [r for r in self.records() if matches(r)]

    def iter_hashes(self) -> Iterator[str]:
        """Iterate over the stored config hashes (insertion order)."""
        return iter(self._records)

    @property
    def stats(self) -> dict[str, int]:
        """Summary counters: stored records, session hits and misses."""
        return {"stored": len(self._records), "hits": self.hits, "misses": self.misses}


def _canon_scalar(value: Any) -> Any:
    """Apply the float sentinel encoding to a query scalar."""
    from .hashing import _canonical  # same rules as config canonicalization

    return _canonical(value)
