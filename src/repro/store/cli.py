"""Unified ``repro`` CLI: run scenarios, sweep grids, inspect the store.

Layered over the experiment infrastructure rather than replacing it —
``repro-experiments`` keeps regenerating the paper figures; this command
drives the scenario registry and the content-addressed run store::

    repro scenarios                      # what can I run?
    repro run schemes/shootout --fast    # run a named pack, cached
    repro run paper/fig3 --seeds 5
    repro sweep --set scheme=karma,tft --set n_agents=50,100
    repro sweep --set t_eval=0.5,1,2 --lane-batch   # one vectorized batch
    repro sweep --set scheme=karma,tft --dispatch=store  # cooperative drain
    repro sweep --publish-only --set n_agents=50,100  # publish, don't run
    repro sweep-worker ./runstore        # join any drain on this store
    repro serve --port 8321              # HTTP job API + SSE over the store
    repro chaos base/default --plan p.json  # replay a fault schedule
    repro profile base/default --fast    # cProfile one pack config
    repro trace scale/50k --json         # traced run: phase-time breakdown
    repro backends                       # kernel backends + availability
    repro verify-backend                 # compiled vs numpy bit-identity
    repro ls                             # stored runs, no simulation
    repro ls --errors                    # quarantine artifacts, no simulation
    repro report --metric shared_files   # aggregate table, no simulation
    repro stats                          # aggregate stored telemetry

``run`` and ``sweep`` persist into ``--store`` (default ``./runstore``),
so repeating a command is free and an interrupted grid resumes where it
stopped.  ``ls``, ``report`` and ``stats`` only read the store.
``trace`` executes one config under the :mod:`repro.obs` tracer and
persists both the result and its ``telemetry/<hash>.json`` artifact.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import Any

from ..analysis.report import aggregate_stored_runs, render_stored_table
from ..sim.config import ScaleConfig, SimulationConfig
from ..sim.scenarios import base_config
from ..sim._sweep import last_sweep_failures, run_sweep
from .compose import iter_modifiers, resolve_scenario
from .hashing import revive_floats, short_hash
from .registry import iter_scenarios
from ._runstore import RunStore, StoredRun

__all__ = ["build_parser", "main"]

# --set reaches every scalar config field plus the scale section's leaves
# as dotted keys (``--set scale.sparse=true``); the remaining structured
# fields (mix, constants) need real objects and are set by scenario
# builders instead.
_CONFIG_FIELDS = (
    {f.name for f in dataclasses.fields(SimulationConfig)} - {"mix", "constants", "scale"}
) | {f"scale.{f.name}" for f in dataclasses.fields(ScaleConfig)}
_DEFAULT_METRICS = ("shared_files", "shared_bandwidth")
_DEFAULT_SEEDS = 3


def _parse_value(token: str) -> Any:
    """One ``--set`` value: JSON scalar if it parses, else a string."""
    stripped = token.strip()
    special = {"inf": float("inf"), "+inf": float("inf"),
               "-inf": float("-inf"), "nan": float("nan")}
    if stripped.lower() in special:
        return special[stripped.lower()]
    try:
        return json.loads(stripped)
    except json.JSONDecodeError:
        return stripped


def _parse_set(
    entries: list[str] | None, allow_dotted: bool = False
) -> dict[str, list[Any]]:
    """``["k=v1,v2", ...]`` -> ``{k: [v1, v2], ...}`` with field checks."""
    all_fields = {f.name for f in dataclasses.fields(SimulationConfig)}
    out: dict[str, list[Any]] = {}
    for entry in entries or []:
        key, sep, raw = entry.partition("=")
        key = key.strip()
        if not sep or not key or not raw:
            raise SystemExit(f"error: --set expects key=value[,value...], got {entry!r}")
        root = key.split(".", 1)[0]
        valid = root in all_fields if allow_dotted else key in _CONFIG_FIELDS
        if not valid:
            known = ", ".join(sorted(all_fields if allow_dotted else _CONFIG_FIELDS))
            raise SystemExit(f"error: unknown config field {key!r}; fields: {known}")
        if allow_dotted and key in ("mix", "constants", "scale"):
            # A structured field can never equal a scalar filter value;
            # without this the query would silently match nothing.
            raise SystemExit(
                f"error: {key!r} is a structured field; filter a leaf "
                f"field instead (e.g. mix.rational)"
            )
        out[key] = [_parse_value(v) for v in raw.split(",")]
    return out


def _single_overrides(grid: dict[str, list[Any]]) -> dict[str, Any]:
    """Collapse a --set grid into plain overrides (each key one value)."""
    bad = [k for k, vs in grid.items() if len(vs) != 1]
    if bad:
        raise SystemExit(
            f"error: multi-value --set only makes sense for 'repro sweep' "
            f"(got multiple values for {', '.join(bad)})"
        )
    return {k: vs[0] for k, vs in grid.items()}


def _expand_grid(
    grid: dict[str, list[Any]], base: SimulationConfig
) -> list[SimulationConfig]:
    """Cartesian product of the --set axes applied to ``base``."""
    configs = [base]
    for key, values in grid.items():
        configs = [c.with_(**{key: v}) for c in configs for v in values]
    return configs


def _progress_printer(quiet: bool):
    """Per-run progress callback for ``run_sweep`` (``None`` if quiet)."""
    if quiet:
        return None

    def progress(done, total, index, result, cached):
        """Print one `[done/total] hash description (time|cache)` line."""
        tag = "cache" if cached else f"{result.wall_time_s:6.2f}s"
        print(
            f"  [{done}/{total}] {short_hash(result.config)} "
            f"{result.config.describe()}  ({tag})"
        )

    return progress


_EXECUTORS = ("serial", "thread", "process")


def _resolve_execution(args: argparse.Namespace) -> tuple[str, str | None]:
    """``(executor, kernel_backend)`` from the --executor/--backend flags.

    Historically ``--backend`` picked the *parallelization*; it now picks
    the *kernel backend* (numpy | compiled) and ``--executor`` the
    parallelization.  An executor name passed to ``--backend`` keeps
    working with a deprecation notice so existing scripts survive.
    """
    executor = getattr(args, "executor", None)
    backend = getattr(args, "backend", None)
    kernel = None
    if backend in _EXECUTORS:
        print(
            f"note: '--backend {backend}' is deprecated; use "
            f"'--executor {backend}' (--backend now selects the kernel "
            f"backend: numpy | compiled)",
            file=sys.stderr,
        )
        if executor is None:
            executor = backend
    elif backend is not None:
        kernel = backend
    return executor or "process", kernel


def _run_and_report(
    configs: list[SimulationConfig], args: argparse.Namespace
) -> int:
    if args.dispatch == "store" and args.no_store:
        raise SystemExit(
            "error: --dispatch=store needs the store (it is the "
            "coordination substrate); drop --no-store"
        )
    on_error = getattr(args, "on_error", "raise")
    checkpoint_every = getattr(args, "checkpoint_every", 0)
    if args.no_store and (on_error == "quarantine" or checkpoint_every):
        raise SystemExit(
            "error: --on-error=quarantine and --checkpoint-every persist "
            "artifacts into the store; drop --no-store"
        )
    store = None if args.no_store else RunStore(args.store)
    executor, kernel_backend = _resolve_execution(args)
    results = run_sweep(
        configs,
        backend=executor,
        kernel_backend=kernel_backend,
        workers=args.workers,
        store=store,
        progress=_progress_printer(args.quiet),
        batch_replicates=args.batch_replicates,
        lane_batch=args.lane_batch,
        lane_width=args.lane_width,
        dispatch=args.dispatch,
        lease_expiry_s=args.lease_expiry,
        on_error=on_error,
        checkpoint_every=checkpoint_every,
    )
    if args.dispatch == "store" and not args.quiet:
        from .dispatch import last_dispatch_stats

        stats = last_dispatch_stats()
        if stats is not None:
            print(
                f"dispatch: {stats.computed} computed / {stats.served} served "
                f"by peers or cache; {stats.claimed} tasks claimed, "
                f"{stats.reclaimed} reclaimed "
                f"({stats.configs_per_sec:.2f} configs/s as {stats.owner})"
            )
    failures = last_sweep_failures()
    if failures:
        print(f"quarantined {len(failures)} config(s):")
        for f in failures:
            print(
                f"  {short_hash(f.config_hash)}  attempts={f.attempts}  "
                f"{f.error}"
            )
        print(
            f"  (details in {args.store}/errors/<hash>.json; "
            f"list with: repro ls --errors --store {args.store})"
        )
    records = [StoredRun.from_result(r) for r in results if r is not None]
    metrics = tuple(args.metric or _DEFAULT_METRICS)
    print(render_stored_table(aggregate_stored_runs(records, metrics), metrics))
    if store is not None:
        # The store was opened above with zeroed counters, so the session
        # totals are exactly this command's hits/misses.
        print(
            f"cache: {store.hits} hits / {store.misses} misses "
            f"({len(store)} runs stored in {store.root})"
        )
    return 0


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_scenarios(args: argparse.Namespace) -> int:
    """List packs (and modifiers), or emit the markdown catalog."""
    if args.markdown:
        if args.tag:
            # The catalog is the full, CI-checked document; silently
            # emitting an unfiltered file for a filtered request would
            # mislead whoever pipes it somewhere.
            raise SystemExit("error: --markdown emits the full catalog; "
                             "it cannot be combined with --tag")
        from .catalog import scenario_catalog_markdown

        print(scenario_catalog_markdown(), end="")
        return 0
    for pack in iter_scenarios():
        if args.tag and args.tag not in pack.tags:
            continue
        tags = f" [{', '.join(pack.tags)}]" if pack.tags else ""
        print(f"{pack.name:<26} {pack.description}{tags}")
    mods = [
        m for m in iter_modifiers() if not args.tag or args.tag in m.tags
    ]
    if mods:
        print()
        print("modifiers (compose onto any pack with '+', e.g. <pack>+<modifier>):")
        for mod in mods:
            tags = f" [{', '.join(mod.tags)}]" if mod.tags else ""
            print(f"  +{mod.name:<24} {mod.description}{tags}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Expand a pack or a ``pack+modifier`` spec and run it cached."""
    try:
        pack = resolve_scenario(args.scenario)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    overrides = _single_overrides(_parse_set(args.set))
    configs = pack.expand(
        fast=args.fast,
        n_seeds=args.seeds if args.seeds is not None else _DEFAULT_SEEDS,
        overrides=overrides or None,
    )
    if not args.quiet:
        print(f"scenario {pack.name}: {len(configs)} configs")
    return _run_and_report(configs, args)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run the ad-hoc cartesian grid spelled by ``--set`` axes, cached."""
    grid = _parse_set(args.set)
    seeds_axis = grid.pop("seed", None)
    if seeds_axis is not None and args.seeds is not None:
        raise SystemExit(
            "error: --seeds and an explicit '--set seed=...' axis are "
            "mutually exclusive"
        )
    configs = _expand_grid(grid, base_config(args.fast))
    if seeds_axis is not None:
        configs = [c.with_(seed=s) for c in configs for s in seeds_axis]
    else:
        from ..sim.rng import spawn_seeds

        n_seeds = args.seeds if args.seeds is not None else _DEFAULT_SEEDS
        configs = [
            c.with_(seed=s)
            for c in configs
            for s in spawn_seeds(c.seed, n_seeds)
        ]
    if not args.quiet:
        print(f"sweep: {len(configs)} configs")
    if args.publish_only:
        if args.no_store:
            raise SystemExit("error: --publish-only writes the store; drop --no-store")
        from .dispatch import publish_sweep_grid

        store = RunStore(args.store)
        key, grid = publish_sweep_grid(store, configs, lane_width=args.lane_width)
        print(
            f"published grid {key} ({len(grid)} configs) to {store.root}; "
            f"drain it with: repro sweep-worker {store.root}"
        )
        return 0
    return _run_and_report(configs, args)


def cmd_sweep_worker(args: argparse.Namespace) -> int:
    """Join the cooperative drain of published grids in a store.

    The inverse handshake of ``repro sweep --dispatch=store``: instead of
    bringing a grid, the worker discovers grid manifests already
    published in the store (``repro sweep --publish-only``, or any
    dispatching sweep) and computes whatever task units it can claim.
    Launch any number against one store — terminals, cron jobs, other
    machines on a shared filesystem — and they drain it together with
    zero duplicate computation.
    """
    from ..obs import build_telemetry, tracing
    from .dispatch import last_dispatch_stats

    store = RunStore(args.store)
    poll_s = max(0.05, args.poll_interval)
    deadline = (
        time.monotonic() + args.wait_for_grid
        if args.wait_for_grid is not None
        else None
    )
    grid_stats: dict[str, dict[str, Any]] = {}

    def settled(h: str) -> bool:
        """A config needs no worker: result landed or (when quarantining)
        it is settled by a persisted quarantine artifact."""
        if store.contains_hash(h):
            return True
        return args.on_error == "quarantine" and store.has_error(h)

    def drain_one(key: str, manifest: Any) -> None:
        """Cooperatively drain one grid and book its stats."""
        if not args.quiet:
            print(f"draining grid {key} ({len(manifest.configs)} configs)")
        run_sweep(
            manifest.configs,
            backend="serial",
            store=store,
            progress=_progress_printer(args.quiet),
            lane_width=manifest.lane_width,
            dispatch="store",
            lease_expiry_s=args.lease_expiry,
            on_error=args.on_error,
            checkpoint_every=args.checkpoint_every,
        )
        failures = last_sweep_failures()
        if failures and not args.quiet:
            print(
                f"grid {key[:12]}: {len(failures)} config(s) quarantined "
                f"(repro ls --errors --store {store.root})"
            )
        stats = last_dispatch_stats()
        if stats is not None:
            grid_stats[key] = stats.as_dict()
            if not args.quiet:
                print(
                    f"grid {key[:12]}: {stats.computed} computed / "
                    f"{stats.served} served ({stats.claimed} claimed, "
                    f"{stats.reclaimed} reclaimed, {stats.resumed} resumed)"
                )

    while True:
        store.refresh()
        keys = [args.grid] if args.grid else store.grid_keys()
        worked = False
        for key in keys:
            manifest = store.get_grid(key)
            if manifest is None:
                if args.grid and deadline is None:
                    raise SystemExit(f"error: no grid {key!r} in {store.root}")
                continue
            if all(settled(h) for h in manifest.config_hashes):
                continue  # grid fully drained; nothing to join
            worked = True
            if args.trace:
                with tracing() as tracer:
                    drain_one(key, manifest)
                    payload = build_telemetry(
                        tracer,
                        config_hash=key,
                        meta={"kind": "sweep-worker", "grid": key},
                    )
                store.put_telemetry(payload, config_hash_=key)
            else:
                drain_one(key, manifest)
        if worked:
            continue  # rescan at once: new grids may have been published
        if deadline is None or time.monotonic() >= deadline:
            break
        time.sleep(poll_s)

    computed = sorted({h for s in grid_stats.values() for h in s["computed_hashes"]})
    if args.summary_json:
        print(
            json.dumps(
                {
                    "store": str(store.root),
                    "grids": grid_stats,
                    "computed": len(computed),
                    "computed_hashes": computed,
                }
            )
        )
    elif not args.quiet:
        if grid_stats:
            print(
                f"worker done: {len(grid_stats)} grid(s), "
                f"{len(computed)} configs computed locally"
            )
        else:
            print(f"no undrained grids in {store.root}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a scenario under a deterministic fault-injection plan.

    The resilience layer's front door (docs/RESILIENCE.md): loads a
    :class:`~repro.resilience.FaultPlan` (``--plan`` takes inline JSON
    or a file path), activates it for the whole run — in this process
    *and*, via ``REPRO_FAULT_PLAN``, in any subprocess workers — and
    executes the scenario with quarantine-mode error handling, so the
    run degrades instead of dying.  The same plan against the same
    scenario replays the identical fault schedule, which is what makes
    a chaos failure debuggable.  Exits 0 when every config either
    completed or quarantined as scheduled.
    """
    import os

    from ..resilience import FAULT_PLAN_ENV, FaultPlan, inject_faults

    try:
        pack = resolve_scenario(args.scenario)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    try:
        plan = FaultPlan.parse(args.plan)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot load fault plan: {exc}") from None
    overrides = _single_overrides(_parse_set(args.set))
    configs = pack.expand(
        fast=args.fast,
        n_seeds=args.seeds if args.seeds is not None else _DEFAULT_SEEDS,
        overrides=overrides or None,
    )
    if not args.quiet:
        print(
            f"chaos {pack.name}: {len(configs)} configs under "
            f"{len(plan.specs)} fault spec(s) (seed {plan.seed})"
        )
    # Subprocess workers (backend=process, dispatch peers) inherit the
    # schedule through the environment; this process uses the installed
    # plan so the fired log below reflects coordinator-side faults.
    previous_env = os.environ.get(FAULT_PLAN_ENV)
    os.environ[FAULT_PLAN_ENV] = json.dumps(plan.to_dict())
    try:
        with inject_faults(plan):
            code = _run_and_report(configs, args)
    finally:
        if previous_env is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = previous_env
    if not args.quiet:
        if plan.fired:
            print(f"faults fired in this process ({len(plan.fired)}):")
            for f in plan.fired:
                key = f" key={f['key'][:12]}" if f["key"] else ""
                print(f"  {f['site']} hit#{f['hit']} -> {f['action']}{key}")
        else:
            print(
                "no faults fired in this process (subprocess workers "
                "count their own)"
            )
    return code


#: Valid ``repro profile --sort`` keys (pstats sort_stats spellings).
_PROFILE_SORTS = ("cumtime", "tottime", "ncalls", "pcalls", "filename", "line", "name")


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one pack config under ``cProfile`` and print the top functions.

    Hot-path hunting without ad-hoc scripts: expands the pack (or
    ``pack+modifier`` spec), takes its first config with a single seed,
    executes it under the profiler and prints the ``--limit`` hottest
    functions by ``--sort``.  Never touches the store — a profiled run's
    timings would be meaningless to cache.  The kernel backend is warmed
    *before* the profiler starts, so one-time JIT compilation never
    masquerades as simulation hot spots.
    """
    try:
        pack = resolve_scenario(args.scenario)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    overrides = _single_overrides(_parse_set(args.set))
    configs = pack.expand(fast=args.fast, n_seeds=1, overrides=overrides or None)
    cfg = configs[0]
    if args.backend:
        cfg = cfg.with_(**{"engine.backend": args.backend})
    print(
        f"profiling {pack.name} config 1/{len(configs)} "
        f"[{short_hash(cfg)}] {cfg.describe()}"
    )

    import cProfile
    import pstats

    from ..sim.backends import get_backend
    from ..sim.engine import run_simulation

    warm_s = get_backend(cfg.engine.backend).ensure_warm()
    if warm_s > 0.0:
        print(
            f"backend warm-up (JIT compilation) took {warm_s:.2f}s "
            f"— excluded from the profile below"
        )

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_simulation(cfg)
    profiler.disable()
    print(f"run finished in {result.wall_time_s:.2f}s; top {args.limit} by {args.sort}:")
    pstats.Stats(profiler).sort_stats(args.sort).print_stats(args.limit)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one pack config under the tracer and report phase timings.

    Expands the pack (or ``pack+modifier`` spec), takes its first config
    with a single seed, runs it with :mod:`repro.obs` tracing enabled and
    prints the per-phase wall-time breakdown (``--json`` for the machine
    form, ``--jsonl PATH`` to also export individual span events).  The
    result and its ``telemetry/<hash>.json`` artifact are persisted into
    ``--store`` unless ``--no-store`` is given, so ``repro stats`` and
    reports can aggregate phase-time breakdowns later.
    """
    try:
        pack = resolve_scenario(args.scenario)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    overrides = _single_overrides(_parse_set(args.set))
    configs = pack.expand(fast=args.fast, n_seeds=1, overrides=overrides or None)
    cfg = configs[0]
    if args.backend:
        cfg = cfg.with_(**{"engine.backend": args.backend})
    if not args.json:
        print(
            f"tracing {pack.name} config 1/{len(configs)} "
            f"[{short_hash(cfg)}] {cfg.describe()}"
        )

    from ..obs import (
        build_telemetry,
        phase_breakdown,
        render_phase_table,
        tracing,
        write_events_jsonl,
    )
    from ..sim.engine import run_simulation
    from .hashing import config_hash

    with tracing(
        trace_events=args.jsonl is not None, track_memory=args.memory
    ) as tracer:
        result = run_simulation(cfg)
        payload = build_telemetry(
            tracer,
            config_hash=config_hash(cfg),
            wall_time_s=result.wall_time_s,
            meta={"scenario": pack.name, "fast": args.fast},
        )
        if args.jsonl is not None:
            with open(args.jsonl, "w", encoding="utf-8") as fh:
                n_events = write_events_jsonl(tracer.events, fh)

    stored_in = None
    if not args.no_store:
        store = RunStore(args.store)
        if not cfg.collect_events:
            store.put(result)
        store.put_telemetry(payload)
        stored_in = store.root

    breakdown = phase_breakdown(payload)
    if args.json:
        print(
            json.dumps(
                {
                    "config_hash": payload["config_hash"],
                    "scenario": pack.name,
                    "wall_time_s": result.wall_time_s,
                    "breakdown": breakdown,
                    "telemetry": payload,
                },
                indent=2,
            )
        )
    else:
        print(render_phase_table(breakdown, memory=args.memory))
        print(f"run finished in {result.wall_time_s:.2f}s")
        if args.jsonl is not None:
            print(f"wrote {n_events} span events to {args.jsonl}")
        if stored_in is not None:
            print(
                f"telemetry stored as {short_hash(payload['config_hash'])} "
                f"in {stored_in}"
            )
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    """List kernel backends: availability, versions, warm-up status.

    One row per registered backend from
    :func:`repro.sim.backends.list_backends` — whether it can run
    natively (``compiled`` needs a JIT compiler), which library versions
    back it, and whether its kernels are already warm (compiled).
    ``--json`` emits the raw records instead of the table.
    """
    from ..sim.backends import list_backends

    infos = list_backends()
    if args.json:
        print(json.dumps(infos, indent=2))
        return 0
    for info in infos:
        # A fallback singleton answers under the name it was requested as;
        # the table labels rows by the registered name either way.
        name = info.get("requested", info["name"])
        avail = "available" if info.get("available") else "unavailable"
        bits = [f"mode={info['mode']}"] if info.get("mode") else []
        for key in ("numpy_version", "numba_version"):
            if info.get(key):
                bits.append(f"{key.split('_')[0]}={info[key]}")
        bits.append("warm" if info.get("warmed") else "cold")
        if info.get("detail"):
            bits.append(info["detail"])
        print(f"{name:<10} {avail:<12} {'  '.join(bits)}")
    return 0


def cmd_verify_backend(args: argparse.Namespace) -> int:
    """Prove a backend bit-identical to the numpy reference, per scheme.

    Steps every incentive scheme (with churn and adversaries enabled) for
    ``--steps`` steps under both the numpy reference and the backend
    under test, then compares full state fingerprints (every slot array
    plus RNG states).  Any diverging array fails the command with a
    nonzero exit code.  Without a JIT compiler the compiled backend is
    forced into interpreted mode (``REPRO_COMPILED_PUREPY=1``) so the
    verification still exercises the compiled kernel code paths.
    """
    from ..sim.backends import backend_info, reset_backend_cache
    from ..sim.config import SimulationConfig
    from ..sim.testing import backend_equivalence_report

    target = args.backend
    if target == "compiled" and not backend_info("compiled")["available"]:
        if not os.environ.get("REPRO_COMPILED_PUREPY"):
            os.environ["REPRO_COMPILED_PUREPY"] = "1"
            reset_backend_cache()
        print(
            "note: no JIT compiler installed — verifying the compiled "
            "kernels in interpreted mode"
        )

    base = SimulationConfig(
        n_agents=16,
        n_articles=4,
        founders_per_article=2,
        training_steps=args.steps,
        eval_steps=1,
        seed=args.seed,
        leave_rate=0.05,
        join_rate=0.05,
        whitewash_rate=0.02,
        collusion_fraction=0.2,
        sybil_fraction=0.1,
        sybil_rate=0.05,
    )
    schemes = ("reputation", "none", "tft", "karma")
    failures = 0
    for scheme in schemes:
        cfg = base.with_(scheme=scheme)
        diverged = backend_equivalence_report(
            cfg, n_steps=args.steps, backends=("numpy", target)
        )
        status = "FAIL" if diverged else "PASS"
        extra = f"  ({len(diverged)} diverging arrays)" if diverged else ""
        print(f"{status}  scheme={scheme:<10} steps={args.steps}{extra}")
        for path in diverged[:10]:
            print(f"      diverges: {path}")
        failures += bool(diverged)
    if failures:
        print(f"{failures}/{len(schemes)} schemes diverged")
        return 1
    print(f"all {len(schemes)} schemes bit-identical (numpy vs {target})")
    return 0


def cmd_ls(args: argparse.Namespace) -> int:
    """List stored runs (reads the store; never simulates).

    ``--errors`` lists the quarantine artifacts instead: one line per
    config that exhausted its retry budget, with the attempt count and
    last error from ``errors/<hash>.json``.
    """
    store = RunStore(args.store)
    if getattr(args, "errors", False):
        hashes = sorted(store.error_hashes())
        if not hashes:
            print(f"(no quarantine artifacts in {store.root})")
            return 0
        for h in hashes:
            payload = store.get_error(h) or {}
            error = " ".join(str(payload.get("error", "?")).split())
            print(
                f"{short_hash(h)}  attempts={payload.get('attempts', '?'):<3} "
                f"{error[:100]}"
            )
        print(f"{len(hashes)} quarantined config(s) in {store.root}")
        return 0
    records = store.records()
    if args.limit:
        records = records[-args.limit :]
    if not records:
        print(f"(store {store.root} is empty)")
        return 0
    for rec in records:
        cfg = revive_floats(rec.config) if rec.config else {}
        mix = cfg.get("mix") or {}
        mix_str = (
            f"{mix.get('rational', '?')}/{mix.get('altruistic', '?')}"
            f"/{mix.get('irrational', '?')}"
        )
        metrics = "  ".join(
            f"{m}={rec.summary.get(m, float('nan')):.3f}"
            for m in (args.metric or _DEFAULT_METRICS)
            if m in rec.summary
        )
        print(
            f"{short_hash(rec.config_hash)}  scheme={cfg.get('scheme', '?'):<10} "
            f"n={cfg.get('n_agents', '?'):<4} mix={mix_str:<14} "
            f"seed={cfg.get('seed', '?'):<11} {metrics}  "
            f"({rec.wall_time_s:.2f}s)"
        )
    print(f"{len(records)} runs in {store.root}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Aggregate stored runs into a table (never simulates)."""
    store = RunStore(args.store)
    metrics = tuple(args.metric or _DEFAULT_METRICS)
    where = (
        _single_overrides(_parse_set(args.where, allow_dotted=True))
        if args.where
        else {}
    )
    records = store.query(**where) if where else store.records()
    print(render_stored_table(aggregate_stored_runs(records, metrics), metrics))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Aggregate stored telemetry artifacts (never simulates).

    Reads every ``telemetry/<hash>.json`` artifact in the store and
    prints span totals across runs — where does the engine actually
    spend its time on this machine?  Populate artifacts with
    ``repro trace`` first.
    """
    from ..obs import aggregate_telemetry, render_stats_table

    store = RunStore(args.store)
    payloads = [
        payload
        for key in store.telemetry_hashes()
        if (payload := store.get_telemetry(key)) is not None
    ]
    aggregate = aggregate_telemetry(payloads)
    if args.json:
        print(json.dumps(aggregate, indent=2))
    elif not payloads:
        print(f"(no telemetry artifacts in {store.root}; run 'repro trace' first)")
    else:
        print(render_stats_table(aggregate))
        print(f"{len(payloads)} telemetry artifacts in {store.root}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_store_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--store",
        type=Path,
        default=Path("runstore"),
        help="run-store directory (default: ./runstore)",
    )


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    _add_store_arg(p)
    p.add_argument("--no-store", action="store_true", help="do not cache results")
    p.add_argument("--fast", action="store_true", help="reduced horizon")
    p.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="seeds per grid point (default 3; exclusive with --set seed=...)",
    )
    p.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="grid parallelization: serial | thread | process "
        "(default: process)",
    )
    p.add_argument(
        "--backend",
        choices=["numpy", "compiled", "serial", "thread", "process"],
        default=None,
        help="kernel backend executing the hot loops: numpy (reference) "
        "| compiled (JIT; falls back to numpy when unavailable).  "
        "serial|thread|process are accepted as a deprecated spelling "
        "of --executor",
    )
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--batch-replicates",
        action="store_true",
        help="run seed replicates of each grid point as one vectorized "
        "batch (replicate-axis engine) instead of one process per seed",
    )
    p.add_argument(
        "--lane-batch",
        action="store_true",
        help="lane-batch the whole grid: partition it into structurally "
        "compatible batches and vectorize each across the sweep axis "
        "itself (subsumes --batch-replicates)",
    )
    p.add_argument(
        "--lane-width",
        type=int,
        default=None,
        metavar="N",
        help="with --lane-batch: cap lanes per batch (chunk bigger "
        "compatible groups), keeping multi-process fan-out and bounded "
        "per-batch memory on large grids (default: unbounded)",
    )
    p.add_argument(
        "--dispatch",
        choices=["local", "store"],
        default=None,
        help="'store': drain the grid cooperatively with every other "
        "invocation pointed at the same store (lease-claimed task units, "
        "zero duplicate computation); default: classic local execution",
    )
    p.add_argument(
        "--lease-expiry",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --dispatch=store: seconds without a heartbeat before "
        "a crashed peer's task claim is reclaimed (default 30)",
    )
    p.add_argument(
        "--on-error",
        choices=["raise", "quarantine"],
        default="raise",
        dest="on_error",
        help="'quarantine': retry failing configs, then persist an "
        "errors/<hash>.json artifact and keep going (partial results); "
        "default: fail fast on the first worker error",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="STEPS",
        dest="checkpoint_every",
        help="persist a mid-run resume snapshot every N steps so a "
        "retried or re-dispatched task resumes bit-identically instead "
        "of restarting (default 0 = off)",
    )
    p.add_argument(
        "--set",
        action="append",
        metavar="KEY=VAL[,VAL...]",
        help="config override (repeatable); multi-value only for 'sweep'",
    )
    p.add_argument("--metric", action="append", help="summary metric(s) to report")
    p.add_argument("--quiet", action="store_true", help="suppress per-run lines")


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service HTTP API until SIGINT/SIGTERM.

    The always-on front-end over this store (docs/SERVICE.md): clients
    POST scenario specs or config grids, duplicate work dedupes against
    the store and against jobs already in flight, and progress streams
    back over SSE.  Serving and sweeping the same store compose — the
    service refreshes before every admission, so results landed by
    ``repro sweep``/``sweep-worker`` peers are served from cache.
    """
    from ..service import ServiceSettings, serve

    settings = ServiceSettings(
        host=args.host,
        port=args.port,
        store_path=args.store,
        workers=args.workers,
        max_pending=args.max_pending,
        batch_width=args.batch_width,
        dispatch="store" if args.dispatch_store else None,
        checkpoint_every=args.checkpoint_every,
        heartbeat_s=args.heartbeat,
        shutdown_timeout_s=args.shutdown_timeout,
    )
    return serve(settings)


def build_parser() -> argparse.ArgumentParser:
    """Assemble the ``repro`` argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-addressed experiment store and scenario runner.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scenarios", help="list scenario packs and modifiers")
    p.add_argument("--tag", help="only packs/modifiers carrying this tag")
    p.add_argument(
        "--markdown",
        action="store_true",
        help="emit the self-documenting catalog (docs/SCENARIOS.md) to stdout",
    )
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser("run", help="run a scenario pack or composition (cached)")
    p.add_argument(
        "scenario",
        help="pack name or pack+modifier[+modifier...] spec (see 'scenarios')",
    )
    _add_exec_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", help="run an ad-hoc --set grid (cached)")
    _add_exec_args(p)
    p.add_argument(
        "--publish-only",
        action="store_true",
        help="publish the grid manifest into the store and exit without "
        "computing anything; a fleet of 'repro sweep-worker' processes "
        "does the draining",
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "sweep-worker",
        help="join the cooperative drain of grids published in a store",
    )
    p.add_argument("store", type=Path, help="run-store directory to drain")
    p.add_argument(
        "--grid",
        default=None,
        metavar="KEY",
        help="drain only this grid manifest (default: every undrained grid)",
    )
    p.add_argument(
        "--wait-for-grid",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep polling this long for new undrained grids instead of "
        "exiting when none are found",
    )
    p.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="sleep between polls while waiting for grids (default 1.0)",
    )
    p.add_argument(
        "--lease-expiry",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds without a heartbeat before a crashed peer's task "
        "claim is reclaimed (default 30)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="trace each grid drain and persist a telemetry artifact "
        "keyed by the grid (inspect with 'repro stats')",
    )
    p.add_argument(
        "--summary-json",
        action="store_true",
        help="emit a JSON summary (per-grid lease counters, locally "
        "computed config hashes) to stdout on exit",
    )
    p.add_argument(
        "--on-error",
        choices=["raise", "quarantine"],
        default="raise",
        dest="on_error",
        help="'quarantine': retry failing configs, persist an "
        "errors/<hash>.json artifact and treat them as settled so the "
        "drain still completes; default: fail fast",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="STEPS",
        dest="checkpoint_every",
        help="persist a mid-run resume snapshot every N steps; a task "
        "reclaimed from a crashed peer resumes from its latest snapshot "
        "instead of step 0 (default 0 = off)",
    )
    p.add_argument("--quiet", action="store_true", help="suppress per-run lines")
    p.set_defaults(func=cmd_sweep_worker)

    p = sub.add_parser(
        "chaos",
        help="run a scenario under a deterministic fault-injection plan",
    )
    p.add_argument(
        "scenario",
        help="pack name or pack+modifier[+modifier...] spec (see 'scenarios')",
    )
    p.add_argument(
        "--plan",
        required=True,
        metavar="JSON|PATH",
        help="fault plan: inline JSON (starts with '{') or a plan file; "
        "see docs/RESILIENCE.md for the schema",
    )
    _add_exec_args(p)
    p.set_defaults(func=cmd_chaos, on_error="quarantine")

    p = sub.add_parser(
        "serve",
        help="serve the simulation job API over a store (HTTP + SSE)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8321, help="bind port (0 = ephemeral)"
    )
    _add_store_arg(p)
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="compute worker threads (default 2)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=256,
        metavar="N",
        help="queued compute-unit bound; beyond it submissions get "
        "429 + Retry-After (default 256)",
    )
    p.add_argument(
        "--batch-width",
        type=int,
        default=4,
        metavar="N",
        help="max configs one worker claims per sweep batch (default 4)",
    )
    p.add_argument(
        "--dispatch-store",
        action="store_true",
        help="coordinate compute through store leases so external "
        "sweep-workers can co-drain service jobs",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="STEPS",
        dest="checkpoint_every",
        help="persist mid-run checkpoints for service compute every N "
        "steps (0 = off)",
    )
    p.add_argument(
        "--heartbeat",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="SSE keep-alive comment interval (default 15)",
    )
    p.add_argument(
        "--shutdown-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="grace period for running compute on shutdown (default 30)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "profile",
        help="cProfile one pack config and print the hottest functions",
    )
    p.add_argument(
        "scenario",
        help="pack name or pack+modifier[+modifier...] spec (see 'scenarios')",
    )
    p.add_argument("--fast", action="store_true", help="reduced horizon")
    p.add_argument(
        "--sort",
        choices=_PROFILE_SORTS,
        default="cumtime",
        help="pstats sort key (default: cumtime)",
    )
    p.add_argument(
        "--limit",
        type=int,
        default=25,
        help="number of functions to print (default: 25)",
    )
    p.add_argument(
        "--set",
        action="append",
        metavar="KEY=VAL",
        help="config override (repeatable, single-valued)",
    )
    p.add_argument(
        "--backend",
        choices=["numpy", "compiled"],
        default=None,
        help="kernel backend override (warmed before profiling starts)",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "trace",
        help="run one pack config with tracing on; phase-time breakdown",
    )
    p.add_argument(
        "scenario",
        help="pack name or pack+modifier[+modifier...] spec (see 'scenarios')",
    )
    _add_store_arg(p)
    p.add_argument(
        "--no-store",
        action="store_true",
        help="do not persist the run or its telemetry artifact",
    )
    p.add_argument("--fast", action="store_true", help="reduced horizon")
    p.add_argument(
        "--set",
        action="append",
        metavar="KEY=VAL",
        help="config override (repeatable, single-valued)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit breakdown + full telemetry as JSON instead of the table",
    )
    p.add_argument(
        "--jsonl",
        type=Path,
        default=None,
        metavar="PATH",
        help="also export individual span events as JSON lines to PATH",
    )
    p.add_argument(
        "--memory",
        action="store_true",
        help="track per-phase tracemalloc deltas (slower)",
    )
    p.add_argument(
        "--backend",
        choices=["numpy", "compiled"],
        default=None,
        help="kernel backend override (JIT warm-up shows as a "
        "backend/compile span)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "backends",
        help="list kernel backends: availability, versions, warm-up state",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the table as JSON"
    )
    p.set_defaults(func=cmd_backends)

    p = sub.add_parser(
        "verify-backend",
        help="prove the compiled backend bit-identical to numpy "
        "across all schemes",
    )
    p.add_argument(
        "--backend",
        default="compiled",
        help="backend to verify against the numpy reference "
        "(default: compiled)",
    )
    p.add_argument(
        "--steps",
        type=int,
        default=8,
        help="simulation steps per scheme (default: 8)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for the scheme configs (default: 0)",
    )
    p.set_defaults(func=cmd_verify_backend)

    p = sub.add_parser("ls", help="list stored runs (no simulation)")
    _add_store_arg(p)
    p.add_argument("--limit", type=int, default=None, help="show only the last N")
    p.add_argument("--metric", action="append", help="summary metric(s) to show")
    p.add_argument(
        "--errors",
        action="store_true",
        help="list quarantine artifacts (errors/<hash>.json) instead of runs",
    )
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("report", help="aggregate stored runs (no simulation)")
    _add_store_arg(p)
    p.add_argument("--metric", action="append", help="summary metric(s) to report")
    p.add_argument(
        "--where",
        action="append",
        metavar="KEY=VAL",
        help="filter by config field (dotted paths reach nested fields)",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "stats", help="aggregate stored telemetry artifacts (no simulation)"
    )
    _add_store_arg(p)
    p.add_argument(
        "--json", action="store_true", help="emit the aggregate as JSON"
    )
    p.set_defaults(func=cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point: parse ``argv`` and dispatch the subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
