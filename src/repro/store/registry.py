"""Scenario registry: named, discoverable grid-expansion functions.

A *scenario pack* maps a name like ``"churn/whitewash"`` to a function
that expands into a flat list of :class:`SimulationConfig` — the unit the
sweep runner, the run store and the ``repro`` CLI all speak.  Packs cover
the paper's simulation-backed figures (so ``repro run paper/fig3``
regenerates the Figure 3 grid) plus the incentive-design grids the figure
modules cannot express: churn storms, whitewashing pressure, sparse
overlays, heterogeneous capacity and scheme shootouts.

Every builder takes ``(fast, n_seeds, **params)`` and the pack applies an
optional ``overrides`` dict (``SimulationConfig.with_`` keywords) to each
expanded config — that is how tests and the CLI shrink any pack to a
smoke-test horizon without the pack having to anticipate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..agents.population import PopulationMix
from ..sim.config import ScaleConfig, SimulationConfig
from ..sim.rng import spawn_seeds
from ..sim.scenarios import (
    base_config,
    fig3_configs,
    fig6_configs,
    mixture_configs,
    scale_config,
)

__all__ = [
    "ScenarioPack",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "expand_scenario",
]

#: Root seed scenario packs derive per-run seeds from (kept distinct from
#: the experiment modules' root so stored grids never collide with them).
REGISTRY_ROOT_SEED = 20080414

_REGISTRY: dict[str, "ScenarioPack"] = {}


def _seeds(n_seeds: int) -> list[int]:
    if n_seeds < 1:
        raise ValueError("n_seeds must be >= 1")
    return spawn_seeds(REGISTRY_ROOT_SEED, n_seeds)


@dataclass(frozen=True)
class ScenarioPack:
    """A named grid of configs, expandable on demand."""

    name: str
    description: str
    build: Callable[..., list[SimulationConfig]]
    tags: tuple[str, ...] = ()
    default_params: dict[str, Any] = field(default_factory=dict)

    def expand(
        self,
        fast: bool = False,
        n_seeds: int = 3,
        overrides: dict[str, Any] | None = None,
        **params: Any,
    ) -> list[SimulationConfig]:
        """The pack's configs; ``overrides`` patches every config last."""
        merged = dict(self.default_params)
        merged.update(params)
        configs = list(self.build(fast=fast, n_seeds=n_seeds, **merged))
        if overrides:
            configs = [c.with_(**overrides) for c in configs]
        return configs


def register_scenario(
    name: str, description: str, tags: tuple[str, ...] = (), **default_params: Any
):
    """Decorator registering a grid-expansion function under ``name``.

    The decorated builder takes ``(fast, n_seeds, **params)`` and returns
    a list of :class:`~repro.sim.config.SimulationConfig`; registering a
    name twice raises ``ValueError``.  Example::

        from repro.sim.scenarios import base_config
        from repro.store import register_scenario

        @register_scenario("my/degree-sweep", "Overlay degree sweep.",
                           tags=("overlay",))
        def _build(fast, n_seeds, degrees=(4, 8, 16), **_):
            base = base_config(fast, overlay_kind="random")
            return [base.with_(overlay_degree=d, seed=s)
                    for d in degrees for s in range(n_seeds)]

    after which ``repro run my/degree-sweep`` and
    ``expand_scenario("my/degree-sweep")`` both work, and the pack
    composes with any modifier (``my/degree-sweep+churn/storm``).
    """

    def decorate(fn: Callable[..., list[SimulationConfig]]):
        """Wrap the builder in a :class:`ScenarioPack` and register it."""
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioPack(
            name=name,
            description=description,
            build=fn,
            tags=tuple(tags),
            default_params=dict(default_params),
        )
        return fn

    return decorate


def get_scenario(name: str) -> ScenarioPack:
    """Look up a registered pack; ``KeyError`` lists the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names(tag: str | None = None) -> list[str]:
    """Sorted registered pack names, optionally filtered by tag."""
    if tag is None:
        return sorted(_REGISTRY)
    return sorted(n for n, p in _REGISTRY.items() if tag in p.tags)


def iter_scenarios() -> list[ScenarioPack]:
    """All registered packs, sorted by name."""
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]


def expand_scenario(name: str, **kwargs: Any) -> list[SimulationConfig]:
    """Expand a registered pack by name (shorthand for ``get`` + ``expand``)."""
    return get_scenario(name).expand(**kwargs)


# ----------------------------------------------------------------------
# Paper figure packs (the simulation-backed figures; Figures 1/2 are
# analytic curves with no grid to store)
# ----------------------------------------------------------------------
@register_scenario(
    "paper/fig3",
    "Figure 3 grid: all-rational population, incentives on vs off.",
    tags=("paper",),
)
def _paper_fig3(fast: bool, n_seeds: int, **_: Any) -> list[SimulationConfig]:
    with_inc, without = fig3_configs(_seeds(n_seeds), fast=fast)
    return with_inc + without


@register_scenario(
    "paper/fig4",
    "Figure 4/5 mixture grid: altruistic and irrational share 10-90%.",
    tags=("paper",),
)
def _paper_fig4(
    fast: bool,
    n_seeds: int,
    percentages: list[int] | None = None,
    **_: Any,
) -> list[SimulationConfig]:
    seeds = _seeds(n_seeds)
    out: list[SimulationConfig] = []
    for vary in ("altruistic", "irrational"):
        for _pct, cfgs in mixture_configs(vary, seeds, fast=fast, percentages=percentages):
            out.extend(cfgs)
    return out


@register_scenario(
    "paper/fig6",
    "Figure 6 grid: rational share 10-100%, the rest split half/half.",
    tags=("paper",),
)
def _paper_fig6(
    fast: bool,
    n_seeds: int,
    percentages: list[int] | None = None,
    **_: Any,
) -> list[SimulationConfig]:
    out: list[SimulationConfig] = []
    for _pct, cfgs in fig6_configs(_seeds(n_seeds), fast=fast, percentages=percentages):
        out.extend(cfgs)
    return out


@register_scenario(
    "paper/fig7",
    "Figure 7 grid: majority following, altruistic then irrational varied.",
    tags=("paper",),
)
def _paper_fig7(
    fast: bool,
    n_seeds: int,
    percentages: list[int] | None = None,
    **_: Any,
) -> list[SimulationConfig]:
    seeds = _seeds(n_seeds)
    out: list[SimulationConfig] = []
    for vary in ("altruistic", "irrational"):
        for _pct, cfgs in mixture_configs(vary, seeds, fast=fast, percentages=percentages):
            out.extend(cfgs)
    return out


# ----------------------------------------------------------------------
# New grids beyond the paper figures
# ----------------------------------------------------------------------
@register_scenario(
    "churn/storm",
    "Symmetric join/leave churn storms under the reputation scheme.",
    tags=("churn",),
)
def _churn_storm(
    fast: bool,
    n_seeds: int,
    rates: tuple[float, ...] = (0.0, 0.002, 0.01, 0.05),
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    return [
        base.with_(leave_rate=r, join_rate=r, seed=s)
        for r in rates
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "churn/whitewash",
    "Whitewashing pressure: identity-reset rates across incentive schemes.",
    tags=("churn", "schemes"),
)
def _churn_whitewash(
    fast: bool,
    n_seeds: int,
    rates: tuple[float, ...] = (0.0, 0.01, 0.05),
    schemes: tuple[str, ...] = ("reputation", "tft", "karma"),
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    return [
        base.with_(scheme=scheme, whitewash_rate=r, seed=s)
        for scheme in schemes
        for r in rates
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "overlay/sparse",
    "Sparse/clustered overlays: random, small-world and scale-free graphs.",
    tags=("overlay",),
)
def _overlay_sparse(
    fast: bool,
    n_seeds: int,
    kinds: tuple[str, ...] = ("random", "smallworld", "scalefree"),
    degrees: tuple[int, ...] = (4, 8),
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    return [
        base.with_(overlay_kind=kind, overlay_degree=deg, seed=s)
        for kind in kinds
        for deg in degrees
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "capacity/heterogeneous",
    "Heterogeneous upload capacity: log-normal sigma sweep (0 = paper).",
    tags=("capacity",),
)
def _capacity_heterogeneous(
    fast: bool,
    n_seeds: int,
    sigmas: tuple[float, ...] = (0.0, 0.5, 1.0),
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    return [
        base.with_(capacity_sigma=sig, seed=s)
        for sig in sigmas
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "schemes/shootout",
    "Karma vs tit-for-tat vs reputation vs none, pure and mixed populations.",
    tags=("schemes",),
)
def _schemes_shootout(
    fast: bool,
    n_seeds: int,
    schemes: tuple[str, ...] = ("none", "tft", "karma", "reputation"),
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    mixes = (
        PopulationMix(rational=1.0, altruistic=0.0, irrational=0.0),
        PopulationMix(rational=0.7, altruistic=0.15, irrational=0.15),
    )
    return [
        base.with_(scheme=scheme, mix=mix, seed=s)
        for scheme in schemes
        for mix in mixes
        for s in _seeds(n_seeds)
    ]


# ----------------------------------------------------------------------
# Composition root and adversary grids (see repro.store.compose for the
# modifier algebra and the registered compositions built on these)
# ----------------------------------------------------------------------
@register_scenario(
    "base/default",
    "The paper baseline, one config per seed: the canonical composition root.",
    tags=("base",),
)
def _base_default(fast: bool, n_seeds: int, **_: Any) -> list[SimulationConfig]:
    base = base_config(fast)
    return [base.with_(seed=s) for s in _seeds(n_seeds)]


@register_scenario(
    "adversary/collusion",
    "Collusion-ring pressure: ring membership 0-40% under the reputation scheme.",
    tags=("adversary",),
)
def _adversary_collusion(
    fast: bool,
    n_seeds: int,
    fractions: tuple[float, ...] = (0.0, 0.1, 0.25, 0.4),
    ring_size: int = 4,
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    return [
        base.with_(
            collusion_fraction=f, collusion_ring_size=ring_size, seed=s
        )
        for f in fractions
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "adversary/collusion-rings",
    "Ring-size sweep at fixed 25% colluders: many small cliques vs few cartels.",
    tags=("adversary",),
)
def _adversary_collusion_rings(
    fast: bool,
    n_seeds: int,
    ring_sizes: tuple[int, ...] = (2, 4, 8),
    fraction: float = 0.25,
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    return [
        base.with_(collusion_fraction=fraction, collusion_ring_size=k, seed=s)
        for k in ring_sizes
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "adversary/sybil",
    "Sybil/whitewash pressure: identity-discard rates for a 20% attacker share.",
    tags=("adversary", "churn"),
)
def _adversary_sybil(
    fast: bool,
    n_seeds: int,
    rates: tuple[float, ...] = (0.0, 0.01, 0.05),
    fraction: float = 0.2,
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    return [
        base.with_(sybil_fraction=fraction, sybil_rate=r, seed=s)
        for r in rates
        for s in _seeds(n_seeds)
    ]


# ----------------------------------------------------------------------
# Scale packs: the memory-bounded large-N path (sparse incentive ledgers,
# chunked kernels, streaming metrics — see docs/ARCHITECTURE.md)
# ----------------------------------------------------------------------
def _scale_base(
    n_agents: int, fast: bool, fast_agents: int, **overrides
) -> SimulationConfig:
    """Shared shape of the large-N packs: one call into the canonical
    :func:`~repro.sim.scenarios.scale_config` workload (the same recipe
    the nightly memory gate and scale benchmarks measure), with the
    ``fast`` flag shrinking population and horizon for smoke tests."""
    if fast:
        overrides = {"training_steps": 40, "eval_steps": 30, **overrides}
    return scale_config(fast_agents if fast else n_agents, **overrides)


@register_scenario(
    "scale/50k",
    "50 000 peers per run: reputation vs tit-for-tat on the sparse scale path.",
    tags=("scale", "schemes"),
)
def _scale_50k(
    fast: bool,
    n_seeds: int,
    n_agents: int = 50_000,
    schemes: tuple[str, ...] = ("reputation", "tft"),
    **_: Any,
) -> list[SimulationConfig]:
    base = _scale_base(n_agents, fast, fast_agents=2_000)
    return [
        base.with_(scheme=scheme, seed=s)
        for scheme in schemes
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "scale/100k-churn",
    "100 000 peers under join/leave churn and whitewashing, sparse path.",
    tags=("scale", "churn"),
)
def _scale_100k_churn(
    fast: bool,
    n_seeds: int,
    n_agents: int = 100_000,
    rates: tuple[float, ...] = (0.0, 0.01),
    **_: Any,
) -> list[SimulationConfig]:
    base = _scale_base(
        n_agents,
        fast,
        fast_agents=4_000,
        training_steps=60 if not fast else 30,
        eval_steps=40 if not fast else 20,
    )
    return [
        base.with_(leave_rate=r, join_rate=min(10 * r, 0.5), whitewash_rate=r, seed=s)
        for r in rates
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "scale/sparse-shootout",
    "Sparse-vs-dense tit-for-tat ledgers: eviction caps against the exact matrix.",
    tags=("scale", "schemes"),
)
def _scale_sparse_shootout(
    fast: bool,
    n_seeds: int,
    n_agents: int = 2_000,
    caps: tuple[int, ...] = (8, 32, 128),
    **_: Any,
) -> list[SimulationConfig]:
    base = _scale_base(
        n_agents,
        fast,
        fast_agents=400,
        scheme="tft",
        training_steps=300 if not fast else 60,
        eval_steps=200 if not fast else 40,
    )
    dense = base.with_(scale=ScaleConfig(sparse=False))
    return [
        cfg.with_(seed=s)
        for cfg in (
            [dense]
            + [
                base.with_(scale=ScaleConfig(sparse=True, ledger_cap=cap))
                for cap in caps
            ]
        )
        for s in _seeds(n_seeds)
    ]


@register_scenario(
    "adversary/shootout",
    "All four incentive schemes against collusion rings and sybil attackers.",
    tags=("adversary", "schemes"),
)
def _adversary_shootout(
    fast: bool,
    n_seeds: int,
    schemes: tuple[str, ...] = ("none", "tft", "karma", "reputation"),
    **_: Any,
) -> list[SimulationConfig]:
    base = base_config(fast)
    attacks = (
        {"collusion_fraction": 0.25, "collusion_ring_size": 4},
        {"sybil_fraction": 0.2, "sybil_rate": 0.05},
    )
    return [
        base.with_(scheme=scheme, seed=s, **attack)
        for scheme in schemes
        for attack in attacks
        for s in _seeds(n_seeds)
    ]
