"""Deprecated import path for the run store.

The implementation moved to :mod:`repro.store._runstore`; the supported
public surface is the :mod:`repro.api` facade (``repro.api.open_store``)
or the :mod:`repro.store` package root (``from repro.store import
RunStore``).  Importing this module keeps every historical name working
but emits a :class:`DeprecationWarning` once.

The alias is *identity-preserving*: this entry in ``sys.modules`` is
replaced by the real implementation module, so classes compare identical
across the old and new paths (``repro.store.runstore.RunStore is
repro.store.RunStore``).
"""

from __future__ import annotations

import sys
import warnings

from . import _runstore

warnings.warn(
    "repro.store.runstore is deprecated; use repro.api.open_store or "
    "repro.store (the package root re-exports RunStore)",
    DeprecationWarning,
    stacklevel=2,
)

sys.modules[__name__] = _runstore
