"""Experiment store: content-addressed run cache and scenario registry.

* :mod:`repro.store.hashing` — canonical config serialization + sha256
  keys, so a :class:`~repro.sim.config.SimulationConfig` is its own
  cache key;
* :mod:`repro.store._runstore` — durable, corruption-tolerant on-disk
  store of finished runs (JSONL index + per-run payload files);
* :mod:`repro.store.registry` — named scenario packs expanding to config
  grids (paper figures plus churn, overlay, capacity, scheme and
  adversary grids);
* :mod:`repro.store.compose` — the scenario algebra: reusable modifiers
  and ``pack+modifier`` composition with hash-stable results;
* :mod:`repro.store.catalog` — the self-documenting scenario catalog
  rendered into ``docs/SCENARIOS.md``;
* :mod:`repro.store.dispatch` — store-coordinated distributed sweep
  dispatch: lease files, grid manifests and the cooperative drain loop
  behind ``repro sweep --dispatch=store`` / ``repro sweep-worker``;
* :mod:`repro.store.cli` — the unified ``repro`` console command
  (imported on demand; not re-exported here to keep import cost low).
"""

from .compose import (
    ScenarioModifier,
    compose_scenarios,
    composed_pack,
    get_modifier,
    iter_modifiers,
    modifier_names,
    register_composed,
    register_modifier,
    resolve_scenario,
)
from .dispatch import (
    DEFAULT_DISPATCH_LANE_WIDTH,
    DEFAULT_LEASE_EXPIRY_S,
    DispatchStats,
    DispatchTask,
    Lease,
    LeaseBoard,
    LeaseLost,
    StoreDispatcher,
    default_owner_id,
    last_dispatch_stats,
    plan_dispatch_tasks,
    publish_sweep_grid,
    task_key,
)
from .hashing import (
    CONFIG_SCHEMA_VERSION,
    canonical_config_dict,
    canonical_json,
    config_from_dict,
    config_hash,
    short_hash,
)
from .registry import (
    ScenarioPack,
    expand_scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from ._runstore import (
    GRID_SCHEMA_VERSION,
    STORE_SCHEMA_VERSION,
    GridManifest,
    RunStore,
    StoredRun,
)

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "canonical_config_dict",
    "canonical_json",
    "config_from_dict",
    "config_hash",
    "short_hash",
    "DEFAULT_DISPATCH_LANE_WIDTH",
    "DEFAULT_LEASE_EXPIRY_S",
    "DispatchStats",
    "DispatchTask",
    "Lease",
    "LeaseBoard",
    "LeaseLost",
    "StoreDispatcher",
    "default_owner_id",
    "last_dispatch_stats",
    "plan_dispatch_tasks",
    "publish_sweep_grid",
    "task_key",
    "ScenarioPack",
    "ScenarioModifier",
    "compose_scenarios",
    "composed_pack",
    "expand_scenario",
    "get_modifier",
    "get_scenario",
    "iter_modifiers",
    "iter_scenarios",
    "modifier_names",
    "register_composed",
    "register_modifier",
    "register_scenario",
    "resolve_scenario",
    "scenario_names",
    "STORE_SCHEMA_VERSION",
    "GRID_SCHEMA_VERSION",
    "GridManifest",
    "RunStore",
    "StoredRun",
]
