"""Scenario algebra: compose base packs with reusable modifiers.

A :class:`~repro.store.registry.ScenarioPack` is a named grid of
configs; a :class:`ScenarioModifier` is a named, reusable *axis* — a
small list of variants, each a dict of ``SimulationConfig.with_``
overrides (churn profiles, overlay topologies, capacity distributions,
adversary mixes).  Composition is a cross product::

    configs = compose_scenarios("paper/fig3", "churn/storm", "overlay/sparse")

expands the base pack, then multiplies it by every variant of every
modifier, in order.  The same algebra is reachable from the CLI with a
``+``-joined spec::

    repro run paper/fig3+churn/storm+overlay/sparse --fast

**Hash stability.**  A modifier variant is nothing but a ``with_``
override dict — exactly the operation a hand-built grid would apply —
so a composed config is *equal* to its hand-built equivalent and hashes
identically under :func:`repro.store.hashing.config_hash`.  The run
store therefore dedupes across spellings: running the composed pack and
then the hand-built grid (or the same composition written in a
different order of independent modifiers) costs one simulation, not
two.

Field conflicts resolve right-most-wins: a later modifier (or an
explicit ``overrides=``) overwrites fields an earlier one set.
Modifier names live in their own namespace — ``churn/storm`` the
modifier (an axis applicable to any pack) coexists with ``churn/storm``
the pack (a full grid rooted at the paper baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..agents.population import PopulationMix
from ..sim.config import SimulationConfig
from .registry import ScenarioPack, get_scenario, register_scenario

__all__ = [
    "ScenarioModifier",
    "register_modifier",
    "get_modifier",
    "modifier_names",
    "iter_modifiers",
    "compose_scenarios",
    "composed_pack",
    "resolve_scenario",
    "register_composed",
]

_MODIFIERS: dict[str, "ScenarioModifier"] = {}


@dataclass(frozen=True, eq=False)
class ScenarioModifier:
    """A named, reusable scenario axis: one or more override variants.

    Applying a modifier to a config list yields the cross product
    ``variants x configs`` — each variant is a dict of
    ``SimulationConfig.with_`` keyword overrides applied to every config.
    Single-variant modifiers shift a grid; multi-variant modifiers add an
    axis to it.
    """

    name: str
    description: str
    variants: tuple[dict[str, Any], ...]
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        """Reject empty or field-less variant lists early."""
        if not self.variants:
            raise ValueError(f"modifier {self.name!r} needs at least one variant")
        if any(not v for v in self.variants):
            raise ValueError(f"modifier {self.name!r} has an empty variant")

    @property
    def axes(self) -> tuple[str, ...]:
        """The config fields this modifier touches, sorted."""
        fields: set[str] = set()
        for v in self.variants:
            fields.update(v)
        return tuple(sorted(fields))

    def apply(self, configs: list[SimulationConfig]) -> list[SimulationConfig]:
        """Cross-product ``configs`` with this modifier's variants.

        Variant-major order: all configs under the first variant, then
        all under the second, and so on — so seed-replicate groups stay
        contiguous for ``run_sweep(batch_replicates=True)``.
        """
        return [c.with_(**v) for v in self.variants for c in configs]


def register_modifier(
    name: str,
    description: str,
    variants: Iterable[dict[str, Any]],
    tags: tuple[str, ...] = (),
) -> ScenarioModifier:
    """Register a :class:`ScenarioModifier` under ``name`` and return it.

    Raises ``ValueError`` on duplicate names — modifiers, like packs, are
    registered once at import time.
    """
    if name in _MODIFIERS:
        raise ValueError(f"modifier {name!r} already registered")
    mod = ScenarioModifier(
        name=name,
        description=description,
        variants=tuple(dict(v) for v in variants),
        tags=tuple(tags),
    )
    _MODIFIERS[name] = mod
    return mod


def get_modifier(name: str) -> ScenarioModifier:
    """Look up a registered modifier; ``KeyError`` lists the known names."""
    try:
        return _MODIFIERS[name]
    except KeyError:
        known = ", ".join(sorted(_MODIFIERS))
        raise KeyError(f"unknown modifier {name!r}; registered: {known}") from None


def modifier_names(tag: str | None = None) -> list[str]:
    """Sorted registered modifier names, optionally filtered by tag."""
    if tag is None:
        return sorted(_MODIFIERS)
    return sorted(n for n, m in _MODIFIERS.items() if tag in m.tags)


def iter_modifiers() -> list[ScenarioModifier]:
    """All registered modifiers, sorted by name."""
    return [_MODIFIERS[n] for n in sorted(_MODIFIERS)]


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
def compose_scenarios(
    base: str | ScenarioPack,
    *modifiers: str | ScenarioModifier,
    fast: bool = False,
    n_seeds: int = 3,
    overrides: dict[str, Any] | None = None,
    **params: Any,
) -> list[SimulationConfig]:
    """Expand ``base`` and cross-product it with every modifier, in order.

    ``base`` and ``modifiers`` may be registry names or objects; extra
    ``params`` forward to the base pack's builder and ``overrides``
    patches every composed config *last* (after all modifiers), so smoke
    tests can shrink any composition the same way they shrink a pack.

    Example::

        >>> from repro.store import compose_scenarios
        >>> configs = compose_scenarios(
        ...     "base/default", "churn/storm", n_seeds=1,
        ...     overrides={"n_agents": 20, "training_steps": 30, "eval_steps": 20},
        ... )
        >>> [c.leave_rate for c in configs]
        [0.002, 0.01, 0.05]
    """
    pack = base if isinstance(base, ScenarioPack) else get_scenario(base)
    mods = [
        m if isinstance(m, ScenarioModifier) else get_modifier(m)
        for m in modifiers
    ]
    configs = pack.expand(fast=fast, n_seeds=n_seeds, **params)
    for mod in mods:
        configs = mod.apply(configs)
    if overrides:
        configs = [c.with_(**overrides) for c in configs]
    return configs


def composed_pack(spec: str) -> ScenarioPack:
    """Build an on-the-fly :class:`ScenarioPack` from a ``+``-joined spec.

    ``spec`` is ``"<pack>+<modifier>[+<modifier>...]"``; the result
    behaves like any registered pack (same ``expand`` contract), named
    after the spec itself.  Unknown components raise ``KeyError``.
    """
    parts = [p.strip() for p in spec.split("+")]
    if len(parts) < 2 or not all(parts):
        raise ValueError(
            f"composed spec must be '<pack>+<modifier>[+...]', got {spec!r}"
        )
    base = get_scenario(parts[0])
    mods = [get_modifier(name) for name in parts[1:]]
    name = "+".join(parts)

    def build(fast: bool, n_seeds: int, **params: Any) -> list[SimulationConfig]:
        """Expand the parsed composition (closure over base and mods)."""
        return compose_scenarios(
            base, *mods, fast=fast, n_seeds=n_seeds, **params
        )

    tags = {"composed", *base.tags}
    for mod in mods:
        tags.update(mod.tags)
    return ScenarioPack(
        name=name,
        description=(
            f"{base.name} x " + " x ".join(m.name for m in mods) + " (composed)"
        ),
        build=build,
        tags=tuple(sorted(tags)),
        default_params=dict(base.default_params),
    )


def resolve_scenario(name: str) -> ScenarioPack:
    """Resolve a pack name *or* a ``+``-joined composition spec.

    The single entry point the CLI uses: ``"schemes/shootout"`` returns
    the registered pack, ``"paper/fig3+churn/storm"`` returns an
    equivalent on-the-fly composed pack.
    """
    if "+" in name:
        return composed_pack(name)
    return get_scenario(name)


def register_composed(
    name: str,
    description: str,
    base: str,
    modifiers: tuple[str, ...],
    tags: tuple[str, ...] = (),
) -> None:
    """Register a named pack defined as ``base`` composed with ``modifiers``.

    The composition is re-resolved at every expansion, so it always
    reflects the current registries; the pack carries a ``composed`` tag
    plus any explicit ``tags``.
    """

    def build(fast: bool, n_seeds: int, **params: Any) -> list[SimulationConfig]:
        """Re-resolve and expand the named composition at call time."""
        return compose_scenarios(
            base, *modifiers, fast=fast, n_seeds=n_seeds, **params
        )

    register_scenario(name, description, tags=tuple(tags) + ("composed",))(build)


# ----------------------------------------------------------------------
# Built-in modifiers: churn profiles, overlay topologies, capacity
# distributions, adversary mixes, scheme axes
# ----------------------------------------------------------------------
register_modifier(
    "churn/storm",
    "Symmetric join/leave churn axis: rates 0.002, 0.01 and 0.05.",
    [{"leave_rate": r, "join_rate": r} for r in (0.002, 0.01, 0.05)],
    tags=("churn",),
)
register_modifier(
    "churn/spike",
    "A single heavy churn point: leave = join = 0.05.",
    [{"leave_rate": 0.05, "join_rate": 0.05}],
    tags=("churn",),
)
register_modifier(
    "churn/whitewash",
    "Whitewashing axis: identity-reset rates 0.01 and 0.05.",
    [{"whitewash_rate": r} for r in (0.01, 0.05)],
    tags=("churn",),
)
register_modifier(
    "overlay/sparse",
    "Sparse random overlay: Erdos-Renyi at average degree 4.",
    [{"overlay_kind": "random", "overlay_degree": 4}],
    tags=("overlay",),
)
register_modifier(
    "overlay/smallworld",
    "Watts-Strogatz small-world overlay at degree 8.",
    [{"overlay_kind": "smallworld", "overlay_degree": 8}],
    tags=("overlay",),
)
register_modifier(
    "overlay/scalefree",
    "Barabasi-Albert scale-free overlay at degree 8.",
    [{"overlay_kind": "scalefree", "overlay_degree": 8}],
    tags=("overlay",),
)
register_modifier(
    "capacity/heterogeneous",
    "Heterogeneous upload capacity axis: log-normal sigma 0.5 and 1.0.",
    [{"capacity_sigma": s} for s in (0.5, 1.0)],
    tags=("capacity",),
)
register_modifier(
    "capacity/skewed",
    "A single heavily skewed capacity point: log-normal sigma 1.0.",
    [{"capacity_sigma": 1.0}],
    tags=("capacity",),
)
register_modifier(
    "adversary/collusion",
    "Collusion rings: 25% of peers in rings of 4 serving/upvoting only "
    "each other.",
    [{"collusion_fraction": 0.25, "collusion_ring_size": 4}],
    tags=("adversary",),
)
register_modifier(
    "adversary/sybil",
    "Sybil attackers: 20% of peers discard their identity at rate 0.05.",
    [{"sybil_fraction": 0.2, "sybil_rate": 0.05}],
    tags=("adversary",),
)
register_modifier(
    "schemes/all",
    "Incentive-scheme axis: none, tit-for-tat, karma and reputation.",
    [{"scheme": s} for s in ("none", "tft", "karma", "reputation")],
    tags=("schemes",),
)
register_modifier(
    "population/mixed",
    "A mixed population point: 70% rational, 15% altruistic, 15% irrational.",
    [{"mix": PopulationMix(rational=0.7, altruistic=0.15, irrational=0.15)}],
    tags=("population",),
)


# ----------------------------------------------------------------------
# Registered compositions: the combined-stress grids the paper never ran
# ----------------------------------------------------------------------
register_composed(
    "adversary/sybil-storm",
    "Sybil attackers under a churn-storm axis: identity resets compound "
    "with population turnover.",
    "base/default",
    ("adversary/sybil", "churn/storm"),
    tags=("adversary", "churn"),
)
register_composed(
    "stress/kitchen-sink",
    "Everything at once: heavy churn, sparse overlay, skewed capacity, "
    "collusion rings and sybil attackers on the paper baseline.",
    "base/default",
    (
        "churn/spike",
        "overlay/sparse",
        "capacity/skewed",
        "adversary/collusion",
        "adversary/sybil",
    ),
    tags=("stress", "adversary", "churn", "overlay", "capacity"),
)
register_composed(
    "stress/churn-overlay",
    "Churn-storm axis on a sparse random overlay: rejoining peers must "
    "re-earn standing with few neighbours.",
    "base/default",
    ("churn/storm", "overlay/sparse"),
    tags=("stress", "churn", "overlay"),
)
register_composed(
    "stress/capacity-churn",
    "Heterogeneous-capacity axis crossed with the churn-storm axis.",
    "base/default",
    ("capacity/heterogeneous", "churn/storm"),
    tags=("stress", "capacity", "churn"),
)
register_composed(
    "schemes/adversarial",
    "All four incentive schemes against collusion rings: which scheme's "
    "service differentiation resists ballot stuffing?",
    "base/default",
    ("schemes/all", "adversary/collusion"),
    tags=("schemes", "adversary"),
)
