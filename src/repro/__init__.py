"""repro — reproduction of Bocek et al., "Game theoretical analysis of
incentives for large-scale, fully decentralized collaboration networks"
(IEEE IPDPS 2008).

Subpackages
-----------
``repro.core``
    The paper's contribution: reputation functions, contribution ledgers,
    service differentiation, utility functions, punishment, and the
    incentive-scheme facade (plus the no-incentive baseline).
``repro.network``
    P2P collaboration-network substrate: peers, articles with voting,
    bandwidth settlement, overlay topologies, churn.
``repro.trust``
    Reputation propagation (assumed by the paper, implemented here):
    EigenTrust, max-flow trust, private/shared histories.
``repro.gametheory``
    Repeated Prisoner's Dilemma, TFT and friends, tournaments, replicator
    dynamics and a mean-field analysis of the sharing game.
``repro.agents``
    Vectorized tabular Q-learning with Boltzmann exploration, behaviour
    policies, population mixes.
``repro.sim``
    The time-stepped engine, configs, metrics, seeded RNG streams and the
    parallel sweep runner.
``repro.analysis``
    Statistics, series utilities, ASCII plots and figure containers.
``repro.experiments``
    One driver per paper figure (1-7) plus future-work ablations; also a
    CLI (``repro-experiments``).

Quickstart
----------
>>> from repro.sim import base_config, run_simulation
>>> result = run_simulation(base_config(fast=True))
>>> 0.0 <= result.summary["shared_bandwidth"] <= 1.0
True
"""

__version__ = "1.0.0"

from . import agents, analysis, core, gametheory, network, sim, trust
from . import api

__all__ = [
    "api",
    "agents",
    "analysis",
    "core",
    "gametheory",
    "network",
    "sim",
    "trust",
    "__version__",
]
