"""Analysis: statistics, series utilities, ASCII plots, figure containers."""

from .asciiplot import bar_chart, grouped_bars, line_plot
from .figures import FigureData
from .report import load_results, render_markdown_table, reproduction_table
from .series import converged, downsample, moving_average, tail_mean
from .stats import MeanCI, bootstrap_ci, mean_ci, relative_change, welch_t_test

__all__ = [
    "bar_chart",
    "grouped_bars",
    "line_plot",
    "FigureData",
    "load_results",
    "render_markdown_table",
    "reproduction_table",
    "converged",
    "downsample",
    "moving_average",
    "tail_mean",
    "MeanCI",
    "bootstrap_ci",
    "mean_ci",
    "relative_change",
    "welch_t_test",
]
