"""Summary statistics across replicated runs."""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

__all__ = ["MeanCI", "mean_ci", "bootstrap_ci", "relative_change", "welch_t_test"]


@dataclass(frozen=True)
class MeanCI:
    """Mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4f} ± {self.half_width:.4f} (n={self.n})"


def mean_ci(values: np.ndarray | list[float], z: float = 1.96) -> MeanCI:
    """Normal-approximation CI of the mean (ddof=1); NaNs are dropped."""
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    n = arr.size
    if n == 0:
        return MeanCI(mean=float("nan"), half_width=float("nan"), n=0)
    if n == 1:
        return MeanCI(mean=float(arr[0]), half_width=0.0, n=1)
    sem = float(arr.std(ddof=1)) / np.sqrt(n)
    return MeanCI(mean=float(arr.mean()), half_width=z * sem, n=n)


def bootstrap_ci(
    values: np.ndarray | list[float],
    rng: np.random.Generator,
    n_resamples: int = 2000,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Percentile bootstrap CI of the mean (vectorized resampling)."""
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return float("nan"), float("nan")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    lo = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, lo)),
        float(np.quantile(means, 1.0 - lo)),
    )


def relative_change(baseline: float, treatment: float) -> float:
    """(treatment - baseline) / baseline; NaN for a zero baseline."""
    if baseline == 0:
        return float("nan")
    return (treatment - baseline) / baseline


def welch_t_test(
    a: np.ndarray | list[float], b: np.ndarray | list[float]
) -> tuple[float, float]:
    """Welch's unequal-variance t-test: returns (t statistic, p value).

    Used by EXPERIMENTS.md to attach significance to the incentive-vs-
    baseline comparisons; NaNs are dropped.
    """
    from scipy import stats as sps

    xa = np.asarray(a, dtype=np.float64)
    xb = np.asarray(b, dtype=np.float64)
    xa = xa[~np.isnan(xa)]
    xb = xb[~np.isnan(xb)]
    if xa.size < 2 or xb.size < 2:
        return float("nan"), float("nan")
    with warnings.catch_warnings():
        # Near-identical samples trip scipy's catastrophic-cancellation
        # note; the resulting p ~ 1 is exactly the right answer there.
        warnings.filterwarnings(
            "ignore", message=".*catastrophic cancellation.*", category=RuntimeWarning
        )
        t, p = sps.ttest_ind(xa, xb, equal_var=False)
    return float(t), float(p)
