"""Time-series helpers for per-step metric traces."""

from __future__ import annotations

import numpy as np

__all__ = ["moving_average", "tail_mean", "downsample", "converged"]


def moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average, same length, ragged start averaged short.

    Implemented with a cumulative sum (O(n), no Python loop).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    x = np.asarray(series, dtype=np.float64)
    if x.size == 0:
        return x.copy()
    csum = np.cumsum(x)
    out = np.empty_like(x)
    w = min(window, x.size)
    out[:w] = csum[:w] / np.arange(1, w + 1)
    if x.size > w:
        out[w:] = (csum[w:] - csum[:-w]) / w
    return out


def tail_mean(series: np.ndarray, fraction: float = 0.5) -> float:
    """Mean of the trailing ``fraction`` of a series."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    x = np.asarray(series, dtype=np.float64)
    if x.size == 0:
        return float("nan")
    start = int(np.floor(x.size * (1.0 - fraction)))
    return float(x[start:].mean())


def downsample(series: np.ndarray, n_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Bucket-mean downsampling to at most ``n_points`` (x, y) pairs."""
    if n_points < 1:
        raise ValueError("n_points must be >= 1")
    x = np.asarray(series, dtype=np.float64)
    if x.size <= n_points:
        return np.arange(x.size, dtype=np.float64), x.copy()
    edges = np.linspace(0, x.size, n_points + 1).astype(np.int64)
    centers = (edges[:-1] + edges[1:]) / 2.0
    sums = np.add.reduceat(x, edges[:-1])
    counts = np.diff(edges)
    return centers, sums / counts


def converged(
    series: np.ndarray, window: int = 200, tolerance: float = 0.05
) -> bool:
    """Heuristic: is the series flat over its last two windows?

    Compares the means of the last and second-to-last windows against
    ``tolerance`` (absolute if the scale is tiny, else relative).
    """
    x = np.asarray(series, dtype=np.float64)
    if x.size < 2 * window:
        return False
    a = float(x[-2 * window : -window].mean())
    b = float(x[-window:].mean())
    scale = max(abs(a), abs(b))
    if scale < 1e-9:
        return True
    return abs(b - a) / scale <= tolerance
