"""FigureData: the uniform container every experiment produces.

One figure = an x-axis, one or more named series (with optional CI
half-widths), free-form metadata and a rendering hint.  The experiment
runner renders it to the terminal and writes a CSV next to it, so each of
the paper's figures has a machine-readable regeneration artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .asciiplot import bar_chart, line_plot

__all__ = ["FigureData"]


@dataclass
class FigureData:
    """Data behind one reproduced figure."""

    name: str
    title: str
    x_label: str
    y_label: str
    x: np.ndarray
    series: dict[str, np.ndarray]
    errors: dict[str, np.ndarray] = field(default_factory=dict)
    meta: dict[str, float | int | str] = field(default_factory=dict)
    kind: str = "line"  # "line" | "bar"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.series = {k: np.asarray(v, dtype=np.float64) for k, v in self.series.items()}
        self.errors = {k: np.asarray(v, dtype=np.float64) for k, v in self.errors.items()}
        for k, v in self.series.items():
            if v.shape != self.x.shape:
                raise ValueError(f"series {k!r} does not align with x")
        for k, v in self.errors.items():
            if k not in self.series or v.shape != self.x.shape:
                raise ValueError(f"errors {k!r} do not align")

    # ------------------------------------------------------------------
    def render(self, width: int = 64, height: int = 14) -> str:
        """ASCII rendition (line panel or bar chart depending on kind)."""
        header = f"== {self.name}: {self.title} =="
        if self.kind == "bar":
            # One bar per (x, series) pair.
            labels, values = [], []
            for i, xv in enumerate(self.x):
                for sname, svals in self.series.items():
                    labels.append(f"{self.x_label}={xv:g} {sname}")
                    values.append(svals[i])
            body = bar_chart(labels, np.asarray(values), width=width)
        else:
            body = line_plot(
                self.x,
                self.series,
                width=width,
                height=height,
                title=f"y: {self.y_label}  x: {self.x_label}",
            )
        meta = ", ".join(f"{k}={v}" for k, v in self.meta.items())
        parts = [header, body]
        if meta:
            parts.append(f"[{meta}]")
        return "\n".join(parts)

    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> Path:
        """Write ``x, series..., err_series...`` rows."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        cols = [self.x_label] + list(self.series) + [f"err_{k}" for k in self.errors]
        rows = [",".join(cols)]
        for i in range(self.x.size):
            vals = [f"{self.x[i]:.6g}"]
            vals += [f"{self.series[k][i]:.6g}" for k in self.series]
            vals += [f"{self.errors[k][i]:.6g}" for k in self.errors]
            rows.append(",".join(vals))
        path.write_text("\n".join(rows) + "\n")
        return path

    def to_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": self.name,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x": self.x.tolist(),
            "series": {k: v.tolist() for k, v in self.series.items()},
            "errors": {k: v.tolist() for k, v in self.errors.items()},
            "meta": self.meta,
            "kind": self.kind,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "FigureData":
        payload = json.loads(Path(path).read_text())
        return cls(
            name=payload["name"],
            title=payload["title"],
            x_label=payload["x_label"],
            y_label=payload["y_label"],
            x=np.asarray(payload["x"]),
            series={k: np.asarray(v) for k, v in payload["series"].items()},
            errors={k: np.asarray(v) for k, v in payload.get("errors", {}).items()},
            meta=payload.get("meta", {}),
            kind=payload.get("kind", "line"),
        )
