"""Terminal plots: line charts and bar charts rendered as text.

Matplotlib is not part of this project's (offline) dependency set, so the
experiment drivers render each paper figure as an ASCII panel plus a CSV
file.  Good enough to eyeball every curve's shape against the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["line_plot", "bar_chart", "grouped_bars"]


def line_plot(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_range: tuple[float, float] | None = None,
) -> str:
    """Multi-series scatter/line panel with one marker letter per series."""
    x = np.asarray(x, dtype=np.float64)
    if not series:
        raise ValueError("need at least one series")
    markers = "oxv*+#@%"
    ys = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    for name, y in ys.items():
        if y.shape != x.shape:
            raise ValueError(f"series {name!r} does not align with x")
    all_y = np.concatenate([v[~np.isnan(v)] for v in ys.values()])
    if all_y.size == 0:
        return f"{title}\n(no data)"
    if y_range is None:
        y_lo, y_hi = float(all_y.min()), float(all_y.max())
        if y_hi - y_lo < 1e-12:
            y_lo -= 0.5
            y_hi += 0.5
    else:
        y_lo, y_hi = y_range
    x_lo, x_hi = float(x.min()), float(x.max())
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, y) in enumerate(ys.items()):
        m = markers[si % len(markers)]
        for xv, yv in zip(x, y):
            if np.isnan(yv):
                continue
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = m

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(ys)
    )
    lines.append(legend)
    lines.append(f"{y_hi:10.4f} +" + "-" * width + "+")
    for r, row in enumerate(grid):
        label = " " * 10
        lines.append(f"{label} |" + "".join(row) + "|")
    lines.append(f"{y_lo:10.4f} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{x_lo:<10.4g}" + " " * max(0, width - 20) + f"{x_hi:>10.4g}")
    return "\n".join(lines)


def bar_chart(
    labels: list[str],
    values: np.ndarray | list[float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.4f}",
) -> str:
    """Horizontal bar chart; bar lengths scale to the max value."""
    vals = np.asarray(values, dtype=np.float64)
    if len(labels) != vals.size:
        raise ValueError("labels and values must align")
    lines = [title] if title else []
    finite = np.abs(vals[~np.isnan(vals)])
    vmax = float(finite.max()) if finite.size else 0.0
    label_w = max((len(lb) for lb in labels), default=0)
    for lb, v in zip(labels, vals):
        if np.isnan(v):
            bar = "(nan)"
        else:
            n = 0 if vmax == 0 else int(round(abs(v) / vmax * width))
            bar = "#" * n
        lines.append(f"{lb:<{label_w}} | {bar} {fmt.format(v)}")
    return "\n".join(lines)


def grouped_bars(
    group_labels: list[str],
    series: dict[str, np.ndarray | list[float]],
    width: int = 40,
    title: str = "",
    fmt: str = "{:.4f}",
) -> str:
    """Bars per group and series — used for the stacked-bar paper figures."""
    lines = [title] if title else []
    arrs = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    for name, arr in arrs.items():
        if arr.size != len(group_labels):
            raise ValueError(f"series {name!r} does not match group count")
    all_vals = np.concatenate(list(arrs.values()))
    all_finite = np.abs(all_vals[~np.isnan(all_vals)])
    vmax = float(all_finite.max()) if all_finite.size else 0.0
    label_w = max(
        max((len(lb) for lb in group_labels), default=0),
        max((len(k) for k in arrs), default=0),
    )
    for gi, gl in enumerate(group_labels):
        lines.append(f"{gl}:")
        for name, arr in arrs.items():
            v = arr[gi]
            if np.isnan(v):
                bar = "(nan)"
            else:
                n = 0 if vmax == 0 else int(round(abs(v) / vmax * width))
                bar = "#" * n
            lines.append(f"  {name:<{label_w}} | {bar} {fmt.format(v)}")
    return "\n".join(lines)
