"""Reproduction report: paper-vs-measured table from result artifacts.

Reads the ``results/<name>.json`` files the experiment runner writes and
renders the EXPERIMENTS.md comparison table, so the record of what was
measured regenerates mechanically from the same artifacts the figures use.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .figures import FigureData

__all__ = ["load_results", "reproduction_table", "render_markdown_table"]


def load_results(results_dir: str | Path) -> dict[str, FigureData]:
    """All figure artifacts in a results directory, keyed by name."""
    out: dict[str, FigureData] = {}
    for path in sorted(Path(results_dir).glob("*.json")):
        fig = FigureData.from_json(path)
        out[fig.name] = fig
    return out


def _fmt(value: float | None, pattern: str = "{:.3f}") -> str:
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "—"
    return pattern.format(value)


def reproduction_table(figures: dict[str, FigureData]) -> list[dict[str, str]]:
    """One row per paper figure: claim, paper value, measured value, verdict."""
    rows: list[dict[str, str]] = []

    def add(figure: str, claim: str, paper: str, measured: str, holds: bool | None):
        rows.append(
            {
                "figure": figure,
                "claim": claim,
                "paper": paper,
                "measured": measured,
                "holds": {True: "yes", False: "NO", None: "n/a"}[holds],
            }
        )

    if "fig1" in figures:
        f = figures["fig1"]
        starts = [float(v[0]) for v in f.series.values()]
        add(
            "Fig. 1",
            "logistic reputation, R(0)=0.05, monotone to 1",
            "R(0)=0.05",
            f"R(0)={_fmt(float(np.mean(starts)))}",
            bool(abs(np.mean(starts) - 0.05) < 1e-9),
        )
    if "fig2_T1000" in figures:
        f = figures["fig2_T1000"]
        spread = float(np.ptp(f.series["p"]))
        add(
            "Fig. 2",
            "Boltzmann: T=1000 near-uniform",
            "p ~= 0.1 each",
            f"max spread {_fmt(spread, '{:.4f}')}",
            bool(spread < 0.01),
        )
    if "fig3" in figures:
        f = figures["fig3"]
        ga = float(f.meta.get("gain_articles", float("nan")))
        gb = float(f.meta.get("gain_bandwidth", float("nan")))
        add(
            "Fig. 3",
            "incentives raise sharing (articles / bandwidth)",
            "+8% / +11%",
            f"{ga:+.1%} / {gb:+.1%}",
            bool(ga > 0 and gb > 0),
        )
    if "fig4_files" in figures:
        f = figures["fig4_files"]
        alt = f.series["altruistic"]
        irr = f.series["irrational"]
        add(
            "Fig. 4",
            "network sharing ~linear up with altruists, down with irrationals",
            "monotone, ~linear",
            f"altruistic {alt[0]:.2f}->{alt[-1]:.2f}, "
            f"irrational {irr[0]:.2f}->{irr[-1]:.2f}",
            bool(alt[-1] > alt[0] and irr[-1] < irr[0]),
        )
    if "fig5_bandwidth" in figures:
        f = figures["fig5_bandwidth"]
        band = np.concatenate(list(f.series.values()))
        spread = float(np.nanmax(band) - np.nanmin(band))
        add(
            "Fig. 5",
            "rational sharing insensitive to the mix",
            "flat band",
            f"bandwidth band width {_fmt(spread)}",
            bool(spread < 0.15),
        )
    if "fig6" in figures:
        f = figures["fig6"]
        std = f.series.get("constructive_std")
        mean_std = float(np.nanmean(std)) if std is not None else float("nan")
        add(
            "Fig. 6",
            "balanced camps: outcome random per run",
            "bimodal/random",
            f"across-seed std {_fmt(mean_std)}",
            bool(mean_std > 0.08),
        )
    if "fig7_altruistic" in figures and "fig7_irrational" in figures:
        hi_alt = float(figures["fig7_altruistic"].series["constructive"][-1])
        hi_irr = float(figures["fig7_irrational"].series["constructive"][-1])
        add(
            "Fig. 7",
            "rational agents adopt the majority behaviour",
            "constructive w/ altruists, destructive w/ vandals",
            f"90% altruists -> {hi_alt:.2f} constructive; "
            f"90% irrationals -> {hi_irr:.2f}",
            bool(hi_alt > 0.6 and hi_irr < 0.4),
        )
    return rows


def render_markdown_table(rows: list[dict[str, str]]) -> str:
    header = "| Figure | Claim | Paper | Measured | Holds |"
    sep = "|---|---|---|---|---|"
    body = [
        f"| {r['figure']} | {r['claim']} | {r['paper']} | {r['measured']} | {r['holds']} |"
        for r in rows
    ]
    return "\n".join([header, sep, *body])
