"""Reproduction report: paper-vs-measured table from result artifacts.

Reads the ``results/<name>.json`` files the experiment runner writes and
renders the EXPERIMENTS.md comparison table, so the record of what was
measured regenerates mechanically from the same artifacts the figures use.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .figures import FigureData
from .stats import mean_ci

__all__ = [
    "load_results",
    "reproduction_table",
    "render_markdown_table",
    "aggregate_stored_runs",
    "render_stored_table",
]


def load_results(results_dir: str | Path) -> dict[str, FigureData]:
    """All figure artifacts in a results directory, keyed by name."""
    out: dict[str, FigureData] = {}
    for path in sorted(Path(results_dir).glob("*.json")):
        fig = FigureData.from_json(path)
        out[fig.name] = fig
    return out


def _fmt(value: float | None, pattern: str = "{:.3f}") -> str:
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "—"
    return pattern.format(value)


def reproduction_table(figures: dict[str, FigureData]) -> list[dict[str, str]]:
    """One row per paper figure: claim, paper value, measured value, verdict."""
    rows: list[dict[str, str]] = []

    def add(figure: str, claim: str, paper: str, measured: str, holds: bool | None):
        rows.append(
            {
                "figure": figure,
                "claim": claim,
                "paper": paper,
                "measured": measured,
                "holds": {True: "yes", False: "NO", None: "n/a"}[holds],
            }
        )

    if "fig1" in figures:
        f = figures["fig1"]
        starts = [float(v[0]) for v in f.series.values()]
        add(
            "Fig. 1",
            "logistic reputation, R(0)=0.05, monotone to 1",
            "R(0)=0.05",
            f"R(0)={_fmt(float(np.mean(starts)))}",
            bool(abs(np.mean(starts) - 0.05) < 1e-9),
        )
    if "fig2_T1000" in figures:
        f = figures["fig2_T1000"]
        spread = float(np.ptp(f.series["p"]))
        add(
            "Fig. 2",
            "Boltzmann: T=1000 near-uniform",
            "p ~= 0.1 each",
            f"max spread {_fmt(spread, '{:.4f}')}",
            bool(spread < 0.01),
        )
    if "fig3" in figures:
        f = figures["fig3"]
        ga = float(f.meta.get("gain_articles", float("nan")))
        gb = float(f.meta.get("gain_bandwidth", float("nan")))
        add(
            "Fig. 3",
            "incentives raise sharing (articles / bandwidth)",
            "+8% / +11%",
            f"{ga:+.1%} / {gb:+.1%}",
            bool(ga > 0 and gb > 0),
        )
    if "fig4_files" in figures:
        f = figures["fig4_files"]
        alt = f.series["altruistic"]
        irr = f.series["irrational"]
        add(
            "Fig. 4",
            "network sharing ~linear up with altruists, down with irrationals",
            "monotone, ~linear",
            f"altruistic {alt[0]:.2f}->{alt[-1]:.2f}, "
            f"irrational {irr[0]:.2f}->{irr[-1]:.2f}",
            bool(alt[-1] > alt[0] and irr[-1] < irr[0]),
        )
    if "fig5_bandwidth" in figures:
        f = figures["fig5_bandwidth"]
        band = np.concatenate(list(f.series.values()))
        spread = float(np.nanmax(band) - np.nanmin(band))
        add(
            "Fig. 5",
            "rational sharing insensitive to the mix",
            "flat band",
            f"bandwidth band width {_fmt(spread)}",
            bool(spread < 0.15),
        )
    if "fig6" in figures:
        f = figures["fig6"]
        std = f.series.get("constructive_std")
        mean_std = float(np.nanmean(std)) if std is not None else float("nan")
        add(
            "Fig. 6",
            "balanced camps: outcome random per run",
            "bimodal/random",
            f"across-seed std {_fmt(mean_std)}",
            bool(mean_std > 0.08),
        )
    if "fig7_altruistic" in figures and "fig7_irrational" in figures:
        hi_alt = float(figures["fig7_altruistic"].series["constructive"][-1])
        hi_irr = float(figures["fig7_irrational"].series["constructive"][-1])
        add(
            "Fig. 7",
            "rational agents adopt the majority behaviour",
            "constructive w/ altruists, destructive w/ vandals",
            f"90% altruists -> {hi_alt:.2f} constructive; "
            f"90% irrationals -> {hi_irr:.2f}",
            bool(hi_alt > 0.6 and hi_irr < 0.4),
        )
    return rows


def render_markdown_table(rows: list[dict[str, str]]) -> str:
    header = "| Figure | Claim | Paper | Measured | Holds |"
    sep = "|---|---|---|---|---|"
    body = [
        f"| {r['figure']} | {r['claim']} | {r['paper']} | {r['measured']} | {r['holds']} |"
        for r in rows
    ]
    return "\n".join([header, sep, *body])


# ----------------------------------------------------------------------
# Stored-run reports (the `repro report` command)
# ----------------------------------------------------------------------
def _flatten(config: dict, prefix: str = "") -> dict[str, object]:
    out: dict[str, object] = {}
    for key, value in config.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{dotted}."))
        else:
            out[dotted] = value
    return out


def aggregate_stored_runs(
    records: list,
    metrics: tuple[str, ...] = ("shared_files", "shared_bandwidth"),
) -> list[dict]:
    """Group stored runs by config-minus-seed and aggregate each metric.

    ``records`` are :class:`repro.store.StoredRun`-shaped objects (need
    ``.config`` as a nested dict and ``.summary``); records without a
    config payload are skipped.  Each returned row carries a ``label``
    built from the config fields that actually vary across groups, the
    seed count ``n``, and ``(mean, half_width)`` per metric.
    """
    from ..store.hashing import canonical_json, revive_floats

    groups: dict[str, list] = {}
    flats: dict[str, dict[str, object]] = {}
    for rec in records:
        if rec.config is None:
            continue
        flat = _flatten(rec.config)
        flat.pop("seed", None)
        key = canonical_json(flat)
        groups.setdefault(key, []).append(rec)
        flats[key] = flat

    # Label each group by the fields that distinguish it from the others.
    varying: list[str] = []
    if len(flats) > 1:
        all_keys = sorted({k for flat in flats.values() for k in flat})
        for k in all_keys:
            seen = {canonical_json(flat.get(k)) for flat in flats.values()}
            if len(seen) > 1:
                varying.append(k)

    rows: list[dict] = []
    for key in sorted(groups):
        recs = groups[key]
        flat = flats[key]
        if varying:
            label = " ".join(
                f"{k}={revive_floats(flat.get(k))}" for k in varying
            )
        else:
            label = "base"
        row: dict = {"label": label, "n": len(recs)}
        for metric in metrics:
            values = [r.summary.get(metric, float("nan")) for r in recs]
            ci = mean_ci(np.asarray(values, dtype=np.float64))
            row[metric] = ci.mean
            row[f"{metric}_hw"] = ci.half_width
        rows.append(row)
    return rows


def render_stored_table(
    rows: list[dict],
    metrics: tuple[str, ...] = ("shared_files", "shared_bandwidth"),
) -> str:
    """Plain-text table for :func:`aggregate_stored_runs` rows."""
    if not rows:
        return "(no stored runs)"
    headers = ["group", "n", *metrics]
    cells = [
        [
            str(row["label"]),
            str(row["n"]),
            *(
                f"{_fmt(row[m])} ± {_fmt(row.get(f'{m}_hw'))}"
                for m in metrics
            ),
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(c[i]) for c in cells))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    return "\n".join(lines)
