"""Mid-run snapshots: crash a worker, resume bit-identically.

A *snapshot* is the full pickled :class:`repro.sim.state.SimState` of an
in-flight task plus its protocol position, persisted under the store
root at ``checkpoints/<key>.ckpt``.  Because the state carries every
RNG's stream position (``BufferedRNG`` pickles its buffer and cursor),
a resumed task consumes the exact random stream an uninterrupted run
would — final metrics are **bit-identical**, which is what lets resumed
results share the content-addressed store with ordinary ones.

This is deliberately distinct from :mod:`repro.sim.checkpoint` (the
schema-versioned ``.npz`` of *learned artifacts* — Q-matrices, ledgers —
meant to outlive code changes).  A resume snapshot is ephemeral
scaffolding for one task: written every ``checkpoint_every`` steps,
validated against the exact config set, deleted the moment the task's
results land, and silently discarded if it does not decode.

Keys use the dispatcher's ``task_key`` recipe (sha256 over the sorted
config hashes), so a worker that reclaims a dead peer's lease derives
the same key from the same missing-config set and finds the corpse's
latest snapshot without any extra coordination.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import zlib
from pathlib import Path
from typing import Any

from .faults import InjectedFault, fault_point, raise_for_spec, torn_bytes

__all__ = [
    "SNAPSHOT_VERSION",
    "SNAPSHOT_DIR",
    "snapshot_key",
    "encode_snapshot",
    "decode_snapshot",
    "SnapshotStore",
]

SNAPSHOT_VERSION = 1
SNAPSHOT_DIR = "checkpoints"
_MAGIC = b"RSNP"


def snapshot_key(config_hashes) -> str:
    """Same recipe as :func:`repro.store.dispatch.task_key` (sha256 over
    the sorted hash set) — duplicated here to keep this package importable
    from the store layer without a cycle; ``tests/resilience`` pins the
    equality."""
    digest = hashlib.sha256()
    for h in sorted(config_hashes):
        digest.update(h.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def encode_snapshot(state: Any, steps_done: int, config_hashes: list[str]) -> bytes:
    """Pickle + compress one in-flight task.

    ``steps_done`` counts completed protocol steps, with the invariant
    that the phase-boundary reputation reset due *at* that count has
    already been applied to ``state`` before encoding.
    """
    payload = {
        "version": SNAPSHOT_VERSION,
        "steps_done": int(steps_done),
        "config_hashes": list(config_hashes),
        "state": state,
    }
    return _MAGIC + zlib.compress(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def decode_snapshot(blob: bytes, expect_hashes: list[str]) -> tuple[Any, int] | None:
    """``(state, steps_done)`` — or ``None`` for anything unusable.

    Torn, truncated, version-skewed or wrong-config blobs all decode to
    ``None``: a resume snapshot is an optimization, never a correctness
    dependency, so the safe answer to every anomaly is "start from step
    0".  The config-hash list must match **in order** — lane order
    assigns RNG streams, so a permuted state is a different execution
    even though it shares the (sorted) snapshot key.
    """
    try:
        if not blob.startswith(_MAGIC):
            return None
        payload = pickle.loads(zlib.decompress(blob[len(_MAGIC):]))
        if payload.get("version") != SNAPSHOT_VERSION:
            return None
        if list(payload.get("config_hashes", [])) != list(expect_hashes):
            return None
        return payload["state"], int(payload["steps_done"])
    except Exception:
        return None


class SnapshotStore:
    """Atomic file persistence for resume snapshots.

    Standalone on purpose: subprocess sweep workers get only the store
    *root path* (a :class:`~repro.store._runstore.RunStore` is too heavy
    to ship across the pool boundary), and :class:`RunStore` composes
    one of these for its own ``put_snapshot``/``get_snapshot`` API —
    both sides read and write the same ``checkpoints/`` directory.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.dir = self.root / SNAPSHOT_DIR
        self.dir.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.dir / f"{key}.ckpt"

    def save(self, key: str, blob: bytes) -> None:
        """Crash-safe write: temp file, flush, fsync, atomic rename — a
        fault mid-save can never corrupt the previous good snapshot."""
        spec = fault_point("snapshot/save", key=key)
        if spec is not None and spec.action != "torn-write":
            raise_for_spec("snapshot/save", spec)
        target = self.path(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.dir, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                if spec is not None:  # torn write: partial bytes, then die
                    fh.write(torn_bytes(spec, blob))
                    fh.flush()
                    os.fsync(fh.fileno())
                    raise InjectedFault("snapshot/save", -1, "torn snapshot write")
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def load(self, key: str) -> bytes | None:
        fault_point("snapshot/load", key=key)
        try:
            return self.path(key).read_bytes()
        except FileNotFoundError:
            return None

    def delete(self, key: str) -> None:
        try:
            self.path(key).unlink()
        except FileNotFoundError:
            pass

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.dir.glob("*.ckpt"))
