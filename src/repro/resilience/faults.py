"""Deterministic fault injection for the compute substrate.

The paper argues decentralized collaboration must survive unreliable
participants; this module holds our own infrastructure to the same
standard.  A :class:`FaultPlan` is a seeded, replayable schedule of
failures at **named failure points** threaded through the store, the
lease-based dispatcher, sweep workers and service compute units.  The
same plan against the same workload fires the same faults in the same
order — chaos tests are ordinary deterministic tests.

Failure-point registry (the ``site`` names call sites use):

========================  ====================================================
site                      where it fires
========================  ====================================================
``store/put``             before a run payload is written
``store/index-append``    before a line is appended to ``index.jsonl``
                          (supports ``torn-write``)
``store/refresh``         at the top of ``RunStore.refresh()``
``checkpoint/save``       before a simulation checkpoint is written
                          (supports ``torn-write``)
``snapshot/save``         before a mid-run resume snapshot is persisted
                          (supports ``torn-write``)
``snapshot/load``         before a resume snapshot is read back
``lease/claim``           before a lease claim attempt
``lease/renew``           before a lease renewal (supports ``lease-loss``)
``lease/release``         before a lease release
``sweep/compute``         per config, before a sweep worker executes it
                          (``key`` = the config hash — use ``match`` to
                          poison one config)
``sweep/step``            per protocol step inside a resumable task
``service/compute``       before a service compute unit executes
========================  ====================================================

Actions:

* ``error``      — raise :class:`InjectedFault` (an ``OSError``, so retry
  policies treat it like real store IO trouble);
* ``crash``      — ``os._exit(137)``: the process dies as abruptly as a
  SIGKILL, no cleanup, no ``atexit``, leases left dangling;
* ``torn-write`` — the call site writes only ``fraction`` of the payload
  bytes and then raises :class:`InjectedFault` (cooperative: sites that
  do not support partial writes treat it as ``error``);
* ``delay``      — sleep ``delay_s`` seconds, then continue;
* ``lease-loss`` — cooperative: the lease call site raises its own
  ``LeaseLost`` as if another worker had reclaimed the lease.

Activation is ambient: either the :func:`inject_faults` context manager
(tests, the ``repro chaos`` CLI) or the ``REPRO_FAULT_PLAN`` environment
variable naming a plan JSON file — the latter is how subprocess sweep
workers and CI chaos smokes inherit a schedule.  Occurrence counters are
per-process; a plan file shared by several workers gives each worker its
own deterministic view of the schedule.
"""

from __future__ import annotations

import fnmatch
import json
import os
import random
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..obs import get_tracer

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_PLAN_VERSION",
    "ACTIONS",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "active_plan",
    "install_plan",
    "clear_plan",
    "inject_faults",
    "fault_point",
    "torn_bytes",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
FAULT_PLAN_VERSION = 1

#: Exit status used by the ``crash`` action — the conventional code for a
#: SIGKILL'd process, so supervisors cannot tell injected crashes apart
#: from real ones.
CRASH_EXIT_CODE = 137

ACTIONS = ("error", "crash", "torn-write", "delay", "lease-loss")


class InjectedFault(OSError):
    """A failure manufactured by an active :class:`FaultPlan`.

    Subclasses ``OSError`` deliberately: retry policies and store error
    handling must treat injected IO failures exactly like real ones.
    """

    def __init__(self, site: str, spec_index: int = -1, message: str = ""):
        super().__init__(
            message or f"injected fault at {site!r} (plan spec #{spec_index})"
        )
        self.site = site
        self.spec_index = spec_index

    def __reduce__(self):
        # OSError.__reduce__ rebuilds from self.args, which do not match
        # this signature; spell out the real constructor arguments so the
        # exception survives the process-pool pickle round trip.
        return (type(self), (self.site, self.spec_index, str(self)))


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure: *where*, *what*, and *which occurrences*.

    ``site`` is an exact failure-point name or an ``fnmatch`` pattern
    (``"lease/*"``).  ``at`` lists 1-based eligible-hit numbers (``None``
    = every hit).  ``match`` further restricts firing to hits whose
    ``key`` contains the substring — e.g. one config hash, to poison a
    single config.  ``p`` gates each firing through the plan's seeded
    RNG (still deterministic for a fixed call order).
    """

    site: str
    action: str = "error"
    at: tuple[int, ...] | None = None
    match: str | None = None
    p: float | None = None
    delay_s: float = 0.0
    fraction: float = 0.5
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.at is not None:
            object.__setattr__(self, "at", tuple(int(n) for n in self.at))
            if any(n < 1 for n in self.at):
                raise ValueError("'at' entries are 1-based hit numbers (>= 1)")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.delay_s < 0.0:
            raise ValueError("delay_s must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"site": self.site, "action": self.action}
        if self.at is not None:
            out["at"] = list(self.at)
        if self.match is not None:
            out["match"] = self.match
        if self.p is not None:
            out["p"] = self.p
        if self.action == "delay":
            out["delay_s"] = self.delay_s
        if self.action == "torn-write":
            out["fraction"] = self.fraction
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        known = {
            "site", "action", "at", "match", "p",
            "delay_s", "fraction", "max_fires",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "at" in kwargs and kwargs["at"] is not None:
            at = kwargs["at"]
            if isinstance(at, int):  # hand-written plans: "at": 3
                at = (at,)
            kwargs["at"] = tuple(at)
        return cls(**kwargs)


class FaultPlan:
    """A seeded, replayable schedule of :class:`FaultSpec` firings.

    Thread-safe; per-spec hit/fire counters make occurrence selection
    (``at=[3]`` = "the third time this site is hit") deterministic for a
    fixed sequence of :func:`fault_point` calls.  ``fired`` records every
    firing (site, key, action, spec index, hit number) — quarantine
    artifacts embed it as fault context.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._hits = [0] * len(self.specs)
        self._fires = [0] * len(self.specs)
        self.fired: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": FAULT_PLAN_VERSION,
            "seed": self.seed,
            "faults": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        version = data.get("schema_version", FAULT_PLAN_VERSION)
        if version != FAULT_PLAN_VERSION:
            raise ValueError(f"unsupported fault-plan schema_version {version!r}")
        specs = [FaultSpec.from_dict(d) for d in data.get("faults", [])]
        return cls(specs, seed=data.get("seed", 0))

    @classmethod
    def from_json(cls, path: str | os.PathLike) -> "FaultPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str | os.PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def parse(cls, text_or_path: str) -> "FaultPlan":
        """CLI convenience: inline JSON (starts with ``{``) or a file path."""
        text = text_or_path.strip()
        if text.startswith("{"):
            return cls.from_dict(json.loads(text))
        return cls.from_json(text_or_path)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def check(self, site: str, key: str = "") -> FaultSpec | None:
        """Count this hit against every matching spec; return the first
        spec that fires (or ``None``).  Specs later in the plan still see
        the hit even when an earlier spec fires, so schedules compose
        predictably."""
        fired_spec: FaultSpec | None = None
        fired_index = -1
        fired_hit = 0
        with self._lock:
            for i, spec in enumerate(self.specs):
                if not fnmatch.fnmatchcase(site, spec.site):
                    continue
                if spec.match is not None and spec.match not in key:
                    continue
                self._hits[i] += 1
                if fired_spec is not None:
                    continue
                hit = self._hits[i]
                if spec.at is not None and hit not in spec.at:
                    continue
                if spec.max_fires is not None and self._fires[i] >= spec.max_fires:
                    continue
                if spec.p is not None and self._rng.random() >= spec.p:
                    continue
                self._fires[i] += 1
                fired_spec, fired_index, fired_hit = spec, i, hit
            if fired_spec is not None:
                self.fired.append(
                    {
                        "site": site,
                        "key": key,
                        "action": fired_spec.action,
                        "spec": fired_index,
                        "hit": fired_hit,
                    }
                )
        return fired_spec

    def fire_counts(self) -> dict[int, int]:
        """Spec index -> number of times it fired (diagnostics)."""
        with self._lock:
            return {i: n for i, n in enumerate(self._fires) if n}


# ----------------------------------------------------------------------
# Ambient activation
# ----------------------------------------------------------------------
_active: FaultPlan | None = None
# (path, plan) loaded from REPRO_FAULT_PLAN — cached so occurrence
# counters persist across fault_point calls within one process.
_env_cache: tuple[str, FaultPlan] | None = None


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` as the process-ambient fault plan (``None`` clears)."""
    global _active
    _active = plan


def clear_plan() -> None:
    """Deactivate any ambient plan (including a cached env-var plan)."""
    global _active, _env_cache
    _active = None
    _env_cache = None


def active_plan() -> FaultPlan | None:
    """The ambient plan: an installed one, else ``REPRO_FAULT_PLAN``.

    The env var — a plan file path or inline JSON — is how subprocess
    workers inherit a schedule; the plan is loaded once per process and
    its counters persist.  A set-but-unloadable plan raises: a chaos
    run silently executing without its faults would report vacuous
    success.
    """
    if _active is not None:
        return _active
    value = os.environ.get(FAULT_PLAN_ENV)
    if not value:
        return None
    global _env_cache
    if _env_cache is None or _env_cache[0] != value:
        _env_cache = (value, FaultPlan.parse(value))
    return _env_cache[1]


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the dynamic extent of the block (re-entrant:
    the previous ambient plan is restored on exit)."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


# ----------------------------------------------------------------------
# The failure point
# ----------------------------------------------------------------------
def fault_point(site: str, key: str = "") -> FaultSpec | None:
    """Declare a named failure point; the ambient plan decides its fate.

    With no active plan this is one global read and a ``None`` check —
    cheap enough for store IO paths.  Actions ``error``/``crash``/
    ``delay`` are handled here (raise / die / sleep); ``torn-write`` and
    ``lease-loss`` are returned to the call site, which cooperates (or
    treats an unexpected spec as ``error`` via :func:`raise_for_spec`).
    """
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.check(site, key)
    if spec is None:
        return None
    _count_fault(site, spec.action)
    if spec.action == "delay":
        time.sleep(spec.delay_s)
        return None
    if spec.action == "crash":
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(CRASH_EXIT_CODE)
    if spec.action == "error":
        raise InjectedFault(site, plan.specs.index(spec))
    return spec


def raise_for_spec(site: str, spec: FaultSpec | None) -> None:
    """For call sites without torn-write/lease-loss support: escalate any
    cooperative spec that reached them to a plain injected error."""
    if spec is not None:
        raise InjectedFault(site, -1, f"injected {spec.action} at {site!r}")


def torn_bytes(spec: FaultSpec, data: bytes) -> bytes:
    """The prefix of ``data`` a torn write leaves on disk."""
    return data[: int(len(data) * spec.fraction)]


def _count_fault(site: str, action: str) -> None:
    tracer = get_tracer()
    if tracer.enabled:
        tracer.metrics.counter(
            "resilience_faults_injected_total",
            "Faults fired by the active FaultPlan",
            site=site,
            action=action,
        ).inc()
