"""Resilience layer: fault injection, checkpoint/resume, retry/quarantine.

The paper's thesis — decentralized collaboration must survive unreliable
participants — applied to our own compute substrate (docs/RESILIENCE.md):

* :mod:`repro.resilience.faults` — seeded, replayable :class:`FaultPlan`
  schedules fired at named failure points threaded through the store,
  the lease dispatcher, sweep workers and service compute units;
* :mod:`repro.resilience.retry` — one deterministic
  :class:`RetryPolicy` shape wrapping store IO, lease operations and
  compute units;
* :mod:`repro.resilience.snapshot` / :mod:`~repro.resilience.runner` —
  mid-run full-state snapshots and the :class:`ResumableTask` that
  resumes a crashed task bit-identically from its latest snapshot;
* :mod:`repro.resilience.quarantine` — the ``errors/<hash>.json``
  artifact schema for configs that exhaust their retry budget.
"""

from .faults import (
    ACTIONS,
    FAULT_PLAN_ENV,
    FAULT_PLAN_VERSION,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_point,
    inject_faults,
    install_plan,
    torn_bytes,
)
from .quarantine import QUARANTINE_SCHEMA_VERSION, build_error_payload
from .retry import DEFAULT_COMPUTE_RETRY, DEFAULT_STORE_RETRY, RetryPolicy
from .runner import ResumableTask, run_resumable
from .snapshot import (
    SNAPSHOT_VERSION,
    SnapshotStore,
    decode_snapshot,
    encode_snapshot,
    snapshot_key,
)

__all__ = [
    "ACTIONS",
    "FAULT_PLAN_ENV",
    "FAULT_PLAN_VERSION",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "fault_point",
    "inject_faults",
    "install_plan",
    "torn_bytes",
    "RetryPolicy",
    "DEFAULT_STORE_RETRY",
    "DEFAULT_COMPUTE_RETRY",
    "SNAPSHOT_VERSION",
    "SnapshotStore",
    "snapshot_key",
    "encode_snapshot",
    "decode_snapshot",
    "ResumableTask",
    "run_resumable",
    "QUARANTINE_SCHEMA_VERSION",
    "build_error_payload",
]
