"""Quarantine artifacts: the paper trail of configs that kept failing.

A config that exhausts its retry budget is *quarantined*: the grid
keeps draining, and an ``errors/<config-hash>.json`` artifact records
everything needed to debug the failure after the fact — the error, the
remote traceback text, the attempt count, the canonical config dict,
and the fault context (which injected faults had fired) if a chaos plan
was active.  :meth:`repro.store.RunStore.put_error` persists these;
``repro ls --errors`` and the service job detail render them.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = ["QUARANTINE_SCHEMA_VERSION", "build_error_payload"]

QUARANTINE_SCHEMA_VERSION = 1


def build_error_payload(
    *,
    config_hash: str,
    error: Any,
    traceback_text: str = "",
    attempts: int = 1,
    config: dict[str, Any] | None = None,
    plan: Any = None,
) -> dict[str, Any]:
    """The ``errors/<hash>.json`` document for one quarantined config.

    ``plan`` is the active :class:`~repro.resilience.faults.FaultPlan`
    (if any); its ``fired`` log is embedded so a chaos run's artifacts
    say *which* injected faults produced them.
    """
    return {
        "schema_version": QUARANTINE_SCHEMA_VERSION,
        "config_hash": config_hash,
        "attempts": int(attempts),
        "error": error if isinstance(error, str) else repr(error),
        "traceback": traceback_text or "",
        "created_at": time.time(),
        "config": config,
        "faults": list(plan.fired) if plan is not None else [],
    }
