"""Bounded, deterministic retry with exponential backoff.

One :class:`RetryPolicy` shape wraps every layer that can fail
transiently — store IO, lease operations, compute units — so attempt
budgets and backoff behave identically whether the failure is a real
``OSError`` or an injected one (:class:`repro.resilience.faults.InjectedFault`
subclasses ``OSError`` precisely so this wrapper cannot tell them
apart).

Backoff is deterministic (no jitter): ``base_delay_s * multiplier**k``
capped at ``max_delay_s``.  Determinism matters more than thundering-herd
avoidance here — chaos tests replay schedules, and the dispatcher's
lease arbitration already decorrelates workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..obs import get_tracer

__all__ = ["RetryPolicy", "DEFAULT_STORE_RETRY", "DEFAULT_COMPUTE_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with deterministic exponential backoff.

    ``max_attempts`` counts *total* tries (1 = no retry).  Only
    exceptions matching ``retry_on`` are retried; anything else
    propagates immediately.  The final failure re-raises the last
    exception unwrapped, so callers keep their existing ``except``
    clauses.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    retry_on: tuple[type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delays(self) -> Iterator[float]:
        """The deterministic backoff schedule (one entry per *retry*)."""
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay_s)
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[[], Any],
        *,
        site: str = "",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Run ``fn`` under this policy.

        ``site`` labels the retry counter metric; ``sleep`` is injectable
        for tests.  ``on_retry(attempt, exc)`` fires after each failed
        attempt that will be retried (attempt numbers are 1-based).
        """
        delays = self.delays()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except self.retry_on as exc:
                try:
                    delay = next(delays)
                except StopIteration:
                    raise exc from None
                self._count_retry(site)
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delay > 0:
                    sleep(delay)

    def _count_retry(self, site: str) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter(
                "resilience_retries_total",
                "Operations retried under a RetryPolicy",
                site=site or "<unlabeled>",
            ).inc()


#: Store IO and lease operations: quick, idempotent filesystem calls —
#: three tries with small backoff ride out transient contention.
DEFAULT_STORE_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.05)

#: Compute units (whole simulation tasks): re-running is expensive, so
#: two tries by default; quarantine handles persistent failures.
DEFAULT_COMPUTE_RETRY = RetryPolicy(
    max_attempts=2, base_delay_s=0.0, retry_on=(Exception,)
)
