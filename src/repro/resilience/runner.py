"""Resumable execution of one sweep/dispatch task.

:class:`ResumableTask` drives the exact protocol of
:func:`repro.sim.engine._run_protocol` — train at ``t_train``, reset
reputations at the phase boundary, evaluate at ``t_eval`` — but exposes
the step loop so it can (a) persist a full-state snapshot every
``checkpoint_every`` steps and (b) restart *mid-phase* from the latest
snapshot instead of step 0.  The step sequence, reset timing and RNG
consumption are identical to the engine's closed loop, so results are
bit-identical whether a task ran straight through, was never
checkpointed, or died and resumed three times
(``tests/resilience/test_snapshot.py`` pins all three).

The boundary-reset invariant that makes resume unambiguous: a snapshot
at ``steps_done == training_steps`` is always taken *after* the
reputation reset due at that count, so restored state never replays or
skips the boundary.
"""

from __future__ import annotations

from typing import Any

from ..obs import Stopwatch, get_tracer
from ..sim.engine import SimulationResult, _phase_summaries
from ..sim.phases import step_state
from ..sim.state import build_sim_state
from .faults import fault_point
from .snapshot import SnapshotStore, decode_snapshot, encode_snapshot, snapshot_key

__all__ = ["ResumableTask", "run_resumable"]


class ResumableTask:
    """One batch of configs executed with snapshot/resume support.

    ``store_root`` is the run-store root directory (snapshots live in
    its ``checkpoints/`` subdir); subprocess workers receive the path,
    not a RunStore.  With ``store_root=None`` or ``checkpoint_every=0``
    this degenerates to a plain batched run (no snapshot IO at all,
    though an existing snapshot is still honored when a root is given).

    After :meth:`run`, ``resumed``/``resumed_at_step`` report whether a
    snapshot was used — the dispatcher surfaces that in its stats.
    """

    def __init__(
        self,
        configs,
        *,
        checkpoint_every: int = 0,
        store_root: str | None = None,
        key: str | None = None,
    ):
        if not configs:
            raise ValueError("need at least one config")
        if any(c.collect_events for c in configs):
            raise ValueError(
                "ResumableTask does not collect events; "
                "run event-collecting configs without checkpointing"
            )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.configs = list(configs)
        self.checkpoint_every = int(checkpoint_every)
        self.snapshots = (
            SnapshotStore(store_root) if store_root is not None else None
        )
        self.key = key
        self._hashes: list[str] | None = None
        self.resumed = False
        self.resumed_at_step = 0

    def _ensure_key(self) -> None:
        from ..store.hashing import config_hash  # lazy: avoids store<->resilience cycle

        if self._hashes is None:
            self._hashes = [config_hash(c) for c in self.configs]
        if self.key is None:
            self.key = snapshot_key(self._hashes)

    # ------------------------------------------------------------------
    def run(self) -> list[SimulationResult]:
        state = None
        steps_done = 0
        if self.snapshots is not None:
            self._ensure_key()
            blob = self.snapshots.load(self.key)
            if blob is not None:
                decoded = decode_snapshot(blob, self._hashes)
                if decoded is not None:
                    state, steps_done = decoded
                    self.resumed = True
                    self.resumed_at_step = steps_done
                    _count_snapshot("resumed")
        if state is None:
            state = build_sim_state(self.configs)
            if state.config.training_steps == 0:
                # Degenerate protocol: the boundary reset still happens
                # before the first (and only) eval phase.
                state.scheme.reset_reputations()
        wall = self._advance(state, steps_done)
        results = []
        n = state.n_replicates
        for r, conf in enumerate(self.configs):
            summary, training_summary = _phase_summaries(state, replicate=r)
            results.append(
                SimulationResult(
                    config=conf,
                    summary=summary,
                    training_summary=training_summary,
                    wall_time_s=wall / n,
                    events=None,
                    extras={
                        "whitewash_count": float(state.whitewash_counts[r]),
                        "sybil_count": float(state.sybil_counts[r]),
                    },
                )
            )
        if self.snapshots is not None:
            self.snapshots.delete(self.key)
            _count_snapshot("deleted")
        return results

    # ------------------------------------------------------------------
    def _advance(self, state, steps_done: int) -> float:
        cfg = state.config
        lanes = state.lanes
        t_train = cfg.training_steps
        total = t_train + cfg.eval_steps
        every = self.checkpoint_every
        snapshots = self.snapshots if every > 0 else None
        watch = Stopwatch()
        while steps_done < total:
            fault_point("sweep/step", key=self.key or "")
            if steps_done < t_train:
                step_state(state, lanes.t_train, learn=True)
            else:
                step_state(state, lanes.t_eval, learn=cfg.learn_during_eval)
            steps_done += 1
            if steps_done == t_train:
                state.scheme.reset_reputations()
            if (
                snapshots is not None
                and steps_done % every == 0
                and steps_done < total
            ):
                snapshots.save(
                    self.key, encode_snapshot(state, steps_done, self._hashes)
                )
                _count_snapshot("saved")
        return watch.elapsed()


def run_resumable(
    configs,
    *,
    checkpoint_every: int = 0,
    store_root: str | None = None,
    key: str | None = None,
) -> tuple[list[SimulationResult], "ResumableTask"]:
    """One-shot convenience: run the task, return ``(results, task)`` so
    callers can inspect ``task.resumed``."""
    task = ResumableTask(
        configs,
        checkpoint_every=checkpoint_every,
        store_root=store_root,
        key=key,
    )
    return task.run(), task


def _count_snapshot(event: str) -> None:
    tracer = get_tracer()
    if tracer.enabled:
        tracer.metrics.counter(
            "resilience_snapshots_total",
            "Resume-snapshot lifecycle events",
            event=event,
        ).inc()
