"""Act phase: observe reputation states, choose sharing and edit actions."""

from __future__ import annotations

from ...core.reputation import reputation_to_state
from ..config import SimulationConfig
from ..state import SimState

__all__ = ["act_phase", "install_actions"]


def install_actions(state: SimState) -> None:
    """Decode ``ctx``'s action indices and install them on the state.

    Single point of truth for turning ``ctx.share_actions`` /
    ``ctx.edit_actions`` into the derived per-slot arrays (bandwidth and
    file offers masked by online-ness, edit/vote constructiveness) and
    the peers' installed offers.  Called by the act phase after action
    selection and again by the collusion kernel after it overrides ring
    members' action indices — both must agree on the derivation.
    """
    ctx = state.ctx
    bw, files = state.sharing_space.decode(ctx.share_actions)
    online = state.peers.online
    ctx.bw = bw * online
    ctx.files = files * online
    state.peers.set_actions(ctx.bw, ctx.files)
    ctx.edit_constructive, ctx.vote_constructive = state.edit_space.decode(
        ctx.edit_actions
    )


def act_phase(state: SimState, cfg: SimulationConfig, temperature) -> None:
    """Snapshot reputations, select this step's actions, install them.

    Reputation snapshots (``rep_s``/``rep_e``) are taken once here and
    reused by the voting and metrics phases — reputations only move
    between steps.  Action selection is one stacked call over all
    replicates' rational peers; fixed types are filled in vectorized.
    ``temperature`` is a scalar or a per-lane ``(R,)`` array; the
    discretization bounds come from each lane's own reputation band
    (``state.lanes``), both applied per rational slot.
    """
    ctx = state.ctx
    scheme = state.scheme
    lanes = state.lanes
    ctx.rep_s = scheme.reputation_s()
    ctx.rep_e = scheme.reputation_e()
    ridx = state.rational_idx
    ctx.states_s = reputation_to_state(
        ctx.rep_s[ridx], cfg.n_states, lanes.disc_s_min, lanes.disc_s_max
    )
    ctx.states_e = reputation_to_state(
        ctx.rep_e[ridx], cfg.n_states, lanes.disc_e_min, lanes.disc_e_max
    )
    ctx.share_actions = state.behavior.sharing_actions(
        ctx.states_s, temperature, state.rngs
    )
    ctx.edit_actions = state.behavior.edit_actions(
        ctx.states_e, temperature, state.rngs
    )
    install_actions(state)
