"""Record phase: hand the step's outcomes to the metrics collector."""

from __future__ import annotations

from ..config import SimulationConfig
from ..metrics import StepStats
from ..state import SimState

__all__ = ["record_phase"]


def record_phase(state: SimState, cfg: SimulationConfig) -> None:
    """Capture one row of every per-step series (all replicates at once).

    The scratch count buffers are handed over by reference; the collector
    copies their values into its preallocated series, so reusing the
    buffers next step is safe.
    """
    ctx = state.ctx
    sc = state.scratch
    state.metrics.record(
        StepStats(
            offered_files=ctx.files,
            offered_bandwidth=ctx.bw,
            reputation_s=ctx.rep_s,
            reputation_e=ctx.rep_e,
            sharing_utility=ctx.u_s,
            editing_utility=ctx.u_e,
            proposals=sc.proposals_count,
            accepted=sc.accepted_count,
            votes_cast=sc.votes_cast,
            votes_successful=sc.votes_successful,
            vote_bans=sc.vote_bans,
            reputation_resets=sc.reputation_resets,
        )
    )
