"""Composable per-step phase kernels over an explicit :class:`SimState`.

The old monolithic ``CollaborationSimulation.step()`` is split into
kernels, each a function of ``(SimState, SimulationConfig)`` driving the
state's per-replicate RNG streams:

``churn``      joins / leaves / whitewash identity resets
``sybil``      sybil attackers discard identities and rejoin fresh
``act``        observe reputations, pick sharing + edit/vote actions
``collusion``  rings override their members' sharing actions
``download``   sample requests, settle bandwidth, sharing utilities
``edit_vote``  edit proposals, weighted voting rounds, punishment
``learn``      temporal-difference backups of the rational learners
``record``     per-step metric capture

:func:`step_state` composes them in protocol order (the two adversary
kernels are no-ops unless their config knobs are set).  Every kernel is
batched over the replicate axis: elementwise work runs once on the flat
``(R * N,)`` slot arrays, and only the irreducibly per-replicate piece —
the RNG draws — loops over replicates, consuming each replicate's stream
exactly as a sequential run would, which is what makes batched
replicates bit-identical to their sequential twins.
"""

from __future__ import annotations

from time import perf_counter

from ...obs import get_tracer
from ..state import SimState
from .act import act_phase
from .adversary import collusion_phase, sybil_phase
from .churn import churn_phase
from .download import download_phase
from .edit_vote import edit_vote_phase
from .learn import learn_phase
from .record import record_phase

__all__ = [
    "churn_phase",
    "sybil_phase",
    "act_phase",
    "collusion_phase",
    "download_phase",
    "edit_vote_phase",
    "learn_phase",
    "record_phase",
    "step_state",
]


def step_state(state: SimState, temperature, learn: bool = True) -> None:
    """Advance every lane of ``state`` by one simultaneous step.

    ``temperature`` is a scalar (all lanes) or a per-lane ``(R,)`` array
    (mixed-config batches where lanes train/evaluate at different ``T``).

    Telemetry: when the ambient :class:`repro.obs.Tracer` is enabled,
    every kernel is wrapped in a ``phase/<name>`` span (wall time, call
    count, lane/agent dimensions, optional tracemalloc delta).  With the
    default disabled tracer the cost is one attribute check — the plain
    kernel sequence runs untouched (overhead budget enforced by
    ``benchmarks/test_bench_obs.py``).  Tracing never draws from the RNG
    streams, so traced and untraced runs are bit-identical.
    """
    tracer = get_tracer()
    if tracer.enabled:
        _step_state_traced(state, temperature, learn, tracer)
    else:
        _step_state_plain(state, temperature, learn)


def _step_state_plain(state: SimState, temperature, learn: bool) -> None:
    """The uninstrumented kernel sequence (the disabled-tracer hot path)."""
    cfg = state.config
    churn_phase(state, cfg)
    sybil_phase(state, cfg)
    act_phase(state, cfg, temperature)
    collusion_phase(state, cfg)
    download_phase(state, cfg)
    edit_vote_phase(state, cfg)
    learn_phase(state, cfg, learn)
    record_phase(state, cfg)
    state.step_count += 1


def _step_state_traced(state: SimState, temperature, learn: bool, tracer) -> None:
    """The same kernel sequence with a per-phase span around each kernel.

    Durations are measured with raw ``perf_counter`` pairs and handed to
    :meth:`Tracer.record` directly — no context-manager machinery in the
    per-step loop.  Memory deltas use the tracer's ``tracemalloc`` hook
    only when memory tracking is on (it costs a tracemalloc query per
    phase, which the enabled-mode overhead budget accounts for).
    """
    cfg = state.config
    dims = {"lanes": state.n_replicates, "agents": state.n_agents}
    record = tracer.record
    mem = tracer._mem_now if tracer.track_memory else None
    m0 = mem() if mem else 0
    t0 = perf_counter()
    for name, kernel, args in (
        ("phase/churn", churn_phase, (state, cfg)),
        ("phase/sybil", sybil_phase, (state, cfg)),
        ("phase/act", act_phase, (state, cfg, temperature)),
        ("phase/collusion", collusion_phase, (state, cfg)),
        ("phase/download", download_phase, (state, cfg)),
        ("phase/edit_vote", edit_vote_phase, (state, cfg)),
        ("phase/learn", learn_phase, (state, cfg, learn)),
        ("phase/record", record_phase, (state, cfg)),
    ):
        kernel(*args)
        t1 = perf_counter()
        m1 = mem() if mem else 0
        record(name, t1 - t0, attrs=dims, mem_delta=m1 - m0)
        t0, m0 = t1, m1
    state.step_count += 1
