"""Composable per-step phase kernels over an explicit :class:`SimState`.

The old monolithic ``CollaborationSimulation.step()`` is split into
kernels, each a function of ``(SimState, SimulationConfig)`` driving the
state's per-replicate RNG streams:

``churn``      joins / leaves / whitewash identity resets
``sybil``      sybil attackers discard identities and rejoin fresh
``act``        observe reputations, pick sharing + edit/vote actions
``collusion``  rings override their members' sharing actions
``download``   sample requests, settle bandwidth, sharing utilities
``edit_vote``  edit proposals, weighted voting rounds, punishment
``learn``      temporal-difference backups of the rational learners
``record``     per-step metric capture

:func:`step_state` composes them in protocol order (the two adversary
kernels are no-ops unless their config knobs are set).  Every kernel is
batched over the replicate axis: elementwise work runs once on the flat
``(R * N,)`` slot arrays, and only the irreducibly per-replicate piece —
the RNG draws — loops over replicates, consuming each replicate's stream
exactly as a sequential run would, which is what makes batched
replicates bit-identical to their sequential twins.
"""

from __future__ import annotations

from ..state import SimState
from .act import act_phase
from .adversary import collusion_phase, sybil_phase
from .churn import churn_phase
from .download import download_phase
from .edit_vote import edit_vote_phase
from .learn import learn_phase
from .record import record_phase

__all__ = [
    "churn_phase",
    "sybil_phase",
    "act_phase",
    "collusion_phase",
    "download_phase",
    "edit_vote_phase",
    "learn_phase",
    "record_phase",
    "step_state",
]


def step_state(state: SimState, temperature, learn: bool = True) -> None:
    """Advance every lane of ``state`` by one simultaneous step.

    ``temperature`` is a scalar (all lanes) or a per-lane ``(R,)`` array
    (mixed-config batches where lanes train/evaluate at different ``T``).
    """
    cfg = state.config
    churn_phase(state, cfg)
    sybil_phase(state, cfg)
    act_phase(state, cfg, temperature)
    collusion_phase(state, cfg)
    download_phase(state, cfg)
    edit_vote_phase(state, cfg)
    learn_phase(state, cfg, learn)
    record_phase(state, cfg)
    state.step_count += 1
