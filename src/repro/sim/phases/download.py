"""Download phase: request sampling, bandwidth settlement, sharing books."""

from __future__ import annotations

from ...core.utility import sharing_utility_values
from ...network.bandwidth import sample_download_requests_batch, settle_downloads
from ..config import SimulationConfig
from ..state import SimState
from .adversary import collusion_shares

__all__ = ["download_phase"]


def download_phase(state: SimState, cfg: SimulationConfig) -> None:
    """Sample per-replicate download requests and settle them in one pass.

    Requests are drawn per replicate (each from its own stream) and
    offset into the flat slot space; the share allocation and the settle
    scatter then run once over all replicates — competition is grouped by
    source slot, so replicates never interact.  Ends with the sharing
    utilities and the scheme's sharing-contribution update, matching the
    monolithic engine's ordering (the ledger moves *before* the editing
    phase reads edit eligibility).
    """
    ctx = state.ctx
    peers = state.peers
    lanes = state.lanes
    mask2d = state.rows(peers.sharing_mask())
    requests = sample_download_requests_batch(
        state.rngs,
        mask2d,
        lanes.download_probability,
        overlays=state.overlays,
        kernels=state.backend,
    )
    shares = state.scheme.bandwidth_shares(
        requests.source_ids, requests.downloader_ids
    )
    if state.colluder_mask.any() and requests.n:
        shares = collusion_shares(
            state, requests.source_ids, requests.downloader_ids, shares
        )
    received, _served = settle_downloads(
        requests,
        shares,
        peers.offered_bandwidth,
        peers.upload_capacity,
        peers.n,
        kernels=state.backend,
    )
    ctx.received = received
    if state.transfer_hook is not None and requests.n:
        amounts = (
            peers.offered_bandwidth[requests.source_ids]
            * peers.upload_capacity[requests.source_ids]
            * shares
        )
        state.transfer_hook(requests.downloader_ids, requests.source_ids, amounts)

    ctx.u_s = sharing_utility_values(
        received, ctx.files, ctx.bw, lanes.u_alpha, lanes.u_beta, lanes.u_gamma
    )
    state.scheme.record_sharing(ctx.files, ctx.bw)
