"""Churn phase: joins, leaves and whitewash identity resets."""

from __future__ import annotations

import numpy as np

from ..config import SimulationConfig
from ..state import SimState

__all__ = ["churn_phase"]


def churn_phase(state: SimState, cfg: SimulationConfig) -> None:
    """Apply one churn round per replicate (no-op when churn is off).

    Online flips happen in place on each replicate's row view; whitewash
    resets are collected across replicates and applied to the scheme's
    ledger in one scatter (resets are idempotent zero-assignments, so
    batching them is equivalent to the sequential per-event resets).
    """
    if not state.churn.active:
        return
    n = state.n_agents
    online2d = state.rows(state.peers.online)
    washed: list[int] = []
    for r in range(state.n_replicates):
        for ev in state.churn.step(state.rngs[r], online2d[r]):
            if ev.kind == "whitewash":
                washed.append(ev.peer_id + r * n)
                state.whitewash_counts[r] += 1
    if washed:
        state.scheme.ledger.reset_peers(np.asarray(washed, dtype=np.int64))
