"""Churn phase: joins, leaves and whitewash identity resets."""

from __future__ import annotations

import numpy as np

from ..config import SimulationConfig
from ..state import SimState

__all__ = ["churn_phase"]


def churn_phase(state: SimState, cfg: SimulationConfig) -> None:
    """Apply one churn round per lane (no-op when churn is off everywhere).

    Each lane carries its own :class:`~repro.network.overlay.ChurnModel`
    (rates may differ per lane); a lane whose model is inactive draws
    nothing, exactly like its sequential run.  Online flips happen in
    place on each lane's row view; whitewash resets are collected across
    lanes and applied to the scheme's ledger in one scatter (resets are
    idempotent zero-assignments, so batching them is equivalent to the
    sequential per-event resets).
    """
    if not state.churn_active:
        return
    n = state.n_agents
    online2d = state.rows(state.peers.online)
    washed: list[int] = []
    for r in range(state.n_replicates):
        model = state.churn[r]
        if not model.active:
            continue
        for ev in model.step(state.rngs[r], online2d[r]):
            if ev.kind == "whitewash":
                washed.append(ev.peer_id + r * n)
                state.whitewash_counts[r] += 1
    if washed:
        state.scheme.ledger.reset_peers(np.asarray(washed, dtype=np.int64))
