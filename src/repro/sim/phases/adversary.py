"""Adversary phase kernels: sybil identity churn and collusion rings.

Two attack models the paper's robustness claim must survive, expressed
as phase kernels over :class:`~repro.sim.state.SimState`:

* **Sybil / whitewash** (:func:`sybil_phase`) — a designated attacker
  subpopulation (``sybil_fraction``) discards its identity with
  probability ``sybil_rate`` each step and rejoins fresh.  This
  generalizes the churn kernel's whitewash event: instead of only
  trading the contribution ledger for ``R_min``, the reset wipes *every*
  identity-bound book the active scheme keeps — contributions,
  vote/edit punishment streaks and bans, tit-for-tat private histories
  (rows *and* columns) and karma balances (refilled to the newcomer
  grant) — via each scheme's ``reset_identities``.  An offline attacker
  rejoins online as part of the reset.

* **Collusion rings** (:func:`collusion_phase` plus hooks in the
  download and edit/vote kernels) — ``collusion_fraction`` of each
  replicate's population is partitioned into rings of
  ``collusion_ring_size`` at build time.  Ring members farm reputation
  for the ring: they always offer maximal bandwidth and files
  (overriding their behaviour type's action, Q-learners included — the
  ring dictates, the learner still trains on the forced outcome), serve
  bandwidth *only* to ring-mates (outsider requests are zero-weighted
  and the source's bandwidth renormalizes over ring-mates), and vote
  for ring-mates' proposals and against everyone else's regardless of
  content (ballot stuffing + bad-mouthing).

Both kernels preserve the batched == sequential bit-identity contract:
per-replicate RNG draws happen in replicate order with
replicate-independent shapes, and all cross-slot math is elementwise or
grouped by same-replicate slot pairs (ring ids are offset per replicate
so they can never alias across replicates).
"""

from __future__ import annotations

import numpy as np

from ..config import SimulationConfig
from ..state import SimState
from .act import install_actions

__all__ = ["sybil_phase", "collusion_phase", "collusion_shares", "collusion_votes"]


def sybil_phase(state: SimState, cfg: SimulationConfig) -> None:
    """Let sybil attackers discard their identities and rejoin fresh.

    One full-width uniform vector is drawn per attacking lane (stream
    parity with the churn kernel's style), thresholded on the attacker
    roster against that lane's own rate; a lane with no attackers or a
    zero rate draws nothing, exactly like its sequential run.  Resets are
    applied to the scheme in one scatter; they are idempotent
    assignments, so batching them across lanes is equivalent to the
    sequential per-event resets.
    """
    lanes = state.lanes
    rate = lanes.sybil_rate  # scalar or per-lane (R,)
    scalar_rate = np.ndim(rate) == 0
    if scalar_rate and rate <= 0.0:
        return
    if not lanes.sybil_any.any():
        return
    n = state.n_agents
    sybil2d = state.rows(state.sybil_mask)
    online2d = state.rows(state.peers.online)
    washed_rows: list[np.ndarray] = []
    for r in range(state.n_replicates):
        rate_r = rate if scalar_rate else rate[r]
        if rate_r <= 0.0 or not lanes.sybil_any[r]:
            continue
        u = state.rngs[r].random(n)
        resets = np.flatnonzero(sybil2d[r] & (u < rate_r))
        if resets.size:
            online2d[r][resets] = True  # a fresh identity rejoins
            state.sybil_counts[r] += resets.size
            washed_rows.append(resets + r * n)
    if washed_rows:
        state.scheme.reset_identities(np.concatenate(washed_rows))


def collusion_phase(state: SimState, cfg: SimulationConfig) -> None:
    """Override ring members' actions with the ring's policy.

    Runs right after the act phase: colluders play the all-in sharing
    action and the constructive edit action (reputation farming),
    regardless of what their behaviour type — fixed or learned —
    selected.  The override rewrites the *action indices* (via
    :meth:`~repro.agents.behaviors.BatchedBehaviorEngine.apply_ring_policy`),
    so rational colluders' Q-learners train on the action the ring forced,
    not the one they picked; the decoded bandwidth/files/constructiveness
    arrays are then re-derived exactly as the act phase derives them.
    The download kernel separately restricts whom the offered bandwidth
    actually reaches.  Draws nothing, so it is exactly
    replicate-elementwise.
    """
    if not state.colluder_mask.any():
        return
    ctx = state.ctx
    state.behavior.apply_ring_policy(
        state.colluder_mask & state.peers.online,
        ctx.share_actions,
        ctx.edit_actions,
    )
    install_actions(state)


def collusion_shares(
    state: SimState,
    source_ids: np.ndarray,
    downloader_ids: np.ndarray,
    shares: np.ndarray,
) -> np.ndarray:
    """Zero colluding sources' shares to outsiders, renormalized in-ring.

    Requests whose source sits in a ring and whose downloader is not a
    ring-mate get weight zero; the source's remaining (ring-mate) weights
    renormalize so the ring fully consumes its own capacity.  A colluder
    whose requests all come from outsiders serves nobody that step, and
    one whose ring-mates all carry zero reputation splits equally among
    those ring-mates.  Only rows whose source is in a ring are rewritten,
    so non-colluding sources keep their shares bit-identically.
    """
    rings = state.collusion_rings
    src_ring = rings[source_ids]
    colluding = src_ring >= 0
    blocked = colluding & (src_ring != rings[downloader_ids])
    if not blocked.any():
        return shares
    rows = np.flatnonzero(colluding)
    sub_src = source_ids[rows]
    sub_blocked = blocked[rows]
    weights = np.where(sub_blocked, 0.0, shares[rows])
    totals = np.zeros(state.peers.n)
    np.add.at(totals, sub_src, weights)
    # Zero-reputation ring-mates: the ring policy ignores reputation, so
    # a zero-weight-total source still splits equally among its ring-mate
    # requests (not grouped_shares' all-rows fallback, which would leak
    # bandwidth back to the outsiders it refuses).
    weights[(totals[sub_src] <= 0.0) & ~sub_blocked] = 1.0
    sub = state.backend.grouped_shares(sub_src, weights, state.peers.n)
    sub[sub_blocked] = 0.0  # exact zeros, incl. fully blocked sources
    out = shares.copy()
    out[rows] = sub
    return out


def collusion_votes(
    state: SimState,
    flat_voters: np.ndarray,
    proposer_of_vote: np.ndarray,
    votes_for: np.ndarray,
) -> np.ndarray:
    """Overwrite ring members' votes with the ring line.

    A colluding voter votes *for* iff the proposer is a ring-mate —
    content never matters.  Non-colluders' votes pass through untouched.
    ``proposer_of_vote`` holds each vote's proposer slot id.
    """
    rings = state.collusion_rings
    voter_ring = rings[flat_voters]
    colluding = voter_ring >= 0
    if not colluding.any():
        return votes_for
    return np.where(colluding, voter_ring == rings[proposer_of_vote], votes_for)
