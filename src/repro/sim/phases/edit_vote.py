"""Edit/vote phase: proposals, batched weighted voting rounds, punishment.

All proposals of one step — across *all* replicates — are settled
simultaneously against the step-start reputation snapshot: candidate
voters are gathered from the articles' cached voter arrays and filtered
in one ragged pass, voter weights are normalized per proposal with the
same grouped-share kernel the bandwidth allocator uses, and outcomes are
scattered back with ``np.add.at``.  Only the RNG draws (proposer masks,
article picks, subsample keys) run in per-replicate loops — each
replicate consumes its own stream exactly as a solo run would.

Vote success is measured against the *simple* weighted majority
(>= 0.5), not the adaptive acceptance bar: a voter should not be punished
for siding with the majority merely because a low-reputation editor
needed a supermajority.
"""

from __future__ import annotations

import numpy as np

from ...core.service import required_majority_values
from ...core.utility import editing_utility_values
from ...network.events import EditEvent, PunishmentEvent
from ..config import SimulationConfig
from ..lanes import take
from ..state import SimState
from .adversary import collusion_votes

__all__ = ["edit_vote_phase"]


def edit_vote_phase(state: SimState, cfg: SimulationConfig) -> None:
    """Draw proposals per replicate, decide them all, book the outcomes.

    Lane-varying knobs (attempt probability, voter-count bounds, majority
    band, utility modifiers) come from ``state.lanes`` — thresholds and
    gathers are per slot/proposal, so each lane decides exactly as its
    sequential run would.
    """
    sc = state.scratch
    sc.reset()
    scheme = state.scheme
    lanes = state.lanes
    online = state.peers.online
    if cfg.enforce_edit_threshold:
        may_edit = scheme.may_edit() & online
    else:
        may_edit = online.copy()
    n = state.n_agents
    n_rep = state.n_replicates
    # Per-replicate proposer draws (stream parity), flat thresholding.
    u = sc.proposer_u
    for r in range(n_rep):
        u[r] = state.rngs[r].random(n)
    proposer_mask = may_edit & (u.reshape(-1) < lanes.edit_attempt_prob)
    proposers_flat = np.flatnonzero(proposer_mask)
    if proposers_flat.size:
        bounds = np.searchsorted(proposers_flat, np.arange(n_rep + 1) * n)
        proposer_rows = [
            proposers_flat[bounds[r] : bounds[r + 1]] - r * n
            for r in range(n_rep)
        ]
        _voting_rounds(state, cfg, proposer_rows)

    state.ctx.u_e = editing_utility_values(
        sc.acc_edits, sc.succ_votes, lanes.u_delta, lanes.u_epsilon
    )
    scheme.record_editing(sc.succ_votes, sc.acc_edits)


def _voting_rounds(
    state: SimState, cfg: SimulationConfig, proposer_rows: list[np.ndarray]
) -> None:
    """Decide every replicate's proposals with one batched voting pass."""
    ctx = state.ctx
    sc = state.scratch
    scheme = state.scheme
    lanes = state.lanes
    n = state.n_agents
    can_vote = scheme.may_vote() & state.peers.online
    all_can_vote = bool(can_vote.all())
    max_voters = lanes.max_voters  # scalar, or (R,) for mixed-config lanes

    # Collection: per replicate only the article draws (stream parity) and
    # the per-proposal voter-array lookups (cached Python objects); every
    # other step below runs once, globally, over all replicates' proposals.
    arrays: list[np.ndarray] = []  # per-proposal candidate voters, local ids
    local_proposer_parts: list[np.ndarray] = []
    article_parts: list[np.ndarray] = []
    rep_prop_counts = np.zeros(state.n_replicates, dtype=np.int64)
    for r, local in enumerate(proposer_rows):
        n_prop_r = local.size
        if not n_prop_r:
            continue
        store = state.articles[r]
        aids = store.sample_articles(state.rngs[r], n_prop_r)
        arts = store.articles
        arrays.extend(arts[aid].voter_array() for aid in aids.tolist())
        local_proposer_parts.append(local)
        article_parts.append(aids)
        rep_prop_counts[r] = n_prop_r

    n_prop = int(rep_prop_counts.sum())
    local_proposers = np.concatenate(local_proposer_parts)
    article_ids = np.concatenate(article_parts)
    rep_of_prop = np.repeat(np.arange(state.n_replicates), rep_prop_counts)
    proposers = local_proposers + rep_of_prop * n

    # One ragged filter over every proposal's candidate voters, processed
    # in chunks of at most ``scale.chunk_size`` candidates (voter pools
    # grow with accepted edits, so unchunked temporaries would scale with
    # pool size, not population).  Chunk boundaries fall between
    # proposals and every step below is elementwise, so the kept voters
    # are identical to a single-pass filter for any chunk size.
    counts = np.fromiter((a.size for a in arrays), dtype=np.int64, count=n_prop)
    if counts.sum():
        cand_local = np.concatenate(arrays)
        flat_voters, cand_prop = state.backend.filter_vote_candidates(
            cand_local,
            counts,
            local_proposers,
            rep_of_prop,
            can_vote,
            all_can_vote,
            n,
            state.config.scale.chunk_size,
        )
        voter_counts = np.bincount(cand_prop, minlength=n_prop)
    else:
        flat_voters = np.empty(0, dtype=np.int64)
        cand_prop = np.empty(0, dtype=np.int64)
        voter_counts = np.zeros(n_prop, dtype=np.int64)

    max_of_prop = take(max_voters, rep_of_prop)  # scalar or (n_prop,)
    if np.any(voter_counts > max_of_prop):
        # Subsample oversubscribed proposals by the random-keys method:
        # one uniform key per candidate, keep each proposal's
        # ``max_voters`` smallest keys — a uniform without-replacement
        # draw.  Keys are drawn per replicate (stream parity: a replicate
        # draws exactly when it has a proposal oversubscribed against
        # *its own* limit, sized to its kept-candidate count), then one
        # stable global lexsort selects within every proposal; replicates
        # that drew no keys keep their original candidate order under
        # key 0.
        keys = np.zeros(flat_voters.size)
        cand_rep = rep_of_prop[cand_prop]
        over_reps = np.unique(rep_of_prop[voter_counts > max_of_prop])
        cand_per_rep = np.bincount(cand_rep, minlength=state.n_replicates)
        rep_bounds = np.concatenate(([0], np.cumsum(cand_per_rep)))
        for r in over_reps.tolist():
            keys[rep_bounds[r] : rep_bounds[r + 1]] = state.rngs[r].random(
                int(cand_per_rep[r])
            )
        order = np.lexsort((keys, cand_prop))
        rank = np.arange(flat_voters.size) - np.repeat(
            np.cumsum(voter_counts) - voter_counts, voter_counts
        )
        # Per-position limit: sorted positions group by proposal in
        # proposal order, so repeating each proposal's limit by its
        # candidate count aligns with ``rank``.
        limit = (
            np.repeat(max_of_prop, voter_counts)
            if isinstance(max_of_prop, np.ndarray)
            else max_of_prop
        )
        keep_sel = order[rank < limit]
        flat_voters = flat_voters[keep_sel]
        voter_counts = np.minimum(voter_counts, max_of_prop)

    flat_prop = np.repeat(np.arange(n_prop), voter_counts)
    prop_constructive = ctx.edit_constructive[proposers]

    if scheme.differentiates_service:
        weights = state.backend.grouped_shares(
            flat_prop, ctx.rep_e[flat_voters], n_prop
        )
        required = required_majority_values(
            ctx.rep_e[proposers],
            take(lanes.rep_e_min, proposers),
            take(lanes.rep_e_max, proposers),
            take(lanes.majority_min, proposers),
            take(lanes.majority_max, proposers),
        )
    else:
        weights = state.backend.grouped_shares(
            flat_prop, np.ones(flat_prop.shape, dtype=np.float64), n_prop
        )
        required = np.full(n_prop, 0.5)

    votes_for = ctx.vote_constructive[flat_voters] == prop_constructive[flat_prop]
    if state.colluder_mask.any() and flat_voters.size:
        votes_for = collusion_votes(
            state, flat_voters, proposers[flat_prop], votes_for
        )
    for_weight = state.backend.tally_votes(flat_prop, weights, votes_for, n_prop)
    quorum = voter_counts >= take(lanes.min_voters, rep_of_prop)
    accepted = quorum & (for_weight >= required)
    majority_for = for_weight >= 0.5
    successful = votes_for == majority_for[flat_prop]

    np.add.at(sc.succ_votes, flat_voters[successful], 1.0)
    newly_banned = scheme.record_vote_outcomes(flat_voters, successful)
    punished = scheme.record_edit_outcomes(proposers, accepted)

    types = state.peers.types[proposers]
    cons_idx = prop_constructive.astype(np.int64)
    np.add.at(sc.proposals_count, (rep_of_prop, types, cons_idx), 1)
    acc = np.flatnonzero(accepted)
    np.add.at(sc.accepted_count, (rep_of_prop[acc], types[acc], cons_idx[acc]), 1)
    np.add.at(sc.acc_edits, proposers[acc], 1.0)
    for p in acc:
        state.articles[int(rep_of_prop[p])].articles[
            int(article_ids[p])
        ].record_accepted(int(local_proposers[p]), bool(prop_constructive[p]))

    # Per-replicate step counters.
    if flat_voters.size:
        rep_of_voter = rep_of_prop[flat_prop]
        np.add.at(sc.votes_cast, rep_of_voter, 1.0)
        np.add.at(sc.votes_successful, rep_of_voter[successful], 1.0)
    if newly_banned.size:
        np.add.at(sc.vote_bans, newly_banned // n, 1.0)
    if punished.size:
        np.add.at(sc.reputation_resets, punished // n, 1.0)

    if any(ev is not None for ev in state.events):
        _record_events(
            state,
            rep_of_prop,
            article_ids,
            local_proposers,
            prop_constructive,
            accepted,
            for_weight,
            required,
            voter_counts,
            newly_banned,
            punished,
        )


def _record_events(
    state: SimState,
    rep_of_prop: np.ndarray,
    article_ids: np.ndarray,
    local_proposers: np.ndarray,
    prop_constructive: np.ndarray,
    accepted: np.ndarray,
    for_weight: np.ndarray,
    required: np.ndarray,
    voter_counts: np.ndarray,
    newly_banned: np.ndarray,
    punished: np.ndarray,
) -> None:
    """Mirror the per-proposal diagnostics into each replicate's log."""
    n = state.n_agents
    for p in range(rep_of_prop.size):
        log = state.events[int(rep_of_prop[p])]
        if log is None:
            continue
        log.record_edit(
            EditEvent(
                step=state.step_count,
                article_id=int(article_ids[p]),
                editor_id=int(local_proposers[p]),
                constructive=bool(prop_constructive[p]),
                accepted=bool(accepted[p]),
                for_weight=float(for_weight[p]),
                required_majority=float(required[p]),
                n_voters=int(voter_counts[p]),
            )
        )
    for peer in newly_banned:
        log = state.events[int(peer) // n]
        if log is not None:
            log.record_punishment(
                PunishmentEvent(state.step_count, int(peer) % n, "vote_ban")
            )
    for peer in punished:
        log = state.events[int(peer) // n]
        if log is not None:
            log.record_punishment(
                PunishmentEvent(state.step_count, int(peer) % n, "reputation_reset")
            )
