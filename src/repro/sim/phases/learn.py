"""Learn phase: temporal-difference backups of the rational learners."""

from __future__ import annotations

from ...core.reputation import reputation_to_state
from ..config import SimulationConfig
from ..state import SimState

__all__ = ["learn_phase"]


def learn_phase(state: SimState, cfg: SimulationConfig, learn: bool) -> None:
    """One stacked TD update from this step's utilities (if learning)."""
    if not learn or not state.rational_idx.size:
        return
    ctx = state.ctx
    scheme = state.scheme
    lanes = state.lanes
    ridx = state.rational_idx
    next_states_s = reputation_to_state(
        scheme.reputation_s()[ridx], cfg.n_states, lanes.disc_s_min, lanes.disc_s_max
    )
    next_states_e = reputation_to_state(
        scheme.reputation_e()[ridx], cfg.n_states, lanes.disc_e_min, lanes.disc_e_max
    )
    state.behavior.learn_sharing(
        ctx.states_s, ctx.share_actions, ctx.u_s, next_states_s
    )
    state.behavior.learn_editing(
        ctx.states_e, ctx.edit_actions, ctx.u_e, next_states_e
    )
