"""Learn phase: temporal-difference backups of the rational learners."""

from __future__ import annotations

from ...core.reputation import reputation_to_state
from ..config import SimulationConfig
from ..state import SimState

__all__ = ["learn_phase"]


def learn_phase(state: SimState, cfg: SimulationConfig, learn: bool) -> None:
    """One stacked TD update from this step's utilities (if learning)."""
    if not learn or not state.rational_idx.size:
        return
    ctx = state.ctx
    scheme = state.scheme
    rep_p = cfg.constants.reputation_s
    rep_pe = cfg.constants.reputation_e
    ridx = state.rational_idx
    next_states_s = reputation_to_state(
        scheme.reputation_s()[ridx], cfg.n_states, rep_p.r_min, rep_p.r_max
    )
    next_states_e = reputation_to_state(
        scheme.reputation_e()[ridx], cfg.n_states, rep_pe.r_min, rep_pe.r_max
    )
    state.behavior.learn_sharing(
        ctx.states_s, ctx.share_actions, ctx.u_s, next_states_s
    )
    state.behavior.learn_editing(
        ctx.states_e, ctx.edit_actions, ctx.u_e, next_states_e
    )
