"""Parameter sweeps with pluggable parallel backends and a run cache.

A sweep is a list of :class:`SimulationConfig`; each runs independently
with its own seeded RNG, so execution order and backend never change the
numbers.  Backends:

* ``serial``  — plain loop (debugging, deterministic profiling);
* ``thread``  — ``ThreadPoolExecutor``; NumPy releases the GIL in the big
  kernels, so threads help despite Python-level stepping;
* ``process`` — ``ProcessPoolExecutor``; true parallelism, the default for
  multi-config experiment grids.

Orthogonally to the backend, ``batch_replicates=True`` collapses
seed-replicate groups (configs identical except ``seed``) into single
:class:`repro.sim.engine.BatchedSimulation` tasks: the ensemble advances
as stacked ``(R, N)`` arrays in one process, amortizing the Python
per-step cost over all replicates while producing bit-identical results
(each replicate keeps its own RNG stream).  On few-core machines this
beats process fan-out; the two compose — grid points fan out across
processes, their seed ensembles vectorize within each.

``lane_batch=True`` goes further: the **lane planner** partitions the
whole grid into maximal *structurally compatible* batches
(:func:`repro.sim.lanes.structural_key` — same population size, article
count, step counts, scheme class, overlay kind ...) and runs each batch
as one heterogeneous-lane :class:`BatchedSimulation`, so a sweep over
temperatures, scheme constants, population mixes or adversary knobs
vectorizes across the *sweep axis itself*, not just across seeds.
Event-collecting configs fall back to solo sequential tasks.  Results
stay bit-identical per config and are cached per config, so lane-batched,
replicate-batched and sequential sweeps all share one store.

With a :class:`repro.store.RunStore` attached (``store=`` argument, or the
ambient default installed via :func:`set_default_store`), a sweep becomes
*incremental and resumable*: configs already in the store are served from
cache without executing, duplicate configs within one grid execute once,
and every freshly finished run is persisted the moment it completes — an
interrupted sweep re-run against the same store only executes the missing
configs.  Execution uses a submit/``as_completed`` loop so persistence and
progress reporting happen as results land, not after the whole grid.

Worker failures are wrapped in :class:`SweepWorkerError`, which names the
failing config's position and content hash; remaining queued work is
cancelled (results persisted before the failure stay in the store).

Progress callbacks receive a :class:`SweepProgress` tail argument —
elapsed seconds, an ETA, and the cached-vs-computed slot split — in
addition to the historical ``(done, total, index, result, cached)``
positional arguments; legacy five-argument callables keep working.  When
the ambient :class:`repro.obs.Tracer` is enabled, the coordinator also
records ``sweep/task`` spans and per-task execution/queue-wait
histograms (``sweep_task_seconds``, ``sweep_queue_wait_seconds``) plus
cached/computed slot counters.

``dispatch="store"`` escapes the single process entirely: the grid is
published into the store as a manifest, deterministically partitioned
into lease-claimable task units, and *every* ``run_sweep`` /
``repro sweep-worker`` invocation pointed at the same store drains it
cooperatively — zero duplicate computation, crash-tolerant via lease
expiry and reclamation.  See :mod:`repro.store.dispatch`.

The worker function is module-level so it pickles under the ``spawn`` start
method.  Results are returned in input order.
"""

from __future__ import annotations

import inspect
import os
import threading
import traceback as traceback_mod
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable

from ..obs import Stopwatch, get_tracer
from .config import SimulationConfig
from .engine import (
    BatchedSimulation,
    SimulationResult,
    replicate_configs,
    run_simulation,
)
from .lanes import estimate_lane_state_bytes, structural_key

__all__ = [
    "run_sweep",
    "replicate",
    "available_workers",
    "SweepWorkerError",
    "SweepFailure",
    "SweepProgress",
    "last_sweep_failures",
    "set_default_store",
    "get_default_store",
    "plan_lane_batches",
    "default_lane_width",
    "DEFAULT_LANE_MEMORY_BUDGET",
]

#: Per-batch state budget (bytes) the lane planner aims for when no
#: explicit ``lane_width`` is given: a compatible group whose estimated
#: stacked footprint (:func:`repro.sim.lanes.estimate_lane_state_bytes`
#: per lane) would exceed this is chunked into narrower batches.  Small
#: grids never hit the budget, so historical plans are unchanged; what it
#: stops is an unbounded lane count multiplying ``(N, N)`` tft history
#: stacks into tens of gigabytes.
DEFAULT_LANE_MEMORY_BUDGET = 2 << 30

#: Ambient store used by sweeps that are not passed one explicitly; lets
#: the experiment runner cache every figure sweep without threading a
#: ``store=`` argument through each experiment module's signature.
_DEFAULT_STORE: Any = None

@dataclass(frozen=True)
class SweepProgress:
    """Live statistics handed to progress callbacks with every slot.

    ``cached``/``computed`` split the ``done`` count by how each slot was
    filled — a store hit (or an in-grid duplicate) versus a fresh
    simulation — so callers no longer have to re-query the store to tell
    the two apart.  ``eta_s`` estimates the remaining wall time from the
    observed per-computed-slot rate; it is ``None`` until the first
    computed slot lands (an all-cached sweep never produces one) and the
    cached prefix makes early estimates optimistic by construction.
    """

    done: int
    total: int
    elapsed_s: float
    eta_s: float | None
    cached: int
    computed: int


#: ``progress(done, total, index, result, cached, stats)`` — invoked once
#: per input config as its result becomes available.  ``cached`` is True
#: when no simulation executed for that slot (store hit, or duplicate of
#: an earlier config in the same sweep); ``stats`` is the running
#: :class:`SweepProgress`.  Legacy five-argument callables (without
#: ``stats``) are still accepted and called with the historical
#: signature.
ProgressCallback = Callable[
    [int, int, int, SimulationResult, bool, SweepProgress], None
]


def _adapt_progress(progress: Callable | None) -> Callable | None:
    """Bridge legacy 5-positional-argument callbacks to the new signature.

    Callables that accept six positional arguments (or ``*args``) are
    used as-is; five-argument ones get the :class:`SweepProgress` tail
    dropped.  Exotic signatures that defeat introspection are assumed
    new-style.
    """
    if progress is None:
        return None
    try:
        params = inspect.signature(progress).parameters.values()
    except (TypeError, ValueError):  # builtins/C callables: assume new-style
        return progress
    if any(p.kind == p.VAR_POSITIONAL for p in params):
        return progress
    n_positional = sum(
        1
        for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    )
    if n_positional >= 6:
        return progress
    return lambda done, total, index, result, cached, stats: progress(
        done, total, index, result, cached
    )


def _cause_traceback(exc: BaseException) -> str:
    """Best available traceback text for a (possibly remote) exception.

    ``_task_worker`` stamps ``_repro_traceback`` onto exceptions before
    they cross the process boundary (instance ``__dict__`` entries
    survive pickling where ``__traceback__`` does not); failing that,
    ``concurrent.futures`` chains a ``_RemoteTraceback`` cause whose
    ``str`` is the remote traceback text; failing both, format whatever
    local traceback the exception still carries.
    """
    text = getattr(exc, "_repro_traceback", "")
    if text:
        return str(text)
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return str(cause)
    return "".join(
        traceback_mod.format_exception(type(exc), exc, exc.__traceback__)
    )


@dataclass(frozen=True)
class SweepFailure:
    """One config quarantined by ``run_sweep(on_error="quarantine")``.

    ``index`` is the config's first position in the input list (``-1``
    when a cooperating dispatch peer quarantined a config this
    invocation never owned); ``attempts`` is how many executions were
    spent before giving up; ``traceback_text`` is the worker-side
    traceback (remote text under ``backend="process"``).  The same
    information persists as the store's ``errors/<config_hash>.json``
    artifact.
    """

    index: int
    config: SimulationConfig
    config_hash: str
    attempts: int
    error: str
    traceback_text: str


#: Failures of the calling thread's most recent quarantine-mode sweep —
#: lets CLI/reporting code enumerate partial-result gaps without
#: threading a callback through every call site.
_SWEEP_FAILURES = threading.local()

#: Per-(worker-)thread flags the most recent ``_task_worker`` call set;
#: ``resumed`` tells an in-process dispatch coordinator that the task
#: continued from a mid-run snapshot rather than step 0.
_TASK_STATE = threading.local()


def last_sweep_failures() -> list[SweepFailure]:
    """Failures recorded by this thread's most recent ``run_sweep``.

    Empty unless that sweep ran with ``on_error="quarantine"`` and at
    least one config exhausted its retry budget.
    """
    return list(getattr(_SWEEP_FAILURES, "value", ()) or ())


class SweepWorkerError(RuntimeError):
    """A sweep worker raised; identifies which config failed.

    Attributes: ``index`` (position in the input list), ``config``,
    ``config_hash`` (the store's content hash, so the failure can be
    correlated with cache state), ``traceback_text`` (the worker-side
    traceback — the *remote* text when the worker was a
    ``backend="process"`` subprocess) and ``task_hashes`` (under
    distributed dispatch, every config hash of the claimed task — so a
    failed task is attributable from any cooperating worker's logs,
    whichever lane actually raised).
    """

    def __init__(
        self,
        index: int,
        config: SimulationConfig,
        cause: BaseException,
        task_hashes: list[str] | None = None,
    ):
        self.index = index
        self.config = config
        self.task_hashes = list(task_hashes or [])
        self.traceback_text = _cause_traceback(cause)
        try:
            # Imported lazily: repro.store imports repro.sim at package
            # init, so a top-level import here would be circular.
            from ..store.hashing import config_hash

            self.config_hash = config_hash(config)
        except Exception:  # pragma: no cover - hashing is total over configs
            self.config_hash = "unknown"
        message = (
            f"sweep config #{index} [{self.config_hash[:12]}] "
            f"({config.describe()}) failed: {cause!r}"
        )
        if self.task_hashes:
            listed = ", ".join(h[:12] for h in self.task_hashes)
            message += f" (claimed task configs: {listed})"
        super().__init__(message)


def set_default_store(store: Any) -> Any:
    """Install the ambient run store; returns the previous one."""
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    return previous


def get_default_store() -> Any:
    """The ambient run store (``None`` unless one was installed)."""
    return _DEFAULT_STORE


def available_workers() -> int:
    """Worker-count default: leave one core for the coordinator.

    Counts the cores this process may actually run on — the CPU
    affinity mask (``os.sched_getaffinity``) where the platform exposes
    it — rather than ``os.cpu_count()``, which reports the whole
    machine and overcommits the pool inside cgroup-limited containers
    (CI runners, ``taskset``/k8s CPU quotas).
    """
    try:
        n_cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux platforms
        n_cores = os.cpu_count() or 2
    return max(1, n_cores - 1)


def _worker(config: SimulationConfig) -> SimulationResult:
    return run_simulation(config)


def _task_worker(
    configs: list[SimulationConfig],
    snapshot: tuple[str, int] | None = None,
) -> list[SimulationResult]:
    """Execute one sweep task: a solo run or a batched replicate group.

    ``snapshot`` is ``(store_root, checkpoint_every)``; when given (and
    no lane collects events) the task runs through
    :class:`repro.resilience.ResumableTask`, persisting a full-state
    snapshot into the store every ``checkpoint_every`` steps and
    resuming bit-identically from the latest one if a prior attempt of
    the same task died mid-run.  Both arguments are positional and
    picklable so the worker still travels through ``spawn`` pools.

    When a chaos :class:`~repro.resilience.FaultPlan` is active, fires
    the ``sweep/compute`` failure point once per config (keyed by the
    config hash, so plans can target one poison config via ``match``).
    """
    _TASK_STATE.resumed = False
    try:
        # Imported lazily: repro.resilience imports repro.sim modules, so
        # a top-level import here would be circular during package init.
        from ..resilience import active_plan, fault_point

        if active_plan() is not None:
            from ..store.hashing import config_hash

            for cfg in configs:
                fault_point("sweep/compute", key=config_hash(cfg))
        if snapshot is not None and not any(c.collect_events for c in configs):
            from ..resilience import ResumableTask

            root, every = snapshot
            task = ResumableTask(
                list(configs), checkpoint_every=every, store_root=root
            )
            results = task.run()
            _TASK_STATE.resumed = bool(task.resumed)
            return results
        if len(configs) == 1:
            return [_worker(configs[0])]
        return BatchedSimulation(configs).run()
    except Exception as exc:
        try:
            # Stamp the worker-side traceback where pickling preserves
            # it; the coordinator surfaces it via SweepWorkerError /
            # quarantine artifacts (see _cause_traceback).
            exc._repro_traceback = traceback_mod.format_exc()
        except Exception:  # exotic __slots__ exceptions: best effort only
            pass
        raise


def _group_replicates(
    pending: list[tuple[SimulationConfig, list[int]]],
) -> list[list[tuple[SimulationConfig, list[int]]]]:
    """Group pending configs that differ only in their seed.

    Each group becomes one :class:`~repro.sim.engine.BatchedSimulation`
    task; event-collecting configs keep solo tasks (the batched engine
    does not record events).  Group order follows first appearance, and
    results still land in input order via the per-config index lists.
    """
    groups: dict[SimulationConfig, list[tuple[SimulationConfig, list[int]]]] = {}
    order: list[list[tuple[SimulationConfig, list[int]]]] = []
    for cfg, indices in pending:
        if cfg.collect_events:
            order.append([(cfg, indices)])
            continue
        key = cfg.with_(seed=0)
        if key not in groups:
            groups[key] = []
            order.append(groups[key])
        groups[key].append((cfg, indices))
    return order


def default_lane_width(
    config: SimulationConfig,
    memory_budget: int = DEFAULT_LANE_MEMORY_BUDGET,
) -> int:
    """Widest batch of ``config``-shaped lanes fitting the state budget.

    Derived from the estimated per-lane footprint
    (:func:`~repro.sim.lanes.estimate_lane_state_bytes`) so callers no
    longer have to guess a safe ``lane_width``: a 100-agent grid still
    batches thousands of lanes wide, a dense-tft 2000-agent grid stops
    at the budget, and a 50k-agent sparse lane runs essentially solo.
    Always at least 1 — a single lane that alone exceeds the budget must
    still be runnable.
    """
    return max(1, int(memory_budget) // max(1, estimate_lane_state_bytes(config)))


def plan_lane_batches(
    pending: list[tuple[SimulationConfig, list[int]]],
    lane_width: int | None = None,
    memory_budget: int = DEFAULT_LANE_MEMORY_BUDGET,
) -> list[list[tuple[SimulationConfig, list[int]]]]:
    """Partition pending configs into maximal lane-compatible batches.

    The lane planner: configs sharing a
    :func:`~repro.sim.lanes.structural_key` land in one batch and run as
    a single heterogeneous-lane
    :class:`~repro.sim.engine.BatchedSimulation`, whatever else differs
    (seeds, temperatures, constants, mixes, churn/adversary knobs).
    Configs with incompatible structural dimensions split into separate
    batches; event-collecting configs keep solo sequential tasks (the
    batched engine does not record events).  Batch order follows first
    appearance and results still land in input order via the per-config
    index lists, so the planning is invisible to callers.

    ``lane_width`` caps the lanes per batch: a compatible group larger
    than the cap is chunked into consecutive batches of at most that
    width.  Use it to keep process-backend parallelism (several chunks
    fan out across workers) and to bound per-batch memory — the dense
    tft scheme's private-history stack is ``(R, N, N)``, so an unbounded
    1000-lane batch holds a thousand ``(N, N)`` matrices at once.  With
    ``None`` (the default) each group derives its own cap from the
    estimated per-lane state footprint against ``memory_budget``
    (:func:`default_lane_width`); small-footprint grids keep maximal
    batches, memory-heavy ones are chunked instead of exhausting RAM.
    An explicit ``lane_width`` always wins over the derived cap.
    """
    if lane_width is not None and lane_width < 1:
        raise ValueError("lane_width must be >= 1")
    groups: dict[tuple, list[tuple[SimulationConfig, list[int]]]] = {}
    widths: dict[tuple, int] = {}
    order: list[list[tuple[SimulationConfig, list[int]]]] = []
    for cfg, indices in pending:
        if cfg.collect_events:
            order.append([(cfg, indices)])
            continue
        key = structural_key(cfg)
        own = (
            lane_width
            if lane_width is not None
            else default_lane_width(cfg, memory_budget)
        )
        batch = groups.get(key)
        # A batch's width is the min over its members' derived widths:
        # non-structural knobs (e.g. a per-lane ledger_cap) can grow the
        # footprint mid-group, and the ledger allocates every row at the
        # batch's widest cap — so a heavy lane narrows the batch it joins.
        # The width is per *open batch*, not per key: once a heavy batch
        # closes, later light-only batches recover their full width.
        if batch is None or len(batch) >= min(widths[key], own):
            batch = groups[key] = []
            widths[key] = own
            order.append(batch)
        else:
            widths[key] = min(widths[key], own)
        batch.append((cfg, indices))
    return order


def run_sweep(
    configs: list[SimulationConfig],
    backend: str = "process",
    workers: int | None = None,
    store: Any = None,
    progress: ProgressCallback | None = None,
    batch_replicates: bool = False,
    lane_batch: bool = False,
    lane_width: int | None = None,
    dispatch: str | None = None,
    lease_expiry_s: float | None = None,
    on_error: str = "raise",
    checkpoint_every: int = 0,
    on_failure: Callable[[SweepFailure], None] | None = None,
    compute_retry: Any = None,
    kernel_backend: str | None = None,
) -> list[SimulationResult]:
    """Run every config; results align with the input list.

    ``store`` (or the ambient default) enables cache-skip and immediate
    persistence; ``progress`` observes each completed slot.

    ``kernel_backend`` (``None`` keeps each config's own ``engine``
    setting) rewrites every config's ``engine.backend`` before
    execution — one switch to run a whole grid on the compiled kernels.
    Execution policy only: the rewrite never changes a config's store
    hash, so sweeps executed on different kernel backends share one
    cache.  Unknown names fail fast here, not inside a worker.

    ``on_error`` picks the failure policy.  ``"raise"`` (default, the
    historical behaviour): the first worker failure raises
    :class:`SweepWorkerError` and cancels remaining work.
    ``"quarantine"`` (requires a store): a failing config is retried up
    to its budget (``compute_retry``, default
    :data:`repro.resilience.DEFAULT_COMPUTE_RETRY` — two attempts), and
    on exhaustion is *quarantined*: an ``errors/<hash>.json`` artifact
    persists the error, remote traceback and fault context, the slot is
    left ``None`` in the returned list, and the sweep keeps draining —
    every healthy config still completes exactly once.  A failing
    multi-lane batch is first split back into solo tasks so only the
    truly poisonous configs quarantine.  Failures are enumerated via
    ``on_failure`` (one :class:`SweepFailure` per quarantined config)
    and :func:`last_sweep_failures`; the progress callback never fires
    for failed slots.  An explicit ``compute_retry``
    (:class:`repro.resilience.RetryPolicy`) also engages retries under
    ``on_error="raise"`` — the error only propagates once the budget is
    exhausted.

    ``checkpoint_every=N`` (requires a store) makes tasks resumable:
    every ``N`` steps each running task persists a full-state snapshot
    (RNG stream state included) under the store's ``checkpoints/``
    directory, and a retried or re-dispatched attempt of the same task
    resumes bit-identically from the latest snapshot instead of step 0.
    Event-collecting configs are exempt (their tasks run the classic
    path).  See :mod:`repro.resilience`.

    ``dispatch="store"`` drains the grid cooperatively with every other
    invocation pointed at the same store (see
    :mod:`repro.store.dispatch`): the grid is published as a manifest,
    partitioned into deterministic lease-claimable task units, and this
    invocation computes only the tasks it wins — configs computed by
    peers are served from the store as they land.  Requires a store;
    parallelism comes from the cooperating *processes*, so claimed
    tasks execute in-process and ``backend``/``workers`` only govern
    the non-dispatchable leftovers (event-collecting configs).
    ``lease_expiry_s`` tunes how long a crashed peer's claim survives
    before survivors reclaim it.  ``dispatch=None`` (or ``"local"``)
    keeps the classic single-invocation behaviour.

    ``batch_replicates=True`` routes seed-replicate groups (configs
    identical except for ``seed`` — exactly what :func:`replicate`
    derives) through the replicate-axis :class:`BatchedSimulation`, so an
    ensemble runs as stacked arrays in one process instead of one
    process per seed.  Results are bit-identical either way and are
    cached per config, so batched and per-seed sweeps share the store.

    ``lane_batch=True`` engages the lane planner
    (:func:`plan_lane_batches`): the whole grid is partitioned into
    maximal structurally-compatible batches, each vectorized as one
    heterogeneous-lane :class:`BatchedSimulation` — the sweep axis
    itself batches, not just the seed axis.  Subsumes
    ``batch_replicates`` (seed replicates are trivially compatible);
    results and cache entries are identical to any other execution
    spelling of the same grid.  ``lane_width`` chunks oversized batches
    (see :func:`plan_lane_batches`) so large grids keep multi-process
    fan-out and bounded per-batch memory.

    Example::

        >>> from repro.sim.config import SimulationConfig
        >>> from repro.sim._sweep import run_sweep
        >>> grid = [SimulationConfig(n_agents=8, n_articles=2,
        ...                          founders_per_article=2,
        ...                          training_steps=5, eval_steps=5,
        ...                          seed=s) for s in (0, 1)]
        >>> results = run_sweep(grid, backend="serial")
        >>> [r.config.seed for r in results]
        [0, 1]
        >>> "shared_bandwidth" in results[0].summary
        True
    """
    if backend not in ("serial", "thread", "process"):
        raise ValueError(f"unknown backend {backend!r}; use serial|thread|process")
    if dispatch not in (None, "local", "store"):
        raise ValueError(f"unknown dispatch {dispatch!r}; use local|store")
    if on_error not in ("raise", "quarantine"):
        raise ValueError(f"unknown on_error {on_error!r}; use raise|quarantine")
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be >= 0 (0 disables snapshots)")
    quarantine = on_error == "quarantine"
    if kernel_backend is not None:
        from .backends import get_backend

        get_backend(kernel_backend)  # fail fast on unknown names
        configs = [
            conf.with_(**{"engine.backend": kernel_backend}) for conf in configs
        ]
    if not configs:
        _SWEEP_FAILURES.value = []
        return []
    store = store if store is not None else _DEFAULT_STORE
    if dispatch == "store" and store is None:
        raise ValueError(
            "dispatch='store' needs a store: the store is the coordination "
            "substrate (pass store= or install a default via set_default_store)"
        )
    if quarantine and store is None:
        raise ValueError(
            "on_error='quarantine' needs a store: quarantine artifacts "
            "persist as errors/<config-hash>.json (pass store= or install "
            "a default via set_default_store)"
        )
    if checkpoint_every > 0 and store is None:
        raise ValueError(
            "checkpoint_every needs a store: snapshots persist under the "
            "store's checkpoints/ directory"
        )
    if compute_retry is not None or quarantine:
        from ..resilience import DEFAULT_COMPUTE_RETRY

        retry_policy = (
            compute_retry if compute_retry is not None else DEFAULT_COMPUTE_RETRY
        )
        attempts_budget = max(1, int(retry_policy.max_attempts))
    else:
        retry_policy = None
        attempts_budget = 1
    snap_root = str(store.root) if checkpoint_every > 0 else None
    failures: list[SweepFailure] = []
    _SWEEP_FAILURES.value = failures
    progress = _adapt_progress(progress)
    tracer = get_tracer()
    n = len(configs)
    results: list[SimulationResult | None] = [None] * n
    done = 0
    n_cached = 0
    n_computed = 0
    watch = Stopwatch()

    def notify(index: int, cached: bool) -> None:
        """Advance the counters and fire the progress callback."""
        nonlocal done, n_cached, n_computed
        done += 1
        if cached:
            n_cached += 1
        else:
            n_computed += 1
        if tracer.enabled:
            tracer.metrics.counter(
                "sweep_slots_total", "Sweep slots filled", outcome=(
                    "cached" if cached else "computed"
                )
            ).inc()
        if progress is not None:
            elapsed = watch.elapsed()
            if n_computed and done < n:
                # Rate over computed slots only: cached slots land in
                # microseconds and would collapse the estimate to ~zero.
                eta = elapsed / n_computed * (n - done)
            else:
                eta = 0.0 if done >= n else None
            progress(
                done,
                n,
                index,
                results[index],
                cached,
                SweepProgress(
                    done=done,
                    total=n,
                    elapsed_s=elapsed,
                    eta_s=eta,
                    cached=n_cached,
                    computed=n_computed,
                ),
            )

    # Cache phase: serve hits and — only when a store provides identity —
    # dedupe identical configs so one execution feeds every duplicate
    # slot.  Without a store every slot executes independently and owns
    # its result object, preserving the store-less semantics.
    pending: list[tuple[SimulationConfig, list[int]]] = []
    groups: dict[SimulationConfig, list[int]] = {}
    for i, cfg in enumerate(configs):
        if cfg in groups:
            # Duplicate of a config already queued: don't re-probe the
            # store (that would count a spurious miss per duplicate);
            # the slot is filled — and counted as a hit — when the one
            # execution lands in the store.
            groups[cfg].append(i)
            continue
        cached = store.get(cfg) if store is not None else None
        if cached is not None:
            results[i] = cached
            notify(i, cached=True)
        elif store is not None and not cfg.collect_events:
            groups[cfg] = [i]
            pending.append((cfg, groups[cfg]))
        else:
            # No store identity, or an event-collecting run (whose events
            # the store cannot persist): every slot executes on its own.
            pending.append((cfg, [i]))

    def complete(cfg: SimulationConfig, indices: list[int], result: SimulationResult):
        """Persist one finished result and fill every slot it serves."""
        if store is not None and not cfg.collect_events:
            store.put(result)
            if quarantine:
                # A success supersedes any stale quarantine artifact a
                # previous run left for this config.
                from ..store.hashing import config_hash

                h = config_hash(cfg)
                if store.has_error(h):
                    store.clear_error(h)
        results[indices[0]] = result
        notify(indices[0], cached=False)
        for idx in indices[1:]:
            # Duplicate slots (storable configs only, see above) get their
            # own result object — a fresh cache read — so in-place
            # mutation of one slot can't alias another.
            results[idx] = store.get(cfg)
            notify(idx, cached=True)

    def quarantine_artifact(
        cfg: SimulationConfig, exc: BaseException, attempts: int
    ) -> str:
        """Persist the ``errors/<hash>.json`` artifact for one config.

        Also drops the config's stale solo snapshot (a quarantined task
        never completes, so nothing else would).  Returns the hash.
        """
        from ..resilience import active_plan, build_error_payload, snapshot_key
        from ..store.hashing import canonical_config_dict, config_hash

        h = config_hash(cfg)
        store.put_error(
            build_error_payload(
                config_hash=h,
                error=exc,
                traceback_text=_cause_traceback(exc),
                attempts=attempts,
                config=canonical_config_dict(cfg),
                plan=active_plan(),
            )
        )
        if snap_root is not None:
            store.delete_snapshot(snapshot_key([h]))
        return h

    def record_failure(
        cfg: SimulationConfig, index: int, exc: BaseException, attempts: int
    ) -> None:
        """Quarantine ``cfg`` locally: artifact, counters, enumeration."""
        h = quarantine_artifact(cfg, exc, attempts)
        failure = SweepFailure(
            index=index,
            config=cfg,
            config_hash=h,
            attempts=attempts,
            error=repr(exc),
            traceback_text=_cause_traceback(exc),
        )
        failures.append(failure)
        if tracer.enabled:
            tracer.metrics.counter(
                "resilience_quarantined_total",
                "Configs settled by a quarantine artifact",
            ).inc()
        if on_failure is not None:
            on_failure(failure)

    def drop_task_snapshot(
        task: list[tuple[SimulationConfig, list[int]]]
    ) -> None:
        """A failed batch about to be split never completes as a batch —
        drop its stale batch-level snapshot."""
        if snap_root is None:
            return
        from ..resilience import snapshot_key
        from ..store.hashing import config_hash

        store.delete_snapshot(snapshot_key([config_hash(c) for c, _ in task]))

    if dispatch == "store":
        # Imported lazily: repro.store imports repro.sim at package init,
        # so a top-level import here would be circular.
        from ..store.dispatch import (
            DEFAULT_DISPATCH_LANE_WIDTH,
            DEFAULT_LEASE_EXPIRY_S,
            StoreDispatcher,
            plan_dispatch_tasks,
            publish_sweep_grid,
        )

        # Event-collecting configs cannot travel through the store; they
        # stay behind for the classic local path below.
        shared: dict[SimulationConfig, list[int]] = {
            cfg: indices for cfg, indices in pending if not cfg.collect_events
        }
        pending = [(cfg, indices) for cfg, indices in pending if cfg.collect_events]
        width = lane_width if lane_width is not None else DEFAULT_DISPATCH_LANE_WIDTH
        # Publish and plan over the FULL storable grid — cached configs
        # included — never over this invocation's pending remainder:
        # every cooperating worker must derive identical task keys, and
        # what is already cached differs per invocation over time.
        _, grid = publish_sweep_grid(
            store, [cfg for cfg in configs if not cfg.collect_events], lane_width=width
        )
        if grid:
            dispatch_tasks = plan_dispatch_tasks(grid, lane_width=width)
            dispatcher = StoreDispatcher(
                store,
                expiry_s=(
                    lease_expiry_s
                    if lease_expiry_s is not None
                    else DEFAULT_LEASE_EXPIRY_S
                ),
            )

            def execute_claimed(
                cfgs: list[SimulationConfig],
            ) -> list[SimulationResult]:
                """One retry-wrapped in-process execution of claimed lanes."""
                spec = (snap_root, checkpoint_every) if snap_root else None
                if retry_policy is None:
                    out = _task_worker(cfgs, spec)
                else:
                    out = retry_policy.call(
                        lambda: _task_worker(cfgs, spec), site="sweep/compute"
                    )
                if getattr(_TASK_STATE, "resumed", False):
                    # Claimed tasks execute in-process, so the worker's
                    # thread-local resume flag is visible here.
                    dispatcher.note_resumed()
                return out

            def run_claimed(
                task_configs: list[SimulationConfig], task: Any
            ) -> list[SimulationResult | None]:
                """Execute one claimed task's missing lanes in-process."""
                try:
                    return execute_claimed(task_configs)
                except Exception as exc:
                    if not quarantine:
                        indices = shared.get(task_configs[0])
                        raise SweepWorkerError(
                            indices[0] if indices else -1,
                            task_configs[0],
                            exc,
                            task_hashes=list(task.config_hashes),
                        ) from exc
                    if len(task_configs) == 1:
                        quarantine_artifact(task_configs[0], exc, attempts_budget)
                        return [None]
                    # Blast-radius isolation: one poisoned lane failed
                    # the whole claimed task; rerun each lane solo so
                    # only the truly failing configs quarantine and the
                    # healthy lanes still land under this lease.
                    drop_task_snapshot([(c, []) for c in task_configs])
                    out: list[SimulationResult | None] = []
                    for cfg in task_configs:
                        try:
                            out.extend(execute_claimed([cfg]))
                        except Exception as solo_exc:
                            quarantine_artifact(cfg, solo_exc, attempts_budget)
                            out.append(None)
                    return out

            def on_failed(cfg: SimulationConfig, config_hash_: str) -> None:
                """Enumerate a quarantined config — ours or a peer's.

                The drain fires this exactly once per failed config
                (artifact already persisted, by us in ``run_claimed`` or
                by a peer), so this is the single place dispatch-mode
                failures are recorded; the artifact supplies the details
                for configs a peer quarantined.  Slots stay ``None``.
                """
                indices = shared.pop(cfg, None)
                payload = store.get_error(config_hash_) or {}
                failure = SweepFailure(
                    index=indices[0] if indices else -1,
                    config=cfg,
                    config_hash=config_hash_,
                    attempts=int(payload.get("attempts", 0) or 0),
                    error=str(payload.get("error", "")),
                    traceback_text=str(payload.get("traceback", "")),
                )
                failures.append(failure)
                if on_failure is not None:
                    on_failure(failure)

            def on_computed(
                cfg: SimulationConfig, config_hash_: str, result: SimulationResult
            ) -> None:
                """Persist a locally computed result and fill its slots."""
                indices = shared.pop(cfg, None)
                if indices is not None:
                    complete(cfg, indices, result)
                else:  # not one of ours (e.g. a reclaimed peer task): persist only
                    store.put(result)

            def on_served(cfg: SimulationConfig, config_hash_: str) -> None:
                """Fill slots for a config a peer (or the cache) provided."""
                indices = shared.pop(cfg, None)
                if indices is None:
                    return  # already served during the cache phase
                for idx in indices:
                    # One fresh cache read per slot, so in-place mutation
                    # of one result can't alias another.
                    results[idx] = store.get(cfg)
                    notify(idx, cached=True)

            dispatcher.drain(
                dispatch_tasks,
                run_claimed,
                on_computed,
                on_served,
                on_failed=on_failed if quarantine else None,
                quarantine=quarantine,
            )

    if pending:
        if lane_batch:
            tasks = plan_lane_batches(pending, lane_width=lane_width)
        elif batch_replicates:
            tasks = _group_replicates(pending)
        else:
            tasks = [[item] for item in pending]

        def complete_task(
            task: list[tuple[SimulationConfig, list[int]]],
            task_results: list[SimulationResult],
        ) -> None:
            """Book every (config, result) pair of one finished task."""
            for (cfg, indices), result in zip(task, task_results):
                complete(cfg, indices, result)

        def book_task_metrics(
            task: list[tuple[SimulationConfig, list[int]]],
            task_results: list[SimulationResult],
            turnaround_s: float,
        ) -> None:
            """Record per-task telemetry (span, timings, queue wait).

            ``turnaround_s`` is submit-to-completion; the queue wait is
            the part of it not explained by the task's own reported
            execution time (which each result carries as its amortized
            share, so their sum is the task's wall time).
            """
            exec_s = sum(r.wall_time_s for r in task_results)
            tracer.record(
                "sweep/task", exec_s, attrs={"backend": backend, "lanes": len(task)}
            )
            tracer.metrics.histogram(
                "sweep_task_seconds", "Per-task execution wall time"
            ).observe(exec_s)
            tracer.metrics.histogram(
                "sweep_queue_wait_seconds",
                "Submit-to-completion time not spent executing",
            ).observe(max(0.0, turnaround_s - exec_s))

        def snapshot_spec(
            task: list[tuple[SimulationConfig, list[int]]]
        ) -> tuple[str, int] | None:
            """The ``_task_worker`` snapshot argument for one task."""
            if snap_root is None or any(c.collect_events for c, _ in task):
                return None
            return (snap_root, checkpoint_every)

        if backend == "serial" or len(tasks) == 1:

            def execute_task(
                task: list[tuple[SimulationConfig, list[int]]]
            ) -> list[SimulationResult]:
                """One retry-wrapped execution of a task, in-process."""
                cfgs = [cfg for cfg, _ in task]
                spec = snapshot_spec(task)
                if retry_policy is None:
                    return _task_worker(cfgs, spec)
                return retry_policy.call(
                    lambda: _task_worker(cfgs, spec), site="sweep/compute"
                )

            for task in tasks:
                task_watch = Stopwatch()
                try:
                    task_results = execute_task(task)
                except Exception as exc:
                    if not quarantine:
                        raise SweepWorkerError(task[0][1][0], task[0][0], exc) from exc
                    if len(task) > 1:
                        # Blast-radius isolation: one poisoned lane
                        # failed the whole batch; rerun each lane solo
                        # so only the truly failing configs quarantine
                        # and the healthy lanes still land.
                        drop_task_snapshot(task)
                        for item in task:
                            try:
                                solo = execute_task([item])
                            except Exception as solo_exc:
                                record_failure(
                                    item[0], item[1][0], solo_exc, attempts_budget
                                )
                                continue
                            complete(item[0], item[1], solo[0])
                    else:
                        record_failure(
                            task[0][0], task[0][1][0], exc, attempts_budget
                        )
                    continue
                if tracer.enabled:
                    book_task_metrics(task, task_results, task_watch.elapsed())
                complete_task(task, task_results)
        else:
            pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
            workers = workers if workers is not None else available_workers()
            workers = max(1, min(workers, len(tasks)))
            if tracer.enabled:
                tracer.metrics.gauge(
                    "sweep_workers", "Worker-pool width of the last sweep"
                ).set(workers)
            with pool_cls(max_workers=workers) as pool:
                #: future -> (task, attempt number) — attempts matter
                #: only under a retry policy, where a failed task is
                #: resubmitted until its budget runs out (checkpointed
                #: tasks resume from their latest snapshot, so a retry
                #: repeats only the steps since the last checkpoint).
                futures: dict[
                    Future, tuple[list[tuple[SimulationConfig, list[int]]], int]
                ] = {}

                def submit(
                    task: list[tuple[SimulationConfig, list[int]]], attempt: int
                ) -> Future:
                    fut = pool.submit(
                        _task_worker,
                        [cfg for cfg, _ in task],
                        snapshot_spec(task),
                    )
                    futures[fut] = (task, attempt)
                    return fut

                not_done = {submit(task, 1) for task in tasks}
                # Every task is submitted up front, so one watch dates
                # all submissions for the queue-wait measurement.
                submitted = Stopwatch()
                try:
                    while not_done:
                        finished, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        # Drain every success in the batch before raising:
                        # finished work must reach the store even when a
                        # sibling future in the same batch failed.
                        failure: tuple[int, SimulationConfig, Exception] | None = None
                        for fut in finished:
                            task, attempt = futures.pop(fut)
                            try:
                                task_results = fut.result()
                            except Exception as exc:
                                if attempt < attempts_budget:
                                    not_done.add(submit(task, attempt + 1))
                                elif not quarantine:
                                    if failure is None:
                                        failure = (task[0][1][0], task[0][0], exc)
                                elif len(task) > 1:
                                    # Blast-radius isolation, pool
                                    # spelling: resubmit each lane solo
                                    # with a fresh attempt budget.
                                    drop_task_snapshot(task)
                                    for item in task:
                                        not_done.add(submit([item], 1))
                                else:
                                    record_failure(
                                        task[0][0], task[0][1][0], exc, attempt
                                    )
                                continue
                            if tracer.enabled:
                                book_task_metrics(
                                    task, task_results, submitted.elapsed()
                                )
                            complete_task(task, task_results)
                        if failure is not None:
                            raise SweepWorkerError(*failure) from failure[2]
                except BaseException:
                    for fut in not_done:
                        fut.cancel()
                    raise

    # Every slot is filled — except, under on_error="quarantine", slots
    # of quarantined configs, which stay None (enumerated in failures).
    return results  # type: ignore[return-value]


def replicate(
    config: SimulationConfig, n_seeds: int, root_seed: int | None = None
) -> list[SimulationConfig]:
    """``n_seeds`` copies of one config with independent derived seeds.

    The derived configs differ only in their seed, so feeding them to
    :func:`run_sweep` with ``batch_replicates=True`` executes the whole
    ensemble as one replicate-axis batch.  Delegates to
    :func:`repro.sim.engine.replicate_configs` — the single derivation
    rule — so the seeds (and therefore the cache entries) are exactly
    those of :func:`repro.sim.engine.run_replicates`.
    """
    return replicate_configs(config, n_seeds, root_seed)
