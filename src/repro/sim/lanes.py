"""Lane-axis parameterization: heterogeneous configs in one batched state.

PR 2 introduced a *replicate* axis — ``R`` seed-varied copies of one
config stepped in lock-step.  This module generalizes it into a **lane**
axis: the ``R`` stacked populations may now carry *different* configs, as
long as they agree on the **structural dimensions** that fix array shapes
and code paths (:data:`STRUCTURAL_FIELDS`).  Everything else —
temperatures, scheme constants, population mixes, churn rates, adversary
knobs, per-scheme parameters — is lifted into per-lane ``(R,)`` or
per-slot ``(R * N,)`` parameter arrays threaded through the phase kernels
and incentive ledgers.

Bit-identity is preserved lane for lane because every lifted parameter is
consumed **elementwise** (or gathered per slot/proposal/request): lane
``r``'s slots see exactly the scalar values a sequential run of lane
``r``'s config would use, combined by the same floating-point operations
in the same order.  The one non-elementwise site — RNG draws — already
loops per lane, consuming each lane's own stream.

Uniform batches (all lanes sharing a value) keep plain Python scalars so
the homogeneous fast path executes the exact pre-lane instruction
sequence with zero broadcasting overhead; :func:`lane_values` /
:func:`slot_values` collapse to a scalar whenever possible, and
:func:`take` makes gather sites transparent to which form they got.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..core.params import gather_param
from .config import SimulationConfig

__all__ = [
    "STRUCTURAL_FIELDS",
    "SCALE_STRUCTURAL_FIELDS",
    "structural_key",
    "assert_lane_compatible",
    "estimate_lane_state_bytes",
    "lane_values",
    "slot_values",
    "rational_values",
    "take",
    "LaneParams",
    "build_lane_params",
    "lane_constants",
]

#: Config fields every lane of one batch must share: they size arrays
#: (agents, articles, Q-states), pick code paths (scheme class, overlay
#: kind, edit gate, event collection) or drive the shared protocol loop
#: (step counts, learning flag).  ``resolved_scheme`` is compared
#: separately so ``scheme="auto"`` batches with its concrete spelling.
STRUCTURAL_FIELDS: tuple[str, ...] = (
    "n_agents",
    "n_articles",
    "founders_per_article",
    "n_states",
    "training_steps",
    "eval_steps",
    "learn_during_eval",
    "overlay_kind",
    "enforce_edit_threshold",
    "collect_events",
    "reputation_fn_s",
    "reputation_fn_e",
)


#: Scale-section leaves every lane of one batch must share: they pick the
#: storage code path (sparse on/off), size shared execution chunks, or
#: gate the one shared metrics collector.  ``ledger_cap`` is deliberately
#: absent — it lifts per lane like any other scheme knob (the ledger
#: allocates the widest cap and evicts each row at its own).
SCALE_STRUCTURAL_FIELDS: tuple[str, ...] = (
    "sparse",
    "chunk_size",
    "stream_metrics_threshold",
)


def structural_key(config: SimulationConfig) -> tuple:
    """Hashable batch-compatibility key: configs batch iff keys match.

    The kernel backend (``engine.backend``) is structural: a batched
    state owns one kernel set shared by every lane, so replicates may
    only fuse when they execute on the same backend.  (It is *not* part
    of the store hash — results are backend-invariant.)
    """
    return (
        tuple(getattr(config, f) for f in STRUCTURAL_FIELDS)
        + tuple(getattr(config.scale, f) for f in SCALE_STRUCTURAL_FIELDS)
        + (config.resolved_scheme, config.engine.backend)
    )


def assert_lane_compatible(configs: Sequence[SimulationConfig]) -> None:
    """Raise ``ValueError`` naming the structural fields that differ."""
    key = structural_key(configs[0])
    for other in configs[1:]:
        if structural_key(other) == key:
            continue
        bad = [
            f
            for f in STRUCTURAL_FIELDS
            if getattr(other, f) != getattr(configs[0], f)
        ]
        bad += [
            f"scale.{f}"
            for f in SCALE_STRUCTURAL_FIELDS
            if getattr(other.scale, f) != getattr(configs[0].scale, f)
        ]
        if configs[0].resolved_scheme != other.resolved_scheme:
            bad.append("scheme")
        if configs[0].engine.backend != other.engine.backend:
            bad.append("engine.backend")
        raise ValueError(
            "lane configs must share the structural dimensions; "
            f"these differ: {', '.join(bad)}"
        )


#: Rough per-slot float64 array count across peers, schemes, scratch and
#: phase-context buffers (state.py allocates ~30 such vectors; round up).
_PER_SLOT_ARRAYS = 40
#: Per-step series rows the metrics collector keeps (``(R, steps)``
#: float64 each, counting the two ``(R, steps, 3, 2)`` count cubes as 12).
_METRIC_SERIES = 32


def estimate_lane_state_bytes(config: SimulationConfig) -> int:
    """Estimated resident bytes one lane of ``config`` adds to a batch.

    Deliberately coarse (within ~2x): it only needs to stop the lane
    planner from stacking thousands of ``(N, N)`` tit-for-tat matrices —
    the lane-width memory hazard — not to model the allocator.  Counts
    the per-slot vectors, the scheme's pairwise state (quadratic dense,
    ``N * cap`` sparse) and the per-step metric series.
    """
    n = config.n_agents
    bytes_ = _PER_SLOT_ARRAYS * 8 * n
    if config.resolved_scheme == "tft":
        if config.scale.sparse:
            cap = min(config.scale.ledger_cap, max(n - 1, 1))
            bytes_ += n * cap * 16  # int64 partner + float64 amount
        else:
            bytes_ += n * n * 8
    bytes_ += _METRIC_SERIES * 8 * config.total_steps
    return bytes_


def _collapse(values: list, dtype) -> Any:
    """Scalar if every entry equals the first, else an array of ``dtype``."""
    first = values[0]
    if all(v == first for v in values[1:]):
        return first
    return np.asarray(values, dtype=dtype)


def lane_values(
    configs: Sequence[Any], attr: str, dtype=np.float64
) -> float | np.ndarray:
    """Per-lane ``(R,)`` values of one attribute (scalar when uniform)."""
    return _collapse([getattr(c, attr) for c in configs], dtype)


def slot_values(
    configs: Sequence[Any], attr: str, n_agents: int, dtype=np.float64
) -> float | np.ndarray:
    """Per-slot ``(R * N,)`` expansion of a per-lane attribute."""
    out = lane_values(configs, attr, dtype)
    if isinstance(out, np.ndarray):
        out = np.repeat(out, n_agents)
    return out


def rational_values(
    configs: Sequence[SimulationConfig],
    attr: str,
    n_agents: int,
    rational_idx: np.ndarray,
    dtype=np.float64,
) -> float | np.ndarray:
    """Per-*rational-slot* expansion, ordered like ``rational_idx``."""
    out = slot_values(configs, attr, n_agents, dtype)
    if isinstance(out, np.ndarray):
        out = out[rational_idx]
    return out


#: Gather a scalar-or-array lane parameter at slot/lane indices — the
#: single idiom every kernel gather site uses.  Hosted in
#: :mod:`repro.core.params` so the scheme books share the one definition.
take = gather_param


class _Section:
    """Attribute bundle duck-typing a constants section.

    Leaves are per-slot arrays (or scalars when uniform), consumed only
    through elementwise numpy operations.
    """

    def __init__(self, **leaves: Any) -> None:
        self.__dict__.update(leaves)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_Section({', '.join(sorted(self.__dict__))})"


#: Leaf fields lifted per constants section (all consumed elementwise).
_CONSTANT_LEAVES = {
    "reputation_s": ("g", "beta", "r_min", "r_max"),
    "reputation_e": ("g", "beta", "r_min", "r_max"),
    "contribution": (
        "alpha_s",
        "beta_s",
        "d_s",
        "alpha_e",
        "beta_e",
        "d_e",
        "retention",
    ),
    "service": (
        "edit_threshold",
        "majority_min",
        "majority_max",
        "vote_punish_threshold",
        "edit_punish_threshold",
    ),
    "utility": ("alpha", "beta", "gamma", "delta", "epsilon"),
}


def lane_constants(constants_list: list, n_agents: int):
    """Per-lane ``PaperConstants`` collapsed into one scheme-consumable form.

    Uniform batches return the shared :class:`~repro.core.params.PaperConstants`
    unchanged (the historical fast path).  Heterogeneous batches return a
    duck-typed bundle whose sections carry per-slot ``(R * N,)`` arrays for
    the leaves that differ — bit-identical per lane because every consumer
    (reputation functions, contribution ledger, punishment trackers,
    majority interpolation, utilities) applies them elementwise.
    """
    first = constants_list[0]
    if all(c == first for c in constants_list[1:]):
        return first
    sections = {}
    for section, leaves in _CONSTANT_LEAVES.items():
        objs = [getattr(c, section) for c in constants_list]
        sections[section] = _Section(
            **{
                leaf: slot_values(objs, leaf, n_agents)
                for leaf in leaves
            }
        )
    return _Section(**sections)


@dataclass
class LaneParams:
    """Every lane-lifted parameter the phase kernels read per step.

    Each field is a plain scalar when all lanes agree (homogeneous
    batches run the exact pre-lane fast path) or an array — per-lane
    ``(R,)``, per-slot ``(R * N,)`` or per-rational-slot — consumed via
    broadcasting and :func:`take` gathers.
    """

    # Protocol temperatures, per lane (R,).
    t_train: float | np.ndarray
    t_eval: float | np.ndarray
    # Workload knobs.
    download_probability: float | np.ndarray  # per lane (R,)
    edit_attempt_prob: float | np.ndarray  # per slot (R*N,)
    max_voters: int | np.ndarray  # per lane (R,)
    min_voters: int | np.ndarray  # per lane (R,)
    # Adversary kernel rates, per lane (R,).
    sybil_rate: float | np.ndarray
    #: Per-lane "does this lane even have sybil slots" gate (stream parity:
    #: a lane without attackers must not draw).
    sybil_any: np.ndarray  # (R,) bool
    # Utility modifiers, per slot (R*N,).
    u_alpha: float | np.ndarray
    u_beta: float | np.ndarray
    u_gamma: float | np.ndarray
    u_delta: float | np.ndarray
    u_epsilon: float | np.ndarray
    # Reputation-state discretization bounds, per rational slot.
    disc_s_min: float | np.ndarray
    disc_s_max: float | np.ndarray
    disc_e_min: float | np.ndarray
    disc_e_max: float | np.ndarray
    # Adaptive-majority interpolation inputs, per slot (R*N,).
    majority_min: float | np.ndarray
    majority_max: float | np.ndarray
    rep_e_min: float | np.ndarray
    rep_e_max: float | np.ndarray


def build_lane_params(
    configs: Sequence[SimulationConfig],
    rational_idx: np.ndarray,
    sybil_any: np.ndarray,
) -> LaneParams:
    """Assemble the :class:`LaneParams` for one batch of lane configs."""
    n = configs[0].n_agents
    consts = [c.constants for c in configs]
    util = [c.utility for c in consts]
    rep_s = [c.reputation_s for c in consts]
    rep_e = [c.reputation_e for c in consts]
    svc = [c.service for c in consts]

    def rat(objs, attr):
        """Per-rational-slot values of one constants-section attribute."""
        return rational_values(objs, attr, n, rational_idx)

    return LaneParams(
        t_train=lane_values(configs, "t_train"),
        t_eval=lane_values(configs, "t_eval"),
        download_probability=lane_values(configs, "download_probability"),
        edit_attempt_prob=slot_values(configs, "edit_attempt_prob", n),
        max_voters=lane_values(configs, "max_voters_per_edit", np.int64),
        min_voters=lane_values(configs, "min_voters_per_edit", np.int64),
        sybil_rate=lane_values(configs, "sybil_rate"),
        sybil_any=np.asarray(sybil_any, dtype=bool),
        u_alpha=slot_values(util, "alpha", n),
        u_beta=slot_values(util, "beta", n),
        u_gamma=slot_values(util, "gamma", n),
        u_delta=slot_values(util, "delta", n),
        u_epsilon=slot_values(util, "epsilon", n),
        disc_s_min=rat(rep_s, "r_min"),
        disc_s_max=rat(rep_s, "r_max"),
        disc_e_min=rat(rep_e, "r_min"),
        disc_e_max=rat(rep_e, "r_max"),
        majority_min=slot_values(svc, "majority_min", n),
        majority_max=slot_values(svc, "majority_max", n),
        rep_e_min=slot_values(rep_e, "r_min", n),
        rep_e_max=slot_values(rep_e, "r_max", n),
    )
