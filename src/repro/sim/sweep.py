"""Parameter sweeps with pluggable parallel backends.

A sweep is a list of :class:`SimulationConfig`; each runs independently
with its own seeded RNG, so execution order and backend never change the
numbers.  Backends:

* ``serial``  — plain loop (debugging, deterministic profiling);
* ``thread``  — ``ThreadPoolExecutor``; NumPy releases the GIL in the big
  kernels, so threads help despite Python-level stepping;
* ``process`` — ``ProcessPoolExecutor``; true parallelism, the default for
  multi-config experiment grids.

The worker function is module-level so it pickles under the ``spawn`` start
method.  Results are returned in input order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from .config import SimulationConfig
from .engine import SimulationResult, run_simulation
from .rng import spawn_seeds

__all__ = ["run_sweep", "replicate", "available_workers"]


def available_workers() -> int:
    """Worker-count default: leave one core for the coordinator."""
    return max(1, (os.cpu_count() or 2) - 1)


def _worker(config: SimulationConfig) -> SimulationResult:
    return run_simulation(config)


def run_sweep(
    configs: list[SimulationConfig],
    backend: str = "process",
    workers: int | None = None,
) -> list[SimulationResult]:
    """Run every config; results align with the input list."""
    if not configs:
        return []
    if backend == "serial" or len(configs) == 1:
        return [_worker(c) for c in configs]
    workers = workers if workers is not None else available_workers()
    workers = max(1, min(workers, len(configs)))
    if backend == "thread":
        pool_cls = ThreadPoolExecutor
    elif backend == "process":
        pool_cls = ProcessPoolExecutor
    else:
        raise ValueError(f"unknown backend {backend!r}; use serial|thread|process")
    with pool_cls(max_workers=workers) as pool:
        return list(pool.map(_worker, configs))


def replicate(
    config: SimulationConfig, n_seeds: int, root_seed: int | None = None
) -> list[SimulationConfig]:
    """``n_seeds`` copies of one config with independent derived seeds."""
    if n_seeds < 1:
        raise ValueError("n_seeds must be >= 1")
    root = config.seed if root_seed is None else root_seed
    return [config.with_(seed=s) for s in spawn_seeds(root, n_seeds)]
