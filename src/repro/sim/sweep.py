"""Deprecated import path for the sweep layer.

The implementation moved to :mod:`repro.sim._sweep`; the supported
public surface is the :mod:`repro.api` facade (``repro.api.sweep``,
``repro.api.compose``, ``repro.api.open_store``).  Importing this module
keeps every historical name working but emits a
:class:`DeprecationWarning` once.

The alias is *identity-preserving*: this entry in ``sys.modules`` is
replaced by the real implementation module, so monkeypatching
``repro.sim.sweep.run_simulation`` (a pattern test suites rely on)
still patches the module the engine actually executes.
"""

from __future__ import annotations

import sys
import warnings

from . import _sweep

warnings.warn(
    "repro.sim.sweep is deprecated; use the repro.api facade "
    "(repro.api.sweep) — or repro.sim._sweep for internals",
    DeprecationWarning,
    stacklevel=2,
)

sys.modules[__name__] = _sweep
