"""Simulation configuration (paper section IV-B plus our documented gaps).

Everything a run needs is in one picklable dataclass so sweeps can ship
configs across process boundaries.  Paper-fixed values keep the paper's
numbers as defaults (100 agents, 10 states, 10 000 training steps,
``T = inf`` training / ``T = 1`` evaluation); paper-open values are
documented at their field definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..agents.population import PopulationMix
from ..core.params import PaperConstants

__all__ = ["EngineConfig", "ScaleConfig", "SimulationConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """How the engine executes a run — never *what* it computes.

    Every knob here is excluded from the store's config hash: results
    are backend-invariant by contract (see ``docs/BACKENDS.md``), so two
    runs differing only in ``engine.*`` are the same experiment.  The
    backend *is* structural for lane batching — replicates fused into
    one batched state must share one kernel set.
    """

    #: Kernel backend executing the hot inner loops; a name registered
    #: in :mod:`repro.sim.backends` ("numpy" is the always-on reference,
    #: "compiled" the Numba-JIT set with a documented graceful fallback).
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError("engine.backend must be a non-empty backend name")


@dataclass(frozen=True)
class ScaleConfig:
    """Memory-bounded scale path (docs/ARCHITECTURE.md, "Scale path").

    The default configuration reproduces the historical engine exactly:
    dense pairwise state, unchunked-in-practice kernels (the chunk is far
    larger than any small-N request batch) and fully gathered metrics.
    Large-population packs flip ``sparse`` and rely on the thresholded
    streaming collector; see the ``scale/`` scenario family.
    """

    #: Store the tit-for-tat private history as a capped sparse ledger
    #: (O(N·cap)) instead of the dense (R, N, N) matrix (O(N²)).  Bit-
    #: identical to dense while no peer exceeds ``ledger_cap`` distinct
    #: partners; beyond that the smallest (most-decayed) entry is evicted.
    sparse: bool = False
    #: Partners remembered per peer on the sparse path.  Lane batching
    #: lifts this per lane like any other non-structural knob.
    ledger_cap: int = 64
    #: Rows per vectorized chunk in the sparse-ledger and edit/vote
    #: gather kernels; bounds peak temporaries without changing results
    #: (processing stays in input order).
    chunk_size: int = 32_768
    #: Populations at or above this stream per-step metric reductions
    #: (bincount segment sums) instead of materializing per-type gather
    #: buffers.  Streams only aggregate differently — summaries are
    #: statistically identical, bitwise equal only below the threshold.
    stream_metrics_threshold: int = 10_000

    def __post_init__(self) -> None:
        if self.ledger_cap < 1:
            raise ValueError("ledger_cap must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.stream_metrics_threshold < 2:
            raise ValueError("stream_metrics_threshold must be >= 2")


@dataclass(frozen=True)
class SimulationConfig:
    """Full specification of one simulation run."""

    # --- population (paper: 100 agents) ------------------------------
    n_agents: int = 100
    mix: PopulationMix = field(
        default_factory=lambda: PopulationMix(rational=1.0, altruistic=0.0, irrational=0.0)
    )

    # --- scheme -------------------------------------------------------
    incentives_enabled: bool = True
    #: Which incentive scheme drives service differentiation:
    #: "auto" resolves to the paper's reputation scheme when
    #: ``incentives_enabled`` else the no-incentive baseline; "tft" is the
    #: private-history tit-for-tat baseline, "karma" the trade-based
    #: currency baseline (see :mod:`repro.core.baselines`).
    scheme: str = "auto"
    constants: PaperConstants = field(default_factory=PaperConstants)
    #: Reputation-function family for the sharing reputation; one of the
    #: keys of :data:`repro.core.reputation.REPUTATION_FUNCTIONS`.  Used by
    #: the future-work ablation; the paper's choice is "logistic".
    reputation_fn_s: str = "logistic"
    reputation_fn_e: str = "logistic"
    #: Newcomer grant of the karma baseline (``scheme="karma"``): the
    #: balance a fresh identity starts with.  The grant is what makes
    #: currencies whitewash-prone, so sweeps vary it.
    karma_initial: float = 1.0
    #: Bootstrap floor added to every downloader's karma weight so broke
    #: newcomers are not starved outright.
    karma_floor: float = 0.05
    #: Optimistic-unchoke floor of the tit-for-tat baseline
    #: (``scheme="tft"``): the weight a stranger gets before any direct
    #: experience exists — the scheme's "forgiveness" knob.
    tft_optimistic_floor: float = 0.05
    #: Geometric decay of the tit-for-tat private history per settlement
    #: round (BitTorrent-style rolling rate estimate).
    tft_history_decay: float = 0.995

    # --- learning (paper: 10 states, T=inf then T=1, 10k training) ----
    n_states: int = 10
    training_steps: int = 10_000
    eval_steps: int = 3_000  # paper: unspecified; long enough to converge
    t_train: float = float("inf")
    t_eval: float = 1.0
    learning_rate: float = 0.1  # paper: unspecified Q-learning alpha
    discount: float = 0.9  # paper: unspecified Q-learning gamma
    learn_during_eval: bool = True  # the Fig. 6/7 feedback needs this

    # --- network / workload -------------------------------------------
    n_articles: int = 30
    founders_per_article: int = 5
    #: Per-peer probability of issuing a download request each step.  The
    #: paper's "downloads ... with probability P = 1/N_S" is read as "the
    #: probability of picking any *specific* source is 1/N_S", i.e. every
    #: peer downloads once per step from a uniformly random sharer; set
    #: this below 1 to thin the request process instead.
    download_probability: float = 1.0
    #: Probability that an edit-eligible peer proposes an edit in a step.
    edit_attempt_prob: float = 0.08
    #: Upper bound on sampled voters per proposal (cost control; the
    #: qualified voter set of a popular article can grow large).
    max_voters_per_edit: int = 15
    #: Minimum voters needed for a decision; proposals without a quorum
    #: are declined (founder seeding makes this rare).
    min_voters_per_edit: int = 1
    #: Whether the edit privilege requires ``R_S >= theta`` (the designed
    #: scheme, section III-C3).  The paper's *simulated* editing game lets
    #: every agent type edit and vote ("the chance to succeed with
    #: destructive voting behavior is bigger ... if 60% of the agents have
    #: selected a destructive voting behavior") — with the gate enforced,
    #: free-riding vandals can never enter any voter pool and the
    #: constructive camp wins even at 90 % irrational, which contradicts
    #: the paper's Figures 6/7.  The figure experiments therefore disable
    #: the gate (and record the strict variant as an ablation); see
    #: EXPERIMENTS.md.
    enforce_edit_threshold: bool = True

    # --- overlay & capacity extensions (paper future work) -------------
    #: "full" reproduces the paper (any sharer reachable); "random",
    #: "smallworld" or "scalefree" restrict downloads to overlay
    #: neighbours (see :mod:`repro.network.overlay`).
    overlay_kind: str = "full"
    overlay_degree: int = 8
    #: Log-normal sigma of per-peer upload capacities; 0 = the paper's
    #: homogeneous "bandwidth normalized to 1".
    capacity_sigma: float = 0.0

    # --- churn (off by default, used by the whitewashing ablation) ----
    leave_rate: float = 0.0
    join_rate: float = 0.0
    whitewash_rate: float = 0.0

    # --- adversaries (off by default; see repro.sim.phases.adversary) --
    #: Fraction of the population assigned to collusion rings: cliques
    #: that offer maximal sharing but serve bandwidth only to ring-mates
    #: and vote for ring-mates' proposals (and against everyone else's)
    #: regardless of content.
    collusion_fraction: float = 0.0
    #: Target peers per collusion ring; the last ring absorbs a remainder
    #: smaller than 2 so no ring degenerates to a single peer.
    collusion_ring_size: int = 4
    #: Fraction of the population acting as sybil/whitewash attackers.
    sybil_fraction: float = 0.0
    #: Per-step probability that each sybil attacker discards its identity
    #: and rejoins fresh — a generalized churn-rejoin that wipes *all*
    #: identity-bound scheme state (contributions, punishments, private
    #: histories, currency balances), unlike plain ``whitewash_rate``
    #: which models only the R_min reputation trade-off.
    sybil_rate: float = 0.0

    # --- scale path (off by default; see docs/ARCHITECTURE.md) --------
    scale: ScaleConfig = field(default_factory=ScaleConfig)

    # --- engine (execution-only; hash-excluded) ------------------------
    engine: EngineConfig = field(default_factory=EngineConfig)

    # --- bookkeeping ---------------------------------------------------
    seed: int = 0
    collect_events: bool = False
    #: Fraction of the evaluation phase (from the end) used for summary
    #: metrics; 0.5 = the last half of evaluation.
    measure_window: float = 0.5

    def __post_init__(self) -> None:
        if self.n_agents < 2:
            raise ValueError("n_agents must be >= 2")
        if self.n_states < 1:
            raise ValueError("n_states must be >= 1")
        if self.training_steps < 0 or self.eval_steps < 1:
            raise ValueError("need training_steps >= 0 and eval_steps >= 1")
        if not 0.0 < self.t_eval:
            raise ValueError("t_eval must be positive")
        if not 0.0 <= self.download_probability <= 1.0:
            raise ValueError("download_probability must be in [0, 1]")
        if not 0.0 <= self.edit_attempt_prob <= 1.0:
            raise ValueError("edit_attempt_prob must be in [0, 1]")
        if self.max_voters_per_edit < 1:
            raise ValueError("max_voters_per_edit must be >= 1")
        if not 0.0 < self.measure_window <= 1.0:
            raise ValueError("measure_window must be in (0, 1]")
        if self.capacity_sigma < 0.0:
            raise ValueError("capacity_sigma must be non-negative")
        if not 0.0 <= self.collusion_fraction <= 1.0:
            raise ValueError("collusion_fraction must be in [0, 1]")
        if self.collusion_ring_size < 2:
            raise ValueError("collusion_ring_size must be >= 2")
        if not 0.0 <= self.sybil_fraction <= 1.0:
            raise ValueError("sybil_fraction must be in [0, 1]")
        if not 0.0 <= self.sybil_rate <= 1.0:
            raise ValueError("sybil_rate must be in [0, 1]")
        if self.karma_initial < 0.0:
            raise ValueError("karma_initial must be non-negative")
        if self.karma_floor <= 0.0:
            raise ValueError("karma_floor must be positive")
        if self.tft_optimistic_floor <= 0.0:
            raise ValueError("tft_optimistic_floor must be positive")
        if not 0.0 < self.tft_history_decay <= 1.0:
            raise ValueError("tft_history_decay must be in (0, 1]")
        if self.scheme not in ("auto", "reputation", "none", "tft", "karma"):
            raise ValueError(
                f"unknown scheme {self.scheme!r}; "
                "choose auto|reputation|none|tft|karma"
            )

    @property
    def resolved_scheme(self) -> str:
        """The concrete scheme name after resolving "auto"."""
        if self.scheme != "auto":
            return self.scheme
        return "reputation" if self.incentives_enabled else "none"

    # ------------------------------------------------------------------
    def with_(self, **changes: Any) -> "SimulationConfig":
        """Functional update, e.g. ``config.with_(seed=7)``.

        Dotted ``scale.<leaf>`` / ``engine.<leaf>`` keys update the
        nested sections in place, so CLI overrides and scenario
        modifiers can reach them without constructing the nested
        dataclasses::

            config.with_(**{"scale.sparse": True, "engine.backend": "compiled"})
        """
        for prefix in ("scale", "engine"):
            dotted = prefix + "."
            nested = {
                k.split(".", 1)[1]: v
                for k, v in changes.items()
                if k.startswith(dotted)
            }
            if nested:
                changes = {
                    k: v for k, v in changes.items() if not k.startswith(dotted)
                }
                changes[prefix] = replace(
                    changes.get(prefix, getattr(self, prefix)), **nested
                )
        return replace(self, **changes)

    @property
    def total_steps(self) -> int:
        return self.training_steps + self.eval_steps

    def describe(self) -> str:
        scheme = "incentive" if self.incentives_enabled else "no-incentive"
        return f"{scheme} | {self.mix.describe()} | seed={self.seed}"
