"""Reproducible random-number streams.

Every simulation run owns exactly one ``numpy.random.Generator`` derived
from the run's seed through ``SeedSequence``, and parameter sweeps spawn
*independent* child sequences per run — results are bit-identical no matter
which backend (serial / threads / processes) executed the sweep or in what
order the runs finished.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_seeds", "spawn_rngs"]


def make_rng(seed: int | None) -> np.random.Generator:
    """One generator from one seed (``None`` = OS entropy)."""
    return np.random.default_rng(seed)


def spawn_seeds(root_seed: int, n: int) -> list[int]:
    """``n`` independent 32-bit seeds derived from ``root_seed``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    seq = np.random.SeedSequence(root_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n)]


def spawn_rngs(root_seed: int, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from ``root_seed``."""
    seq = np.random.SeedSequence(root_seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
