"""Reproducible random-number streams.

Every simulation run owns exactly one ``numpy.random.Generator`` derived
from the run's seed through ``SeedSequence``, and parameter sweeps spawn
*independent* child sequences per run — results are bit-identical no matter
which backend (serial / threads / processes) executed the sweep or in what
order the runs finished.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_seeds", "spawn_rngs", "BufferedRNG"]


def make_rng(seed: int | None) -> np.random.Generator:
    """One generator from one seed (``None`` = OS entropy)."""
    return np.random.default_rng(seed)


def spawn_seeds(root_seed: int, n: int) -> list[int]:
    """``n`` independent 32-bit seeds derived from ``root_seed``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    seq = np.random.SeedSequence(root_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n)]


def spawn_rngs(root_seed: int, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from ``root_seed``."""
    seq = np.random.SeedSequence(root_seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


class BufferedRNG:
    """Uniform-draw buffering facade over one ``numpy.random.Generator``.

    The engine's per-step kernels draw many small uniform vectors from
    each replicate's stream; every ``Generator.random`` call costs ~10us
    of argument handling regardless of size.  This facade block-draws
    ``block`` uniforms at a time and serves contiguous slices, cutting
    that per-call overhead ~20x while consuming the *same underlying
    stream deterministically* — two consumers issuing the same sequence
    of ``random`` calls through a ``BufferedRNG`` see identical values,
    which is all the engine's seed-for-seed guarantee needs (sequential
    and batched runs share the kernel code and therefore the call
    sequence).  Every other Generator method (``integers``, ``choice``,
    ``shuffle``, ``lognormal``, ...) passes straight through.

    The returned arrays are read-only views into the block buffer, valid
    only until the next refill of the same stream: the block buffer is
    *reused* across refills (``Generator.random(out=...)`` fills it in
    place, so the steady state allocates nothing).  The engine's kernels
    respect that contract — every served view is reduced, compared or
    copied before the same stream is drawn from again.

    Block-size note: the block draws *pre-consume* the underlying stream,
    so the interleaving with pass-through calls (``integers``,
    ``permutation``, ...) — and therefore the run trajectory — depends on
    the block size.  8192 was confirmed against
    ``benchmarks/test_bench_kernels.py`` (4096/16384 measure within
    noise; the refill is ~1% of a step), so it stays put and every
    recorded trajectory is preserved exactly.
    """

    __slots__ = ("gen", "_block", "_buf", "_pos")

    def __init__(self, gen: np.random.Generator, block: int = 8192) -> None:
        if block < 1:
            raise ValueError("block must be >= 1")
        self.gen = gen
        self._block = int(block)
        self._buf = np.empty(0, dtype=np.float64)
        self._pos = 0

    def random(self, size=None):
        if size is None:
            return self.gen.random()
        shape = (size,) if isinstance(size, (int, np.integer)) else tuple(size)
        k = 1
        for dim in shape:
            k *= int(dim)
        if self._pos + k > self._buf.size:
            if k <= self._block:
                # Steady state: refill the standing block in place (the
                # values equal a fresh ``random(block)`` call, so the
                # stream consumption — and every trajectory — is
                # unchanged; only the allocation disappears).
                if self._buf.size != self._block:
                    self._buf = np.empty(self._block, dtype=np.float64)
                else:
                    self._buf.flags.writeable = True
                self.gen.random(out=self._buf)
            else:
                # Oversized request: dedicated one-off draw, same as a
                # plain ``random(k)``.
                self._buf = self.gen.random(k)
            self._buf.flags.writeable = False
            self._pos = 0
        out = self._buf[self._pos : self._pos + k]
        self._pos += k
        return out.reshape(shape) if len(shape) != 1 else out

    def __getattr__(self, name):
        return getattr(self.gen, name)

    # Pickle support is explicit because ``__slots__`` + ``__getattr__``
    # is a trap for the default protocol: during unpickling, attribute
    # lookups run before ``gen`` exists and ``__getattr__`` recurses
    # forever.  The buffer, its cursor, and the wrapped Generator's
    # bit-generator state are all carried, so a restored BufferedRNG
    # continues the *exact* stream — mid-block — that the original would
    # have produced (mid-run checkpoint resume depends on this).
    def __getstate__(self):
        return {
            "gen": self.gen,
            "block": self._block,
            "buf": self._buf,
            "pos": self._pos,
        }

    def __setstate__(self, state):
        object.__setattr__(self, "gen", state["gen"])
        object.__setattr__(self, "_block", state["block"])
        # Unpickled arrays can be zero-copy views over the pickle's
        # immutable bytes — such a buffer could never be re-marked
        # writeable for the in-place refill.  Copy into owned memory.
        buf = np.array(state["buf"], dtype=np.float64)
        buf.flags.writeable = False
        object.__setattr__(self, "_buf", buf)
        object.__setattr__(self, "_pos", state["pos"])
