"""Explicit simulation state for the phase-kernel pipeline.

:class:`SimState` is everything a run mutates, pulled out of the old
monolithic ``CollaborationSimulation`` so the per-step logic can live in
small composable phase kernels (:mod:`repro.sim.phases`) that each take
``(SimState, SimulationConfig)`` and the state's RNG streams.

The state carries an explicit **replicate axis**: ``R`` seed-varied
replicates of one configuration run as a single state whose per-peer
arrays are flat ``(R * N,)`` slot vectors (replicate ``r`` owns slots
``[r*N, (r+1)*N)``).  Structured per-replicate objects — RNG streams,
article stores, overlay graphs, event logs — stay per-replicate lists.
``R = 1`` is the plain single simulation: every array has its historical
shape and the kernels execute the exact operation sequence the monolithic
engine used, so results are bit-identical.

Seed-for-seed guarantee: replicate ``r`` of a batched state consumes its
own generator (seeded with its config's seed) through *exactly* the same
draw sites, shapes and order as a sequential run of that config, both
during construction (types -> capacities -> overlay -> founders) and in
every phase kernel.  Batched replicate ``r`` therefore reproduces the
sequential run bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..agents.actions import EditActionSpace, SharingActionSpace
from ..agents.behaviors import BatchedBehaviorEngine
from ..agents.qlearning import VectorQLearner
from ..core.baselines import KarmaScheme, PrivateHistoryScheme
from ..core.incentives import make_scheme
from ..core.reputation import REPUTATION_FUNCTIONS
from ..network.articles import ArticleStore
from ..network.events import EventLog
from ..network.overlay import ChurnModel, OverlayNetwork
from ..network.peer import RATIONAL, PeerArrays
from .config import SimulationConfig
from .metrics import MetricsCollector
from .rng import BufferedRNG, make_rng

__all__ = [
    "SimState",
    "StepScratch",
    "PhaseContext",
    "build_sim_state",
    "assign_collusion_rings",
]


def _make_reputation_fn(name: str, params):
    try:
        cls = REPUTATION_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown reputation function {name!r}; "
            f"choose from {sorted(REPUTATION_FUNCTIONS)}"
        ) from None
    return cls(params)


@dataclass
class StepScratch:
    """Per-step accumulation buffers, zeroed and reused every step."""

    succ_votes: np.ndarray  # (R*N,) successful votes this step
    acc_edits: np.ndarray  # (R*N,) accepted edits this step
    proposals_count: np.ndarray  # (R, 3, 2) proposals by (type, constructive)
    accepted_count: np.ndarray  # (R, 3, 2) accepted by (type, constructive)
    votes_cast: np.ndarray  # (R,)
    votes_successful: np.ndarray  # (R,)
    vote_bans: np.ndarray  # (R,)
    reputation_resets: np.ndarray  # (R,)
    proposer_u: np.ndarray  # (R, N) per-replicate proposer uniforms

    @classmethod
    def create(cls, n_replicates: int, n_agents: int) -> "StepScratch":
        slots = n_replicates * n_agents
        return cls(
            succ_votes=np.zeros(slots, dtype=np.float64),
            acc_edits=np.zeros(slots, dtype=np.float64),
            proposals_count=np.zeros((n_replicates, 3, 2)),
            accepted_count=np.zeros((n_replicates, 3, 2)),
            votes_cast=np.zeros(n_replicates),
            votes_successful=np.zeros(n_replicates),
            vote_bans=np.zeros(n_replicates),
            reputation_resets=np.zeros(n_replicates),
            proposer_u=np.empty((n_replicates, n_agents)),
        )

    def reset(self) -> None:
        self.succ_votes.fill(0.0)
        self.acc_edits.fill(0.0)
        self.proposals_count.fill(0.0)
        self.accepted_count.fill(0.0)
        self.votes_cast.fill(0.0)
        self.votes_successful.fill(0.0)
        self.vote_bans.fill(0.0)
        self.reputation_resets.fill(0.0)


@dataclass
class PhaseContext:
    """Intermediate values one step's kernels hand to the next kernel.

    Reused across steps; every field is overwritten by the producing
    phase before the consuming phase reads it.
    """

    rep_s: np.ndarray | None = None  # step-start sharing reputations (R*N,)
    rep_e: np.ndarray | None = None  # step-start editing reputations (R*N,)
    states_s: np.ndarray | None = None  # discretized states, stacked rational
    states_e: np.ndarray | None = None
    share_actions: np.ndarray | None = None  # (R*N,) action indices
    edit_actions: np.ndarray | None = None
    bw: np.ndarray | None = None  # offered bandwidth fractions (R*N,)
    files: np.ndarray | None = None  # offered file fractions (R*N,)
    edit_constructive: np.ndarray | None = None  # (R*N,) bool
    vote_constructive: np.ndarray | None = None  # (R*N,) bool
    received: np.ndarray | None = None  # settled download bandwidth (R*N,)
    u_s: np.ndarray | None = None  # sharing utilities (R*N,)
    u_e: np.ndarray | None = None  # editing utilities (R*N,)


@dataclass
class SimState:
    """Full mutable state of ``R`` stacked replicates of one config."""

    configs: list[SimulationConfig]  # one per replicate; differ only in seed
    n_replicates: int
    n_agents: int  # peers per replicate
    rngs: list  # one independent BufferedRNG stream per replicate
    peers: PeerArrays  # flat R*N slots
    scheme: Any  # replicate-aware incentive scheme
    overlays: list[OverlayNetwork] | None  # per replicate, None = full mesh
    articles: list[ArticleStore]  # per replicate
    sharing_space: SharingActionSpace
    edit_space: EditActionSpace
    sharing_learner: VectorQLearner  # stacked over all replicates' rationals
    edit_learner: VectorQLearner
    behavior: BatchedBehaviorEngine
    churn: ChurnModel
    metrics: MetricsCollector
    events: list[EventLog | None]  # per replicate
    rational_idx: np.ndarray  # flat slot ids of rational peers
    scratch: StepScratch
    ctx: PhaseContext
    transfer_hook: Any  # scheme.record_transfers or None
    #: Ring id per flat slot, -1 for non-colluders.  Ring ids are offset
    #: by ``r * n_agents`` so they can never alias across replicates.
    collusion_rings: np.ndarray = field(
        default_factory=lambda: np.full(1, -1, np.int64)
    )
    colluder_mask: np.ndarray = field(default_factory=lambda: np.zeros(1, bool))
    sybil_mask: np.ndarray = field(default_factory=lambda: np.zeros(1, bool))
    step_count: int = 0
    whitewash_counts: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    sybil_counts: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))

    @property
    def config(self) -> SimulationConfig:
        """The shared (non-seed) configuration of every replicate."""
        return self.configs[0]

    def rows(self, arr: np.ndarray) -> np.ndarray:
        """Zero-copy ``(R, N)`` view of a flat per-slot array."""
        return arr.reshape(self.n_replicates, self.n_agents)


def assign_collusion_rings(
    rng, n_agents: int, fraction: float, ring_size: int, offset: int = 0
) -> np.ndarray:
    """Partition a random ``fraction`` of one population into collusion rings.

    Returns an ``(n_agents,)`` int64 array of ring ids, ``-1`` for peers
    outside every ring.  Members are a uniform random subset (one
    ``permutation`` draw — the only stream consumption); consecutive
    chunks of ``ring_size`` members form one ring, and a trailing
    remainder of a single peer is merged into the previous ring so no
    ring degenerates below two members.  Ring ids start at ``offset``
    (callers stacking replicates pass ``r * n_agents`` so ids never alias
    across replicates).  Fractions that round below two colluders yield
    an all ``-1`` assignment without consuming the stream.
    """
    rings = np.full(n_agents, -1, dtype=np.int64)
    n_colluders = int(round(fraction * n_agents))
    if n_colluders < 2:
        return rings
    members = rng.permutation(n_agents)[:n_colluders]
    ring_of_member = np.arange(n_colluders) // ring_size
    if n_colluders % ring_size == 1 and ring_of_member[-1] > 0:
        ring_of_member[-1] -= 1  # absorb the lone trailing peer
    rings[members] = ring_of_member + offset
    return rings


def build_sim_state(configs: list[SimulationConfig]) -> SimState:
    """Assemble the state for ``len(configs)`` stacked replicates.

    All configs must be identical except for ``seed``.  Construction
    consumes each replicate's generator in the same order a sequential
    ``CollaborationSimulation(config)`` would: population types, then
    heterogeneous capacities, then the overlay seed, then article
    founders, then (when enabled) collusion rings and the sybil roster —
    the seed-for-seed guarantee starts here.
    """
    if not configs:
        raise ValueError("need at least one config")
    cfg = configs[0]
    base = cfg.with_(seed=0)
    for other in configs[1:]:
        if other.with_(seed=0) != base:
            raise ValueError(
                "replicate configs must be identical except for the seed"
            )
    n_rep = len(configs)
    n = cfg.n_agents
    c = cfg.constants
    # Uniform draws are block-buffered per stream (the kernels issue many
    # small vectors per step); sequential and batched runs share the
    # kernel code and therefore the draw sequence, so buffering preserves
    # the seed-for-seed guarantee.
    rngs = [BufferedRNG(make_rng(conf.seed)) for conf in configs]

    types2d = np.stack([configs[r].mix.build(n, rngs[r]) for r in range(n_rep)])
    peers = PeerArrays.create(types2d)
    if cfg.capacity_sigma > 0.0:
        # Log-normal heterogeneous capacities, mean preserved at 1.
        sigma = cfg.capacity_sigma
        caps2d = peers.upload_capacity.reshape(n_rep, n)
        for r in range(n_rep):
            caps2d[r] = rngs[r].lognormal(
                mean=-0.5 * sigma**2, sigma=sigma, size=n
            )
    overlays = (
        None
        if cfg.overlay_kind == "full"
        else [
            OverlayNetwork(
                n, kind=cfg.overlay_kind, rng=rngs[r], degree=cfg.overlay_degree
            )
            for r in range(n_rep)
        ]
    )

    scheme_name = cfg.resolved_scheme
    if scheme_name == "reputation":
        scheme = make_scheme(
            n,
            True,
            c,
            reputation_fn_s=_make_reputation_fn(cfg.reputation_fn_s, c.reputation_s),
            reputation_fn_e=_make_reputation_fn(cfg.reputation_fn_e, c.reputation_e),
            n_replicates=n_rep,
        )
    elif scheme_name == "none":
        scheme = make_scheme(n, False, c, n_replicates=n_rep)
    elif scheme_name == "tft":
        scheme = PrivateHistoryScheme(n, c, n_replicates=n_rep)
    elif scheme_name == "karma":
        scheme = KarmaScheme(n, c, n_replicates=n_rep)
    else:  # pragma: no cover - config validates names
        raise ValueError(f"unknown scheme {scheme_name!r}")

    articles = [
        ArticleStore(
            cfg.n_articles,
            n,
            rngs[r],
            founders_per_article=cfg.founders_per_article,
        )
        for r in range(n_rep)
    ]

    # Adversary rosters.  Draws happen only when the feature is enabled,
    # so adversary-free configs consume exactly the historical stream.
    slots = n_rep * n
    if cfg.collusion_fraction > 0.0:
        collusion_rings = np.concatenate(
            [
                assign_collusion_rings(
                    rngs[r],
                    n,
                    cfg.collusion_fraction,
                    cfg.collusion_ring_size,
                    offset=r * n,
                )
                for r in range(n_rep)
            ]
        )
    else:
        collusion_rings = np.full(slots, -1, dtype=np.int64)
    if cfg.sybil_fraction > 0.0:
        n_sybils = int(round(cfg.sybil_fraction * n))
        sybil_mask = np.zeros(slots, dtype=bool)
        if n_sybils:
            for r in range(n_rep):
                sybil_mask[rngs[r].permutation(n)[:n_sybils] + r * n] = True
    else:
        sybil_mask = np.zeros(slots, dtype=bool)

    sharing_space = SharingActionSpace()
    edit_space = EditActionSpace()
    rational_idx = np.flatnonzero(peers.types == RATIONAL)
    n_rational = rational_idx.size
    sharing_learner = VectorQLearner(
        max(n_rational, 1),
        cfg.n_states,
        sharing_space.n_actions,
        learning_rate=cfg.learning_rate,
        discount=cfg.discount,
    )
    edit_learner = VectorQLearner(
        max(n_rational, 1),
        cfg.n_states,
        edit_space.n_actions,
        learning_rate=cfg.learning_rate,
        discount=cfg.discount,
    )
    behavior = BatchedBehaviorEngine(
        types2d, sharing_space, edit_space, sharing_learner, edit_learner
    )
    churn = ChurnModel(
        leave_rate=cfg.leave_rate,
        join_rate=cfg.join_rate,
        whitewash_rate=cfg.whitewash_rate,
    )
    metrics = MetricsCollector(cfg.total_steps, types2d)
    events = [EventLog() if conf.collect_events else None for conf in configs]

    return SimState(
        configs=list(configs),
        n_replicates=n_rep,
        n_agents=n,
        rngs=rngs,
        peers=peers,
        scheme=scheme,
        overlays=overlays,
        articles=articles,
        sharing_space=sharing_space,
        edit_space=edit_space,
        sharing_learner=sharing_learner,
        edit_learner=edit_learner,
        behavior=behavior,
        churn=churn,
        metrics=metrics,
        events=events,
        rational_idx=rational_idx,
        scratch=StepScratch.create(n_rep, n),
        ctx=PhaseContext(),
        transfer_hook=getattr(scheme, "record_transfers", None),
        collusion_rings=collusion_rings,
        colluder_mask=collusion_rings >= 0,
        sybil_mask=sybil_mask,
        step_count=0,
        whitewash_counts=np.zeros(n_rep, dtype=np.int64),
        sybil_counts=np.zeros(n_rep, dtype=np.int64),
    )
