"""Explicit simulation state for the phase-kernel pipeline.

:class:`SimState` is everything a run mutates, pulled out of the old
monolithic ``CollaborationSimulation`` so the per-step logic can live in
small composable phase kernels (:mod:`repro.sim.phases`) that each take
``(SimState, SimulationConfig)`` and the state's RNG streams.

The state carries an explicit **lane axis** (generalizing PR 2's
replicate axis): ``R`` stacked populations run as a single state whose
per-peer arrays are flat ``(R * N,)`` slot vectors (lane ``r`` owns slots
``[r*N, (r+1)*N)``).  Lanes may carry *different* configurations as long
as they agree on the structural dimensions
(:data:`repro.sim.lanes.STRUCTURAL_FIELDS`); every other knob —
temperatures, scheme constants, population mixes, churn/adversary rates,
per-scheme parameters — is lifted into the state's :class:`LaneParams`
and per-lane scheme parameter arrays.  Structured per-lane objects — RNG
streams, article stores, overlay graphs, churn models, event logs — stay
per-lane lists.  ``R = 1`` is the plain single simulation: every array
has its historical shape and the kernels execute the exact operation
sequence the monolithic engine used, so results are bit-identical.

Seed-for-seed guarantee: lane ``r`` of a batched state consumes its own
generator (seeded with its config's seed) through *exactly* the same
draw sites, shapes and order as a sequential run of that config, both
during construction (types -> capacities -> overlay -> founders ->
adversary rosters) and in every phase kernel.  Batched lane ``r``
therefore reproduces the sequential run bit for bit — including in
mixed-config batches, because all lane-varying parameters are applied
elementwise within each lane's slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..agents.actions import EditActionSpace, SharingActionSpace
from ..agents.behaviors import BatchedBehaviorEngine
from ..agents.qlearning import VectorQLearner
from ..core.baselines import KarmaScheme, PrivateHistoryScheme
from ..core.incentives import make_scheme
from ..core.reputation import REPUTATION_FUNCTIONS
from ..network.articles import ArticleStore
from ..network.events import EventLog
from ..network.overlay import ChurnModel, OverlayNetwork
from ..network.peer import RATIONAL, PeerArrays
from .backends import get_backend
from .config import SimulationConfig
from .lanes import (
    LaneParams,
    assert_lane_compatible,
    build_lane_params,
    lane_constants,
    lane_values,
    rational_values,
    slot_values,
)
from .metrics import MetricsCollector
from .rng import BufferedRNG, make_rng

__all__ = [
    "SimState",
    "StepScratch",
    "PhaseContext",
    "build_sim_state",
    "assign_collusion_rings",
]


def _make_reputation_fn(name: str, params):
    try:
        cls = REPUTATION_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown reputation function {name!r}; "
            f"choose from {sorted(REPUTATION_FUNCTIONS)}"
        ) from None
    return cls(params)


@dataclass
class StepScratch:
    """Per-step accumulation buffers, zeroed and reused every step."""

    succ_votes: np.ndarray  # (R*N,) successful votes this step
    acc_edits: np.ndarray  # (R*N,) accepted edits this step
    proposals_count: np.ndarray  # (R, 3, 2) proposals by (type, constructive)
    accepted_count: np.ndarray  # (R, 3, 2) accepted by (type, constructive)
    votes_cast: np.ndarray  # (R,)
    votes_successful: np.ndarray  # (R,)
    vote_bans: np.ndarray  # (R,)
    reputation_resets: np.ndarray  # (R,)
    proposer_u: np.ndarray  # (R, N) per-replicate proposer uniforms

    @classmethod
    def create(cls, n_replicates: int, n_agents: int) -> "StepScratch":
        slots = n_replicates * n_agents
        return cls(
            succ_votes=np.zeros(slots, dtype=np.float64),
            acc_edits=np.zeros(slots, dtype=np.float64),
            proposals_count=np.zeros((n_replicates, 3, 2)),
            accepted_count=np.zeros((n_replicates, 3, 2)),
            votes_cast=np.zeros(n_replicates),
            votes_successful=np.zeros(n_replicates),
            vote_bans=np.zeros(n_replicates),
            reputation_resets=np.zeros(n_replicates),
            proposer_u=np.empty((n_replicates, n_agents)),
        )

    def reset(self) -> None:
        self.succ_votes.fill(0.0)
        self.acc_edits.fill(0.0)
        self.proposals_count.fill(0.0)
        self.accepted_count.fill(0.0)
        self.votes_cast.fill(0.0)
        self.votes_successful.fill(0.0)
        self.vote_bans.fill(0.0)
        self.reputation_resets.fill(0.0)


@dataclass
class PhaseContext:
    """Intermediate values one step's kernels hand to the next kernel.

    Reused across steps; every field is overwritten by the producing
    phase before the consuming phase reads it.
    """

    rep_s: np.ndarray | None = None  # step-start sharing reputations (R*N,)
    rep_e: np.ndarray | None = None  # step-start editing reputations (R*N,)
    states_s: np.ndarray | None = None  # discretized states, stacked rational
    states_e: np.ndarray | None = None
    share_actions: np.ndarray | None = None  # (R*N,) action indices
    edit_actions: np.ndarray | None = None
    bw: np.ndarray | None = None  # offered bandwidth fractions (R*N,)
    files: np.ndarray | None = None  # offered file fractions (R*N,)
    edit_constructive: np.ndarray | None = None  # (R*N,) bool
    vote_constructive: np.ndarray | None = None  # (R*N,) bool
    received: np.ndarray | None = None  # settled download bandwidth (R*N,)
    u_s: np.ndarray | None = None  # sharing utilities (R*N,)
    u_e: np.ndarray | None = None  # editing utilities (R*N,)


@dataclass
class SimState:
    """Full mutable state of ``R`` stacked lanes (configs sharing the
    structural dimensions; each lane may vary every other knob)."""

    configs: list[SimulationConfig]  # one per lane
    n_replicates: int
    n_agents: int  # peers per replicate
    rngs: list  # one independent BufferedRNG stream per replicate
    peers: PeerArrays  # flat R*N slots
    scheme: Any  # replicate-aware incentive scheme
    overlays: list[OverlayNetwork] | None  # per replicate, None = full mesh
    articles: list[ArticleStore]  # per replicate
    sharing_space: SharingActionSpace
    edit_space: EditActionSpace
    sharing_learner: VectorQLearner  # stacked over all replicates' rationals
    edit_learner: VectorQLearner
    behavior: BatchedBehaviorEngine
    churn: list[ChurnModel]  # one per lane
    metrics: MetricsCollector
    events: list[EventLog | None]  # per replicate
    rational_idx: np.ndarray  # flat slot ids of rational peers
    scratch: StepScratch
    ctx: PhaseContext
    transfer_hook: Any  # scheme.record_transfers or None
    #: Per-lane lifted parameters the phase kernels read every step.
    lanes: LaneParams = None  # type: ignore[assignment]  # set by build
    #: Kernel backend executing the hot inner loops
    #: (:class:`repro.sim.backends.base.KernelBackend`).  Resolved from
    #: ``engine.backend`` (structural: all lanes share one backend) and
    #: shared with the scheme, ledger and learners at build time.
    backend: Any = None  # set by build
    #: Any lane has churn enabled (static; gates the churn kernel).
    churn_active: bool = False
    #: Ring id per flat slot, -1 for non-colluders.  Ring ids are offset
    #: by ``r * n_agents`` so they can never alias across replicates.
    collusion_rings: np.ndarray = field(
        default_factory=lambda: np.full(1, -1, np.int64)
    )
    colluder_mask: np.ndarray = field(default_factory=lambda: np.zeros(1, bool))
    sybil_mask: np.ndarray = field(default_factory=lambda: np.zeros(1, bool))
    step_count: int = 0
    whitewash_counts: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    sybil_counts: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))

    @property
    def config(self) -> SimulationConfig:
        """Lane 0's configuration.

        Safe for the *structural* fields (every lane shares them — step
        counts, population size, scheme class, ...); kernels must read
        lane-varying knobs from :attr:`lanes`, never from here.
        """
        return self.configs[0]

    def rows(self, arr: np.ndarray) -> np.ndarray:
        """Zero-copy ``(R, N)`` view of a flat per-slot array."""
        return arr.reshape(self.n_replicates, self.n_agents)


def assign_collusion_rings(
    rng, n_agents: int, fraction: float, ring_size: int, offset: int = 0
) -> np.ndarray:
    """Partition a random ``fraction`` of one population into collusion rings.

    Returns an ``(n_agents,)`` int64 array of ring ids, ``-1`` for peers
    outside every ring.  Members are a uniform random subset (one
    ``permutation`` draw — the only stream consumption); consecutive
    chunks of ``ring_size`` members form one ring, and a trailing
    remainder of a single peer is merged into the previous ring so no
    ring degenerates below two members.  Ring ids start at ``offset``
    (callers stacking replicates pass ``r * n_agents`` so ids never alias
    across replicates).  Fractions that round below two colluders yield
    an all ``-1`` assignment without consuming the stream.
    """
    rings = np.full(n_agents, -1, dtype=np.int64)
    n_colluders = int(round(fraction * n_agents))
    if n_colluders < 2:
        return rings
    members = rng.permutation(n_agents)[:n_colluders]
    ring_of_member = np.arange(n_colluders) // ring_size
    if n_colluders % ring_size == 1 and ring_of_member[-1] > 0:
        ring_of_member[-1] -= 1  # absorb the lone trailing peer
    rings[members] = ring_of_member + offset
    return rings


def build_sim_state(configs: list[SimulationConfig]) -> SimState:
    """Assemble the state for ``len(configs)`` stacked lanes.

    The configs must agree on the structural dimensions
    (:data:`repro.sim.lanes.STRUCTURAL_FIELDS` plus the resolved scheme
    class); any other field may differ per lane.  Construction consumes
    each lane's generator in the same order a sequential
    ``CollaborationSimulation(config)`` would: population types, then
    heterogeneous capacities, then the overlay seed, then article
    founders, then (when that lane enables them) collusion rings and the
    sybil roster — the seed-for-seed guarantee starts here.
    """
    if not configs:
        raise ValueError("need at least one config")
    cfg = configs[0]
    assert_lane_compatible(configs)
    backend = get_backend(cfg.engine.backend)
    n_rep = len(configs)
    n = cfg.n_agents
    # Uniform draws are block-buffered per stream (the kernels issue many
    # small vectors per step); sequential and batched runs share the
    # kernel code and therefore the draw sequence, so buffering preserves
    # the seed-for-seed guarantee.
    rngs = [BufferedRNG(make_rng(conf.seed)) for conf in configs]

    types2d = np.stack([configs[r].mix.build(n, rngs[r]) for r in range(n_rep)])
    peers = PeerArrays.create(types2d)
    caps2d = peers.upload_capacity.reshape(n_rep, n)
    for r in range(n_rep):
        # Log-normal heterogeneous capacities, mean preserved at 1; a
        # sigma-0 lane keeps the homogeneous default and draws nothing.
        sigma = configs[r].capacity_sigma
        if sigma > 0.0:
            caps2d[r] = rngs[r].lognormal(
                mean=-0.5 * sigma**2, sigma=sigma, size=n
            )
    overlays = (
        None
        if cfg.overlay_kind == "full"
        else [
            OverlayNetwork(
                n,
                kind=cfg.overlay_kind,
                rng=rngs[r],
                degree=configs[r].overlay_degree,
            )
            for r in range(n_rep)
        ]
    )

    # Constants collapse to the shared PaperConstants when uniform; a
    # heterogeneous batch gets per-slot parameter arrays consumed
    # elementwise by the scheme's books (see repro.sim.lanes).
    c = lane_constants([conf.constants for conf in configs], n)
    scheme_name = cfg.resolved_scheme
    if scheme_name == "reputation":
        scheme = make_scheme(
            n,
            True,
            c,
            reputation_fn_s=_make_reputation_fn(cfg.reputation_fn_s, c.reputation_s),
            reputation_fn_e=_make_reputation_fn(cfg.reputation_fn_e, c.reputation_e),
            n_replicates=n_rep,
            kernels=backend,
        )
    elif scheme_name == "none":
        scheme = make_scheme(n, False, c, n_replicates=n_rep, kernels=backend)
    elif scheme_name == "tft":
        scheme = PrivateHistoryScheme(
            n,
            c,
            optimistic_floor=slot_values(configs, "tft_optimistic_floor", n),
            history_decay=lane_values(configs, "tft_history_decay"),
            n_replicates=n_rep,
            # Scale path: sparse/chunking are structural (one storage
            # layout per batch); the cap lifts per lane like any other
            # scheme knob.
            sparse=cfg.scale.sparse,
            ledger_cap=slot_values(
                [conf.scale for conf in configs], "ledger_cap", n, np.int64
            ),
            chunk_size=cfg.scale.chunk_size,
            kernels=backend,
        )
    elif scheme_name == "karma":
        scheme = KarmaScheme(
            n,
            c,
            initial_karma=slot_values(configs, "karma_initial", n),
            floor=slot_values(configs, "karma_floor", n),
            n_replicates=n_rep,
            kernels=backend,
        )
    else:  # pragma: no cover - config validates names
        raise ValueError(f"unknown scheme {scheme_name!r}")

    articles = [
        ArticleStore(
            cfg.n_articles,
            n,
            rngs[r],
            founders_per_article=cfg.founders_per_article,
        )
        for r in range(n_rep)
    ]

    # Adversary rosters.  Draws happen only in lanes that enable the
    # feature, so adversary-free lanes consume exactly the historical
    # stream.
    slots = n_rep * n
    collusion_rings = np.concatenate(
        [
            assign_collusion_rings(
                rngs[r],
                n,
                configs[r].collusion_fraction,
                configs[r].collusion_ring_size,
                offset=r * n,
            )
            if configs[r].collusion_fraction > 0.0
            else np.full(n, -1, dtype=np.int64)
            for r in range(n_rep)
        ]
    )
    sybil_mask = np.zeros(slots, dtype=bool)
    for r in range(n_rep):
        if configs[r].sybil_fraction <= 0.0:
            continue
        n_sybils = int(round(configs[r].sybil_fraction * n))
        if n_sybils:
            sybil_mask[rngs[r].permutation(n)[:n_sybils] + r * n] = True

    sharing_space = SharingActionSpace()
    edit_space = EditActionSpace()
    rational_idx = np.flatnonzero(peers.types == RATIONAL)
    n_rational = rational_idx.size
    if n_rational:
        lane_lr = rational_values(configs, "learning_rate", n, rational_idx)
        lane_gamma = rational_values(configs, "discount", n, rational_idx)
    else:
        lane_lr, lane_gamma = cfg.learning_rate, cfg.discount
    sharing_learner = VectorQLearner(
        max(n_rational, 1),
        cfg.n_states,
        sharing_space.n_actions,
        learning_rate=lane_lr,
        discount=lane_gamma,
        kernels=backend,
    )
    edit_learner = VectorQLearner(
        max(n_rational, 1),
        cfg.n_states,
        edit_space.n_actions,
        learning_rate=lane_lr,
        discount=lane_gamma,
        kernels=backend,
    )
    behavior = BatchedBehaviorEngine(
        types2d, sharing_space, edit_space, sharing_learner, edit_learner
    )
    churn = [
        ChurnModel(
            leave_rate=conf.leave_rate,
            join_rate=conf.join_rate,
            whitewash_rate=conf.whitewash_rate,
        )
        for conf in configs
    ]
    metrics = MetricsCollector(
        cfg.total_steps,
        types2d,
        streaming=n >= cfg.scale.stream_metrics_threshold,
    )
    events = [EventLog() if conf.collect_events else None for conf in configs]
    lanes = build_lane_params(
        configs,
        rational_idx,
        sybil_any=sybil_mask.reshape(n_rep, n).any(axis=1),
    )

    return SimState(
        configs=list(configs),
        n_replicates=n_rep,
        n_agents=n,
        rngs=rngs,
        peers=peers,
        scheme=scheme,
        overlays=overlays,
        articles=articles,
        sharing_space=sharing_space,
        edit_space=edit_space,
        sharing_learner=sharing_learner,
        edit_learner=edit_learner,
        behavior=behavior,
        churn=churn,
        metrics=metrics,
        events=events,
        rational_idx=rational_idx,
        scratch=StepScratch.create(n_rep, n),
        ctx=PhaseContext(),
        transfer_hook=getattr(scheme, "record_transfers", None),
        lanes=lanes,
        backend=backend,
        churn_active=any(model.active for model in churn),
        collusion_rings=collusion_rings,
        colluder_mask=collusion_rings >= 0,
        sybil_mask=sybil_mask,
        step_count=0,
        whitewash_counts=np.zeros(n_rep, dtype=np.int64),
        sybil_counts=np.zeros(n_rep, dtype=np.int64),
    )
