"""Simulation engine: config, RNG streams, metrics, phase-kernel engine
(single-run and lane-batched), sweeps, scenarios, checkpoints."""

from .checkpoint import load_checkpoint, save_checkpoint
from .config import ScaleConfig, SimulationConfig
from .engine import (
    BatchedSimulation,
    CollaborationSimulation,
    SimulationResult,
    run_replicates,
    run_simulation,
)
from .lanes import STRUCTURAL_FIELDS, structural_key
from .metrics import MetricsCollector, StepStats
from .state import SimState, build_sim_state
from .rng import make_rng, spawn_rngs, spawn_seeds
from .scenarios import base_config, fig3_configs, fig6_configs, mixture_configs
from ._sweep import (
    SweepWorkerError,
    available_workers,
    get_default_store,
    plan_lane_batches,
    replicate,
    run_sweep,
    set_default_store,
)

__all__ = [
    "load_checkpoint",
    "save_checkpoint",
    "ScaleConfig",
    "SimulationConfig",
    "CollaborationSimulation",
    "BatchedSimulation",
    "SimulationResult",
    "run_simulation",
    "run_replicates",
    "SimState",
    "build_sim_state",
    "MetricsCollector",
    "StepStats",
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "base_config",
    "fig3_configs",
    "fig6_configs",
    "mixture_configs",
    "STRUCTURAL_FIELDS",
    "structural_key",
    "plan_lane_batches",
    "available_workers",
    "replicate",
    "run_sweep",
    "SweepWorkerError",
    "set_default_store",
    "get_default_store",
]
