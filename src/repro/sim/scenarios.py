"""Canned configurations matching the paper's experiments.

Each figure's experiment module asks this factory for its configs; the
``fast`` flag shrinks the horizon for benchmarks and smoke tests while
preserving the protocol (train at ``T = inf``, reset, evaluate at
``T = 1``).
"""

from __future__ import annotations

from ..agents.population import PopulationMix, mixture_sweep
from .config import ScaleConfig, SimulationConfig

__all__ = [
    "base_config",
    "scale_config",
    "scale_peak_bytes",
    "fig3_configs",
    "mixture_configs",
    "fig6_configs",
]

#: Reduced horizon used by benchmarks / CI (protocol preserved).
FAST_TRAINING_STEPS = 1_500
FAST_EVAL_STEPS = 800


def base_config(fast: bool = False, **overrides) -> SimulationConfig:
    """The paper's default setting: 100 rational agents, incentives on."""
    cfg = SimulationConfig()
    if fast:
        cfg = cfg.with_(
            training_steps=FAST_TRAINING_STEPS, eval_steps=FAST_EVAL_STEPS
        )
    return cfg.with_(**overrides) if overrides else cfg


def scale_config(n_agents: int, **overrides) -> SimulationConfig:
    """The canonical large-N sparse workload, shared by every scale gate.

    One definition serves the ``scale/`` scenario packs, the nightly
    memory-budget tool (``tools/mem_budget.py``) and the scale
    benchmarks (``benchmarks/test_bench_scale.py``), so tuning the
    workload here retunes what CI gates and what ``repro run scale/50k``
    executes in one place.  Workload knobs scale with the population
    (more articles, thinner per-peer edit pressure) so per-step totals
    stay proportionate; the horizon is short because large populations
    measure steady-state service, not learning curves.
    """
    cfg = SimulationConfig(
        n_agents=n_agents,
        n_articles=max(30, n_agents // 100),
        founders_per_article=10,
        training_steps=120,
        eval_steps=80,
        edit_attempt_prob=0.01,
        scale=ScaleConfig(sparse=True, ledger_cap=64),
    )
    return cfg.with_(**overrides) if overrides else cfg


def scale_peak_bytes(
    n_agents: int, steps: int = 5, **overrides
) -> tuple[int, int]:
    """(tracemalloc peak, resident ledger bytes) of a short scale run.

    The one measurement recipe behind the nightly memory gate
    (``tools/mem_budget.py``) and the scale benchmarks
    (``benchmarks/test_bench_scale.py``): build a
    :func:`scale_config` simulation, step it ``steps`` times, and read
    the traced allocation peak (numpy routes its buffers through the
    traced allocator).  The second element is the sparse ledger's
    resident bytes, ``0`` for schemes without one.
    """
    import tracemalloc

    from .engine import CollaborationSimulation

    cfg = scale_config(n_agents, training_steps=steps, eval_steps=1, **overrides)
    tracemalloc.start()
    try:
        sim = CollaborationSimulation(cfg)
        for _ in range(steps):
            sim.step(float("inf"))
        _, peak = tracemalloc.get_traced_memory()
        ledger_bytes = (
            sim.scheme._ledger.nbytes
            if getattr(sim.scheme, "sparse", False)
            else 0
        )
    finally:
        tracemalloc.stop()
    return peak, ledger_bytes


def fig3_configs(
    seeds: list[int], fast: bool = False
) -> tuple[list[SimulationConfig], list[SimulationConfig]]:
    """(incentive, no-incentive) config lists for Figure 3 (all rational)."""
    base = base_config(fast)
    with_inc = [base.with_(incentives_enabled=True, seed=s) for s in seeds]
    without = [base.with_(incentives_enabled=False, seed=s) for s in seeds]
    return with_inc, without


def mixture_configs(
    vary: str,
    seeds: list[int],
    fast: bool = False,
    percentages: list[int] | None = None,
    strict_editing: bool = False,
) -> list[tuple[int, list[SimulationConfig]]]:
    """Configs for the Figure 4/5/7 mixture sweeps.

    Returns ``[(percentage, [config per seed]), ...]`` where the varied
    type takes ``percentage`` % and the other two split the remainder.
    ``strict_editing=False`` matches the paper's simulated editing game
    (every type may edit; see ``SimulationConfig.enforce_edit_threshold``).
    """
    base = base_config(fast, enforce_edit_threshold=strict_editing)
    pcts = percentages if percentages is not None else list(range(10, 100, 10))
    out = []
    for pct, mix in zip(pcts, mixture_sweep(vary, pcts)):
        out.append((pct, [base.with_(mix=mix, seed=s) for s in seeds]))
    return out


def fig6_configs(
    seeds: list[int],
    fast: bool = False,
    percentages: list[int] | None = None,
    strict_editing: bool = False,
) -> list[tuple[int, list[SimulationConfig]]]:
    """Figure 6: rational share varies, altruistic == irrational remainder."""
    base = base_config(fast, enforce_edit_threshold=strict_editing)
    pcts = percentages if percentages is not None else list(range(10, 101, 10))
    out = []
    for pct in pcts:
        x = pct / 100.0
        rest = (1.0 - x) / 2.0
        mix = PopulationMix(rational=x, altruistic=rest, irrational=rest)
        out.append((pct, [base.with_(mix=mix, seed=s) for s in seeds]))
    return out
