"""Canned configurations matching the paper's experiments.

Each figure's experiment module asks this factory for its configs; the
``fast`` flag shrinks the horizon for benchmarks and smoke tests while
preserving the protocol (train at ``T = inf``, reset, evaluate at
``T = 1``).
"""

from __future__ import annotations

from ..agents.population import PopulationMix, mixture_sweep
from .config import SimulationConfig

__all__ = [
    "base_config",
    "fig3_configs",
    "mixture_configs",
    "fig6_configs",
]

#: Reduced horizon used by benchmarks / CI (protocol preserved).
FAST_TRAINING_STEPS = 1_500
FAST_EVAL_STEPS = 800


def base_config(fast: bool = False, **overrides) -> SimulationConfig:
    """The paper's default setting: 100 rational agents, incentives on."""
    cfg = SimulationConfig()
    if fast:
        cfg = cfg.with_(
            training_steps=FAST_TRAINING_STEPS, eval_steps=FAST_EVAL_STEPS
        )
    return cfg.with_(**overrides) if overrides else cfg


def fig3_configs(
    seeds: list[int], fast: bool = False
) -> tuple[list[SimulationConfig], list[SimulationConfig]]:
    """(incentive, no-incentive) config lists for Figure 3 (all rational)."""
    base = base_config(fast)
    with_inc = [base.with_(incentives_enabled=True, seed=s) for s in seeds]
    without = [base.with_(incentives_enabled=False, seed=s) for s in seeds]
    return with_inc, without


def mixture_configs(
    vary: str,
    seeds: list[int],
    fast: bool = False,
    percentages: list[int] | None = None,
    strict_editing: bool = False,
) -> list[tuple[int, list[SimulationConfig]]]:
    """Configs for the Figure 4/5/7 mixture sweeps.

    Returns ``[(percentage, [config per seed]), ...]`` where the varied
    type takes ``percentage`` % and the other two split the remainder.
    ``strict_editing=False`` matches the paper's simulated editing game
    (every type may edit; see ``SimulationConfig.enforce_edit_threshold``).
    """
    base = base_config(fast, enforce_edit_threshold=strict_editing)
    pcts = percentages if percentages is not None else list(range(10, 100, 10))
    out = []
    for pct, mix in zip(pcts, mixture_sweep(vary, pcts)):
        out.append((pct, [base.with_(mix=mix, seed=s) for s in seeds]))
    return out


def fig6_configs(
    seeds: list[int],
    fast: bool = False,
    percentages: list[int] | None = None,
    strict_editing: bool = False,
) -> list[tuple[int, list[SimulationConfig]]]:
    """Figure 6: rational share varies, altruistic == irrational remainder."""
    base = base_config(fast, enforce_edit_threshold=strict_editing)
    pcts = percentages if percentages is not None else list(range(10, 101, 10))
    out = []
    for pct in pcts:
        x = pct / 100.0
        rest = (1.0 - x) / 2.0
        mix = PopulationMix(rational=x, altruistic=rest, irrational=rest)
        out.append((pct, [base.with_(mix=mix, seed=s) for s in seeds]))
    return out
