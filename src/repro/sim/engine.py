"""Time-stepped simulation engine (paper section IV).

One :class:`CollaborationSimulation` reproduces the paper's protocol:

1. **Training phase** — ``training_steps`` (paper: 10 000) at ``T = inf``:
   rational agents act uniformly at random so every state-action pair is
   explored and "no agent will have a degenerated Q-Matrix".
2. **Phase boundary** — reputations (and punishment state) are reset,
   Q-matrices are kept.
3. **Evaluation phase** — ``eval_steps`` at ``T = 1``: actions are drawn
   from the Boltzmann distribution of the learned Q-values; learning stays
   on by default, which is what lets rational agents converge onto the
   majority behaviour (Figures 6/7).

Each step, every peer simultaneously (vectorized over the population):

* picks a sharing action (bandwidth level x files level) and an edit/vote
  behaviour (constructive/destructive) according to its type;
* downloads from a uniformly random sharing peer; concurrent downloads at
  one source split its upload bandwidth according to the scheme;
* may propose an article edit (if edit-eligible) which is decided by a
  weighted vote of the article's qualified voters;
* receives utilities ``U_S``/``U_E`` that feed the Q-learning update.

Hot paths (action selection, downloads, contributions, learning) are pure
NumPy over the population; only the per-proposal voting rounds run in a
short Python loop (a handful of proposals per step).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..agents.actions import EditActionSpace, SharingActionSpace
from ..agents.behaviors import BehaviorEngine
from ..agents.qlearning import VectorQLearner
from ..core.baselines import KarmaScheme, PrivateHistoryScheme
from ..core.incentives import make_scheme
from ..core.reputation import REPUTATION_FUNCTIONS, reputation_to_state
from ..core.service import (
    allocate_by_reputation,
    allocate_equal_split,
    required_majority,
)
from ..core.utility import editing_utility, sharing_utility
from ..network.articles import ArticleStore
from ..network.bandwidth import (
    sample_download_requests,
    sample_download_requests_overlay,
    settle_downloads,
)
from ..network.events import (
    EditEvent,
    EventLog,
    PunishmentEvent,
)
from ..network.overlay import ChurnModel, OverlayNetwork
from ..network.peer import PeerArrays, RATIONAL
from .config import SimulationConfig
from .metrics import MetricsCollector, StepStats
from .rng import make_rng

__all__ = ["SimulationResult", "CollaborationSimulation", "run_simulation"]


@dataclass
class SimulationResult:
    """Outcome of one run: summary metrics plus light diagnostics."""

    config: SimulationConfig
    summary: dict[str, float]
    training_summary: dict[str, float]
    wall_time_s: float
    events: EventLog | None = None
    extras: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.summary[key]


def _make_reputation_fn(name: str, params):
    try:
        cls = REPUTATION_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown reputation function {name!r}; "
            f"choose from {sorted(REPUTATION_FUNCTIONS)}"
        ) from None
    return cls(params)


class CollaborationSimulation:
    """A fully assembled run of the collaboration-network model."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.rng = make_rng(config.seed)
        c = config.constants

        types = config.mix.build(config.n_agents, self.rng)
        self.peers = PeerArrays.create(types)
        if config.capacity_sigma > 0.0:
            # Log-normal heterogeneous capacities, mean preserved at 1.
            sigma = config.capacity_sigma
            caps = self.rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma,
                                      size=config.n_agents)
            self.peers.upload_capacity[:] = caps
        self.overlay = (
            None
            if config.overlay_kind == "full"
            else OverlayNetwork(
                config.n_agents,
                kind=config.overlay_kind,
                rng=self.rng,
                degree=config.overlay_degree,
            )
        )
        scheme_name = config.resolved_scheme
        if scheme_name == "reputation":
            self.scheme = make_scheme(
                config.n_agents,
                True,
                c,
                reputation_fn_s=_make_reputation_fn(
                    config.reputation_fn_s, c.reputation_s
                ),
                reputation_fn_e=_make_reputation_fn(
                    config.reputation_fn_e, c.reputation_e
                ),
            )
        elif scheme_name == "none":
            self.scheme = make_scheme(config.n_agents, False, c)
        elif scheme_name == "tft":
            self.scheme = PrivateHistoryScheme(config.n_agents, c)
        elif scheme_name == "karma":
            self.scheme = KarmaScheme(config.n_agents, c)
        else:  # pragma: no cover - config validates names
            raise ValueError(f"unknown scheme {scheme_name!r}")
        # Optional hook: baselines track per-pair transfers.
        self._transfer_hook = getattr(self.scheme, "record_transfers", None)
        self.articles = ArticleStore(
            config.n_articles,
            config.n_agents,
            self.rng,
            founders_per_article=config.founders_per_article,
        )
        self.sharing_space = SharingActionSpace()
        self.edit_space = EditActionSpace()
        self.rational_idx = np.flatnonzero(types == RATIONAL)
        n_rational = self.rational_idx.size
        self.sharing_learner = VectorQLearner(
            max(n_rational, 1),
            config.n_states,
            self.sharing_space.n_actions,
            learning_rate=config.learning_rate,
            discount=config.discount,
        )
        self.edit_learner = VectorQLearner(
            max(n_rational, 1),
            config.n_states,
            self.edit_space.n_actions,
            learning_rate=config.learning_rate,
            discount=config.discount,
        )
        if n_rational == 0:
            # Placeholder learners keep the API uniform; BehaviorEngine
            # requires exact sizing, so rebuild them empty-compatible.
            self.sharing_learner = VectorQLearner(
                1, config.n_states, self.sharing_space.n_actions
            )
            self.edit_learner = VectorQLearner(
                1, config.n_states, self.edit_space.n_actions
            )
            self.behavior = _FixedOnlyBehavior(
                types, self.sharing_space, self.edit_space
            )
        else:
            self.behavior = BehaviorEngine(
                types,
                self.sharing_space,
                self.edit_space,
                self.sharing_learner,
                self.edit_learner,
            )
        self.churn = ChurnModel(
            leave_rate=config.leave_rate,
            join_rate=config.join_rate,
            whitewash_rate=config.whitewash_rate,
        )
        self.metrics = MetricsCollector(config.total_steps, types)
        self.events: EventLog | None = EventLog() if config.collect_events else None
        self.step_count = 0
        self.whitewash_count = 0

        # Scratch buffers reused every step (no per-step allocation).
        n = config.n_agents
        self._succ_votes = np.zeros(n, dtype=np.float64)
        self._acc_edits = np.zeros(n, dtype=np.float64)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute training + evaluation and summarize the eval window."""
        cfg = self.config
        t0 = time.perf_counter()
        for _ in range(cfg.training_steps):
            self.step(cfg.t_train, learn=True)
        self.scheme.reset_reputations()
        for _ in range(cfg.eval_steps):
            self.step(cfg.t_eval, learn=cfg.learn_during_eval)
        wall = time.perf_counter() - t0

        eval_start = cfg.training_steps
        window_start = eval_start + int(cfg.eval_steps * (1.0 - cfg.measure_window))
        summary = self.metrics.summary(window_start, cfg.total_steps)
        if cfg.training_steps > 0:
            training_summary = self.metrics.summary(0, cfg.training_steps)
        else:
            training_summary = {}
        extras = {"whitewash_count": float(self.whitewash_count)}
        return SimulationResult(
            config=cfg,
            summary=summary,
            training_summary=training_summary,
            wall_time_s=wall,
            events=self.events,
            extras=extras,
        )

    def summarize(self, measure_window: float | None = None) -> SimulationResult:
        """Summarize the steps recorded *so far* into a result.

        :meth:`run` drives both phases itself; this is for workflows that
        drive phases manually — e.g. restore a trained checkpoint, run
        only the evaluation phase, and persist the outcome in a
        :class:`repro.store.RunStore`.  The summary window is the last
        ``measure_window`` fraction (default: the config's) of whatever
        this instance recorded; ``training_summary`` stays empty because
        a restored sim never saw its own training steps.
        """
        recorded = self.metrics.steps_recorded
        if recorded < 1:
            raise ValueError("no steps recorded; nothing to summarize")
        frac = (
            self.config.measure_window if measure_window is None else measure_window
        )
        if not 0.0 < frac <= 1.0:
            raise ValueError("measure_window must be in (0, 1]")
        start = min(int(recorded * (1.0 - frac)), recorded - 1)
        return SimulationResult(
            config=self.config,
            summary=self.metrics.summary(start, recorded),
            training_summary={},
            wall_time_s=0.0,
            events=self.events,
            extras={
                "whitewash_count": float(self.whitewash_count),
                # Provenance marker: this summary came from manual phase
                # driving, not the canonical run() protocol.  RunStore
                # refuses it unless the caller explicitly vouches for it
                # (allow_partial=True) — a manually windowed summary under
                # a config's hash would otherwise poison the cache.
                "manual_summary": 1.0,
            },
        )

    # ------------------------------------------------------------------
    # One step
    # ------------------------------------------------------------------
    def step(self, temperature: float, learn: bool = True) -> None:
        cfg = self.config
        rng = self.rng
        n = cfg.n_agents
        scheme = self.scheme
        rep_p = cfg.constants.reputation_s

        # -- churn ------------------------------------------------------
        if self.churn.active:
            for ev in self.churn.step(rng, self.peers.online):
                if ev.kind == "whitewash":
                    scheme.ledger.reset_peers(np.array([ev.peer_id]))
                    self.whitewash_count += 1

        # -- observe state, choose actions ------------------------------
        rep_s = scheme.reputation_s()
        rep_e = scheme.reputation_e()
        states_s = reputation_to_state(
            rep_s[self.rational_idx], cfg.n_states, rep_p.r_min, rep_p.r_max
        )
        states_e = reputation_to_state(
            rep_e[self.rational_idx],
            cfg.n_states,
            cfg.constants.reputation_e.r_min,
            cfg.constants.reputation_e.r_max,
        )
        share_actions = self.behavior.sharing_actions(states_s, temperature, rng)
        bw, files = self.sharing_space.decode(share_actions)
        online = self.peers.online
        bw = bw * online
        files = files * online
        self.peers.set_actions(bw, files)
        edit_actions = self.behavior.edit_actions(states_e, temperature, rng)
        edit_constructive, vote_constructive = self.edit_space.decode(edit_actions)

        # -- downloads ----------------------------------------------------
        sharing_mask = self.peers.sharing_mask()
        if self.overlay is None:
            requests = sample_download_requests(
                rng, sharing_mask, cfg.download_probability
            )
        else:
            requests = sample_download_requests_overlay(
                rng, sharing_mask, self.overlay, cfg.download_probability
            )
        shares = scheme.bandwidth_shares(requests.source_ids, requests.downloader_ids)
        received, served = settle_downloads(
            requests,
            shares,
            self.peers.offered_bandwidth,
            self.peers.upload_capacity,
            n,
        )
        if self._transfer_hook is not None and requests.n:
            amounts = (
                self.peers.offered_bandwidth[requests.source_ids]
                * self.peers.upload_capacity[requests.source_ids]
                * shares
            )
            self._transfer_hook(requests.downloader_ids, requests.source_ids, amounts)

        # -- sharing utilities & contributions ---------------------------
        u_s = sharing_utility(received, files, bw, cfg.constants.utility)
        scheme.record_sharing(files, bw)

        # -- editing & voting --------------------------------------------
        self._succ_votes.fill(0.0)
        self._acc_edits.fill(0.0)
        proposals_count = np.zeros((3, 2))
        accepted_count = np.zeros((3, 2))
        votes_cast = 0
        votes_successful = 0
        vote_bans = 0
        reputation_resets = 0

        if cfg.enforce_edit_threshold:
            may_edit = scheme.may_edit() & online
        else:
            may_edit = online.copy()
        proposer_mask = may_edit & (rng.random(n) < cfg.edit_attempt_prob)
        proposers = np.flatnonzero(proposer_mask)
        if proposers.size:
            (
                votes_cast,
                votes_successful,
                vote_bans,
                reputation_resets,
            ) = self._editing_phase(
                proposers,
                edit_constructive,
                vote_constructive,
                rep_e,
                online,
                proposals_count,
                accepted_count,
            )

        u_e = editing_utility(self._acc_edits, self._succ_votes, cfg.constants.utility)
        scheme.record_editing(self._succ_votes, self._acc_edits)

        # -- learning -----------------------------------------------------
        if learn and self.rational_idx.size:
            next_rep_s = scheme.reputation_s()
            next_rep_e = scheme.reputation_e()
            next_states_s = reputation_to_state(
                next_rep_s[self.rational_idx], cfg.n_states, rep_p.r_min, rep_p.r_max
            )
            next_states_e = reputation_to_state(
                next_rep_e[self.rational_idx],
                cfg.n_states,
                cfg.constants.reputation_e.r_min,
                cfg.constants.reputation_e.r_max,
            )
            self.behavior.learn_sharing(states_s, share_actions, u_s, next_states_s)
            self.behavior.learn_editing(states_e, edit_actions, u_e, next_states_e)

        # -- metrics ------------------------------------------------------
        self.metrics.record(
            StepStats(
                offered_files=files,
                offered_bandwidth=bw,
                reputation_s=rep_s,
                reputation_e=rep_e,
                sharing_utility=u_s,
                editing_utility=u_e,
                proposals=proposals_count,
                accepted=accepted_count,
                votes_cast=votes_cast,
                votes_successful=votes_successful,
                vote_bans=vote_bans,
                reputation_resets=reputation_resets,
            )
        )
        self.step_count += 1

    # ------------------------------------------------------------------
    def _editing_phase(
        self,
        proposers: np.ndarray,
        edit_constructive: np.ndarray,
        vote_constructive: np.ndarray,
        rep_e: np.ndarray,
        online: np.ndarray,
        proposals_count: np.ndarray,
        accepted_count: np.ndarray,
    ) -> tuple[int, int, int, int]:
        """Decide all of a step's edit proposals with batched weighted votes.

        All proposals of one step are settled *simultaneously* against the
        step-start reputation snapshot ``rep_e`` (reputations only move
        between steps): voter weights are normalized per proposal with the
        same grouped-share kernel the bandwidth allocator uses, outcomes
        are scattered back with ``np.add.at``.  Only the per-article voter
        lookup (a Python set) runs in a loop.

        Vote success is measured against the *simple* weighted majority
        (>= 0.5), not the adaptive acceptance bar: a voter should not be
        punished for siding with the majority merely because a low-
        reputation editor needed a supermajority.

        Returns (votes_cast, votes_successful, new_vote_bans,
        reputation_resets) and updates the per-type count matrices and the
        per-peer ``_succ_votes``/``_acc_edits`` buffers in place.
        """
        cfg = self.config
        scheme = self.scheme
        rng = self.rng
        n_prop = proposers.size
        article_ids = self.articles.sample_articles(rng, n_prop)
        can_vote = scheme.may_vote() & online

        voter_chunks: list[np.ndarray] = []
        prop_chunks: list[np.ndarray] = []
        for p in range(n_prop):
            voters = self.articles.eligible_voters(
                int(article_ids[p]), can_vote, exclude=int(proposers[p])
            )
            if voters.size > cfg.max_voters_per_edit:
                voters = rng.choice(voters, size=cfg.max_voters_per_edit, replace=False)
            voter_chunks.append(voters)
            prop_chunks.append(np.full(voters.size, p, dtype=np.int64))
        flat_voters = (
            np.concatenate(voter_chunks) if voter_chunks else np.empty(0, np.int64)
        )
        flat_prop = (
            np.concatenate(prop_chunks) if prop_chunks else np.empty(0, np.int64)
        )
        voter_counts = np.bincount(flat_prop, minlength=n_prop)
        prop_constructive = edit_constructive[proposers]

        if scheme.differentiates_service:
            weights = allocate_by_reputation(flat_prop, rep_e[flat_voters], n_prop)
            required = required_majority(
                rep_e[proposers], cfg.constants.service, cfg.constants.reputation_e
            )
        else:
            weights = allocate_equal_split(flat_prop, n_prop)
            required = np.full(n_prop, 0.5)

        votes_for = vote_constructive[flat_voters] == prop_constructive[flat_prop]
        for_weight = np.zeros(n_prop)
        np.add.at(for_weight, flat_prop[votes_for], weights[votes_for])
        quorum = voter_counts >= cfg.min_voters_per_edit
        accepted = quorum & (for_weight >= required)
        majority_for = for_weight >= 0.5
        successful = votes_for == majority_for[flat_prop]

        np.add.at(self._succ_votes, flat_voters[successful], 1.0)
        newly_banned = scheme.record_vote_outcomes(flat_voters, successful)
        punished = scheme.record_edit_outcomes(proposers, accepted)

        types = self.peers.types[proposers]
        cons_idx = prop_constructive.astype(np.int64)
        np.add.at(proposals_count, (types, cons_idx), 1)
        acc = np.flatnonzero(accepted)
        np.add.at(accepted_count, (types[acc], cons_idx[acc]), 1)
        np.add.at(self._acc_edits, proposers[acc], 1.0)
        for p in acc:
            self.articles.articles[int(article_ids[p])].record_accepted(
                int(proposers[p]), bool(prop_constructive[p])
            )

        if self.events is not None:
            for p in range(n_prop):
                self.events.record_edit(
                    EditEvent(
                        step=self.step_count,
                        article_id=int(article_ids[p]),
                        editor_id=int(proposers[p]),
                        constructive=bool(prop_constructive[p]),
                        accepted=bool(accepted[p]),
                        for_weight=float(for_weight[p]),
                        required_majority=float(required[p]),
                        n_voters=int(voter_counts[p]),
                    )
                )
            for peer in newly_banned:
                self.events.record_punishment(
                    PunishmentEvent(self.step_count, int(peer), "vote_ban")
                )
            for peer in punished:
                self.events.record_punishment(
                    PunishmentEvent(self.step_count, int(peer), "reputation_reset")
                )
        return (
            int(flat_voters.size),
            int(successful.sum()),
            int(newly_banned.size),
            int(punished.size),
        )


class _FixedOnlyBehavior:
    """Degenerate behaviour engine for populations without rational peers."""

    def __init__(self, types, sharing_space, edit_space):
        from ..network.peer import ALTRUISTIC, IRRATIONAL

        self.n = types.size
        self.sharing_space = sharing_space
        self.edit_space = edit_space
        self.altruistic_idx = np.flatnonzero(types == ALTRUISTIC)
        self.irrational_idx = np.flatnonzero(types == IRRATIONAL)

    def sharing_actions(self, states, temperature, rng):
        actions = np.empty(self.n, dtype=np.int64)
        actions[self.altruistic_idx] = self.sharing_space.max_action
        actions[self.irrational_idx] = self.sharing_space.min_action
        return actions

    def edit_actions(self, states, temperature, rng):
        actions = np.empty(self.n, dtype=np.int64)
        actions[self.altruistic_idx] = self.edit_space.constructive_action
        actions[self.irrational_idx] = self.edit_space.destructive_action
        return actions

    def learn_sharing(self, *args) -> None:  # pragma: no cover - no-op
        pass

    def learn_editing(self, *args) -> None:  # pragma: no cover - no-op
        pass


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Build and run one simulation (the sweep workers call this)."""
    return CollaborationSimulation(config).run()
