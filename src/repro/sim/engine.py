"""Time-stepped simulation engine (paper section IV).

One :class:`CollaborationSimulation` reproduces the paper's protocol:

1. **Training phase** — ``training_steps`` (paper: 10 000) at ``T = inf``:
   rational agents act uniformly at random so every state-action pair is
   explored and "no agent will have a degenerated Q-Matrix".
2. **Phase boundary** — reputations (and punishment state) are reset,
   Q-matrices are kept.
3. **Evaluation phase** — ``eval_steps`` at ``T = 1``: actions are drawn
   from the Boltzmann distribution of the learned Q-values; learning stays
   on by default, which is what lets rational agents converge onto the
   majority behaviour (Figures 6/7).

The per-step protocol itself lives in the composable phase kernels of
:mod:`repro.sim.phases` (churn -> act -> download -> edit_vote -> learn ->
record) operating on an explicit :class:`repro.sim.state.SimState`.  The
state carries a replicate axis, which yields two front-ends:

* :class:`CollaborationSimulation` — the historical single-run API, now a
  thin wrapper over an ``R = 1`` state (all attributes are the state's own
  arrays, so checkpointing and introspection work unchanged);
* :class:`BatchedSimulation` — ``R`` seed-varied replicates of one config
  advanced in lock-step as stacked ``(R, N)`` populations, amortizing the
  Python per-step overhead over the whole ensemble.  Batched replicate
  ``r`` reproduces the sequential run with the same seed **bit for bit**
  (each replicate owns an independent RNG stream consumed in the
  sequential order; all cross-replicate math is elementwise or grouped by
  disjoint slot ranges).

:func:`run_replicates` is the ensemble entry point the sweep layer and the
``repro`` CLI build on: per-replicate results are returned (and cached)
individually, so batched and sequential execution share one cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..network.events import EventLog
from ..obs import Stopwatch, get_tracer
from .config import SimulationConfig
from .phases import step_state
from .rng import spawn_seeds
from .state import SimState, build_sim_state

__all__ = [
    "SimulationResult",
    "CollaborationSimulation",
    "BatchedSimulation",
    "run_simulation",
    "run_replicates",
    "replicate_configs",
]


@dataclass
class SimulationResult:
    """Outcome of one run: summary metrics plus light diagnostics."""

    config: SimulationConfig
    summary: dict[str, float]
    training_summary: dict[str, float]
    wall_time_s: float
    events: EventLog | None = None
    extras: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.summary[key]


def _summary_window(cfg: SimulationConfig) -> int:
    """First step of the evaluation window the summary reduces over."""
    eval_start = cfg.training_steps
    return eval_start + int(cfg.eval_steps * (1.0 - cfg.measure_window))


def replicate_configs(
    config: SimulationConfig, n_replicates: int, root_seed: int | None = None
) -> list[SimulationConfig]:
    """``n_replicates`` copies of ``config`` with independent derived seeds.

    This is the single seed-derivation rule every ensemble path uses —
    :func:`run_replicates`, :func:`repro.sim._sweep.replicate` and through
    them the ``repro`` CLI — so batched and per-seed executions always
    address the same RunStore entries.
    """
    if n_replicates < 1:
        raise ValueError("n_replicates must be >= 1")
    root = config.seed if root_seed is None else root_seed
    return [config.with_(seed=s) for s in spawn_seeds(root, n_replicates)]


def _run_protocol(state) -> float:
    """Drive the paper's protocol on a state: train at ``T = t_train``,
    reset reputations at the phase boundary, evaluate at ``T = t_eval``.

    Shared by the single-run and batched front-ends so the protocol can
    never diverge between them (the batched == sequential bit-identity
    contract depends on that).  Step counts and the eval-learning flag
    are structural (shared by every lane); the temperatures come from the
    lane parameters, so mixed-temperature batches train/evaluate each
    lane at its own ``T``.  Returns the wall time consumed.

    Timing flows through :mod:`repro.obs`: the returned wall time is a
    :class:`~repro.obs.Stopwatch` reading, and an enabled ambient tracer
    additionally records ``engine/train`` / ``engine/eval`` boundary
    spans (plus the per-kernel ``phase/*`` spans inside ``step_state``).
    A compiling kernel backend is warmed *before* the timed protocol so
    one-time JIT compilation lands in its own ``backend/compile`` span
    instead of silently inflating the first step of ``engine/train``.
    """
    cfg = state.config
    lanes = state.lanes
    tracer = get_tracer()
    state.backend.ensure_warm(tracer)
    dims = {
        "lanes": state.n_replicates,
        "agents": state.n_agents,
        "steps": cfg.training_steps,
    }
    watch = Stopwatch()
    with tracer.span("engine/train", **dims):
        for _ in range(cfg.training_steps):
            step_state(state, lanes.t_train, learn=True)
    state.scheme.reset_reputations()
    with tracer.span("engine/eval", **{**dims, "steps": cfg.eval_steps}):
        for _ in range(cfg.eval_steps):
            step_state(state, lanes.t_eval, learn=cfg.learn_during_eval)
    return watch.elapsed()


def _phase_summaries(state, replicate: int) -> tuple[dict, dict]:
    """(evaluation-window summary, training summary) for one replicate.

    Windowing uses the *lane's own* config (``measure_window`` may differ
    per lane; the step counts are structural and shared).
    """
    cfg = state.configs[replicate]
    summary = state.metrics.summary(
        _summary_window(cfg), cfg.total_steps, replicate=replicate
    )
    if cfg.training_steps > 0:
        training = state.metrics.summary(
            0, cfg.training_steps, replicate=replicate
        )
    else:
        training = {}
    return summary, training


class CollaborationSimulation:
    """A fully assembled single run of the collaboration-network model.

    This is the ``R = 1`` specialization of the phase-kernel pipeline:
    every public attribute (``peers``, ``scheme``, ``metrics``,
    ``sharing_learner``, ...) *is* the underlying state's object, with the
    historical single-run shapes.
    """

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.state = build_sim_state([config])
        s = self.state
        self.rng = s.rngs[0]
        self.peers = s.peers
        self.overlay = s.overlays[0] if s.overlays is not None else None
        self.scheme = s.scheme
        self.articles = s.articles[0]
        self.sharing_space = s.sharing_space
        self.edit_space = s.edit_space
        self.rational_idx = s.rational_idx
        self.sharing_learner = s.sharing_learner
        self.edit_learner = s.edit_learner
        self.behavior = s.behavior
        self.churn = s.churn[0]
        self.metrics = s.metrics
        self.events = s.events[0]

    # ------------------------------------------------------------------
    @property
    def step_count(self) -> int:
        return self.state.step_count

    @step_count.setter
    def step_count(self, value: int) -> None:
        self.state.step_count = int(value)

    @property
    def whitewash_count(self) -> int:
        return int(self.state.whitewash_counts[0])

    @property
    def sybil_count(self) -> int:
        return int(self.state.sybil_counts[0])

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute training + evaluation and summarize the eval window."""
        wall = _run_protocol(self.state)
        summary, training_summary = _phase_summaries(self.state, replicate=0)
        return SimulationResult(
            config=self.config,
            summary=summary,
            training_summary=training_summary,
            wall_time_s=wall,
            events=self.events,
            extras={
                "whitewash_count": float(self.whitewash_count),
                "sybil_count": float(self.sybil_count),
            },
        )

    def summarize(self, measure_window: float | None = None) -> SimulationResult:
        """Summarize the steps recorded *so far* into a result.

        :meth:`run` drives both phases itself; this is for workflows that
        drive phases manually — e.g. restore a trained checkpoint, run
        only the evaluation phase, and persist the outcome in a
        :class:`repro.store.RunStore`.  The summary window is the last
        ``measure_window`` fraction (default: the config's) of whatever
        this instance recorded; ``training_summary`` stays empty because
        a restored sim never saw its own training steps.
        """
        recorded = self.metrics.steps_recorded
        if recorded < 1:
            raise ValueError("no steps recorded; nothing to summarize")
        frac = (
            self.config.measure_window if measure_window is None else measure_window
        )
        if not 0.0 < frac <= 1.0:
            raise ValueError("measure_window must be in (0, 1]")
        start = min(int(recorded * (1.0 - frac)), recorded - 1)
        return SimulationResult(
            config=self.config,
            summary=self.metrics.summary(start, recorded),
            training_summary={},
            wall_time_s=0.0,
            events=self.events,
            extras={
                "whitewash_count": float(self.whitewash_count),
                "sybil_count": float(self.sybil_count),
                # Provenance marker: this summary came from manual phase
                # driving, not the canonical run() protocol.  RunStore
                # refuses it unless the caller explicitly vouches for it
                # (allow_partial=True) — a manually windowed summary under
                # a config's hash would otherwise poison the cache.
                "manual_summary": 1.0,
            },
        )

    # ------------------------------------------------------------------
    # One step
    # ------------------------------------------------------------------
    def step(self, temperature: float, learn: bool = True) -> None:
        """Advance one step through the phase-kernel pipeline."""
        step_state(self.state, temperature, learn=learn)


class BatchedSimulation:
    """``R`` stacked lanes stepped in lock-step — seed replicates of one
    config, or a heterogeneous mix of configs.

    ``configs`` must agree on the structural dimensions
    (:data:`repro.sim.lanes.STRUCTURAL_FIELDS` plus the scheme class);
    everything else — temperatures, constants, mixes, churn/adversary
    knobs — may differ per lane, each lane reproducing its sequential run
    bit for bit.  Event collection is not supported here — use sequential
    runs for event-level diagnostics (``run_replicates`` and the sweep
    lane planner fall back automatically).
    """

    def __init__(self, configs: list[SimulationConfig]):
        if not configs:
            raise ValueError("need at least one config")
        if any(c.collect_events for c in configs):
            raise ValueError(
                "BatchedSimulation does not collect events; "
                "run event-collecting configs sequentially"
            )
        self.configs = list(configs)
        self.state: SimState = build_sim_state(self.configs)

    @property
    def n_replicates(self) -> int:
        return self.state.n_replicates

    def step(self, temperature: float, learn: bool = True) -> None:
        """Advance every replicate by one simultaneous step."""
        step_state(self.state, temperature, learn=learn)

    def run(self) -> list[SimulationResult]:
        """Execute the full protocol; one result per replicate, in order.

        ``wall_time_s`` reports each replicate's amortized share of the
        batch's wall time (the batch is one process-level execution).
        """
        wall = _run_protocol(self.state)
        results = []
        for r, conf in enumerate(self.configs):
            summary, training_summary = _phase_summaries(self.state, replicate=r)
            results.append(
                SimulationResult(
                    config=conf,
                    summary=summary,
                    training_summary=training_summary,
                    wall_time_s=wall / self.n_replicates,
                    events=None,
                    extras={
                        "whitewash_count": float(self.state.whitewash_counts[r]),
                        "sybil_count": float(self.state.sybil_counts[r]),
                    },
                )
            )
        return results


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Build and run one simulation (the sweep workers call this)."""
    return CollaborationSimulation(config).run()


def run_replicates(
    config: SimulationConfig,
    n_replicates: int,
    root_seed: int | None = None,
    store: Any = None,
) -> list[SimulationResult]:
    """Run ``n_replicates`` seed-varied copies of ``config`` batched.

    Seeds are derived exactly like :func:`repro.sim._sweep.replicate`
    (``SeedSequence`` children of ``root_seed``, default the config's
    seed), so batched ensembles and sequential sweeps share cache
    entries.  With a ``store``, cached replicates are served without
    executing and fresh ones are persisted individually the moment the
    batch finishes — resume semantics are identical to a sequential
    sweep.  Falls back to sequential execution for event-collecting
    configs (whose events the store cannot persist and the batched
    engine does not record).

    Example::

        >>> from repro.sim.config import SimulationConfig
        >>> from repro.sim.engine import run_replicates
        >>> cfg = SimulationConfig(n_agents=8, n_articles=2,
        ...                        founders_per_article=2,
        ...                        training_steps=5, eval_steps=5)
        >>> results = run_replicates(cfg, n_replicates=3)
        >>> len(results), len({r.config.seed for r in results})
        (3, 3)
    """
    configs = replicate_configs(config, n_replicates, root_seed)
    results: list[SimulationResult | None] = [None] * n_replicates

    storable = store is not None and not config.collect_events
    pending: list[int] = []
    for i, conf in enumerate(configs):
        cached = store.get(conf) if storable else None
        if cached is not None:
            results[i] = cached
        else:
            pending.append(i)

    if pending:
        if config.collect_events or len(pending) == 1:
            fresh = [run_simulation(configs[i]) for i in pending]
        else:
            fresh = BatchedSimulation([configs[i] for i in pending]).run()
        for i, result in zip(pending, fresh):
            if storable:
                store.put(result)
            results[i] = result
    return results  # type: ignore[return-value]  # every slot is filled
