"""Per-step metric collection and windowed summaries.

The collector preallocates one float64 row per step for every series (no
appends in the hot loop) and exposes the quantities the paper's Figures 3-7
report:

* fraction of shared articles / bandwidth, overall and per behaviour type;
* constructive vs destructive edit proposals by rational agents;
* acceptance counts per (behaviour, constructiveness);
* mean reputations per type (diagnostics).

``summary(start, end)`` reduces a step window into a plain dict of floats —
the unit every experiment, benchmark and test consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL, TYPE_NAMES

__all__ = ["StepStats", "MetricsCollector"]


@dataclass
class StepStats:
    """Everything the engine hands the collector after one step."""

    offered_files: np.ndarray  # per peer, [0, 1]
    offered_bandwidth: np.ndarray  # per peer, [0, 1]
    reputation_s: np.ndarray
    reputation_e: np.ndarray
    sharing_utility: np.ndarray
    editing_utility: np.ndarray
    # Edit-proposal counts for this step, keyed by behaviour type code:
    # shape (3, 2): [type, constructive? 1 : 0] -> proposals
    proposals: np.ndarray
    accepted: np.ndarray  # same shape: accepted proposals
    votes_cast: int
    votes_successful: int
    vote_bans: int
    reputation_resets: int


class MetricsCollector:
    """Fixed-size store of per-step series."""

    _TYPES = (RATIONAL, ALTRUISTIC, IRRATIONAL)

    def __init__(self, n_steps: int, types: np.ndarray):
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        self.n_steps = int(n_steps)
        self.types = np.asarray(types, dtype=np.int8)
        self._masks = {t: self.types == t for t in self._TYPES}
        self._counts = {t: int(m.sum()) for t, m in self._masks.items()}
        self._cursor = 0

        shape = (self.n_steps,)
        self.files_all = np.zeros(shape)
        self.bandwidth_all = np.zeros(shape)
        self.files_by_type = {t: np.zeros(shape) for t in self._TYPES}
        self.bandwidth_by_type = {t: np.zeros(shape) for t in self._TYPES}
        self.rep_s_by_type = {t: np.zeros(shape) for t in self._TYPES}
        self.rep_e_by_type = {t: np.zeros(shape) for t in self._TYPES}
        self.utility_s_all = np.zeros(shape)
        self.utility_e_all = np.zeros(shape)
        # (steps, type, constructive) proposal/acceptance counts.
        self.proposals = np.zeros((self.n_steps, 3, 2))
        self.accepted = np.zeros((self.n_steps, 3, 2))
        self.votes_cast = np.zeros(shape)
        self.votes_successful = np.zeros(shape)
        self.vote_bans = np.zeros(shape)
        self.reputation_resets = np.zeros(shape)

    # ------------------------------------------------------------------
    def record(self, stats: StepStats) -> None:
        i = self._cursor
        if i >= self.n_steps:
            raise RuntimeError("metrics store is full")
        self.files_all[i] = stats.offered_files.mean()
        self.bandwidth_all[i] = stats.offered_bandwidth.mean()
        for t, mask in self._masks.items():
            if self._counts[t]:
                self.files_by_type[t][i] = stats.offered_files[mask].mean()
                self.bandwidth_by_type[t][i] = stats.offered_bandwidth[mask].mean()
                self.rep_s_by_type[t][i] = stats.reputation_s[mask].mean()
                self.rep_e_by_type[t][i] = stats.reputation_e[mask].mean()
            else:
                self.files_by_type[t][i] = np.nan
                self.bandwidth_by_type[t][i] = np.nan
                self.rep_s_by_type[t][i] = np.nan
                self.rep_e_by_type[t][i] = np.nan
        self.utility_s_all[i] = stats.sharing_utility.mean()
        self.utility_e_all[i] = stats.editing_utility.mean()
        self.proposals[i] = stats.proposals
        self.accepted[i] = stats.accepted
        self.votes_cast[i] = stats.votes_cast
        self.votes_successful[i] = stats.votes_successful
        self.vote_bans[i] = stats.vote_bans
        self.reputation_resets[i] = stats.reputation_resets
        self._cursor += 1

    @property
    def steps_recorded(self) -> int:
        return self._cursor

    # ------------------------------------------------------------------
    def summary(self, start: int, end: int | None = None) -> dict[str, float]:
        """Reduce the window ``[start, end)`` into scalar metrics."""
        end = self._cursor if end is None else end
        if not 0 <= start < end <= self._cursor:
            raise ValueError(f"bad window [{start}, {end}) with {self._cursor} steps")
        sl = slice(start, end)
        out: dict[str, float] = {
            "shared_files": float(self.files_all[sl].mean()),
            "shared_bandwidth": float(self.bandwidth_all[sl].mean()),
            "utility_sharing": float(self.utility_s_all[sl].mean()),
            "utility_editing": float(self.utility_e_all[sl].mean()),
            "votes_cast_per_step": float(self.votes_cast[sl].mean()),
            "vote_success_rate": _safe_ratio(
                self.votes_successful[sl].sum(), self.votes_cast[sl].sum()
            ),
            "vote_bans": float(self.vote_bans[sl].sum()),
            "reputation_resets": float(self.reputation_resets[sl].sum()),
        }
        for t in self._TYPES:
            name = TYPE_NAMES[t]
            out[f"shared_files_{name}"] = _nanmean(self.files_by_type[t][sl])
            out[f"shared_bandwidth_{name}"] = _nanmean(self.bandwidth_by_type[t][sl])
            out[f"reputation_s_{name}"] = _nanmean(self.rep_s_by_type[t][sl])
            out[f"reputation_e_{name}"] = _nanmean(self.rep_e_by_type[t][sl])

        props = self.proposals[sl].sum(axis=0)  # (3, 2)
        accs = self.accepted[sl].sum(axis=0)
        for t in self._TYPES:
            name = TYPE_NAMES[t]
            good, bad = props[t, 1], props[t, 0]
            out[f"edits_constructive_{name}"] = float(good)
            out[f"edits_destructive_{name}"] = float(bad)
            out[f"edit_constructive_fraction_{name}"] = _safe_ratio(good, good + bad)
            out[f"accepted_constructive_{name}"] = float(accs[t, 1])
            out[f"accepted_destructive_{name}"] = float(accs[t, 0])
            out[f"edit_accept_rate_{name}"] = _safe_ratio(
                accs[t].sum(), props[t].sum()
            )
        total_good = props[:, 1].sum()
        total_bad = props[:, 0].sum()
        out["edit_constructive_fraction"] = _safe_ratio(
            total_good, total_good + total_bad
        )
        out["accepted_constructive_rate"] = _safe_ratio(
            accs[:, 1].sum(), props[:, 1].sum()
        )
        out["accepted_destructive_rate"] = _safe_ratio(
            accs[:, 0].sum(), props[:, 0].sum()
        )
        return out

    def series(self, name: str) -> np.ndarray:
        """A recorded per-step series (trimmed to recorded length)."""
        arr = getattr(self, name, None)
        if not isinstance(arr, np.ndarray):
            raise KeyError(name)
        return arr[: self._cursor]


def _safe_ratio(num: float, den: float) -> float:
    return float(num) / float(den) if den else float("nan")


def _nanmean(values: np.ndarray) -> float:
    finite = values[~np.isnan(values)]
    return float(finite.mean()) if finite.size else float("nan")
