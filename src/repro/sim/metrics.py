"""Per-step metric collection and windowed summaries.

The collector preallocates one float64 row per step for every series (no
appends in the hot loop) and exposes the quantities the paper's Figures 3-7
report:

* fraction of shared articles / bandwidth, overall and per behaviour type;
* constructive vs destructive edit proposals by rational agents;
* acceptance counts per (behaviour, constructiveness);
* mean reputations per type (diagnostics).

``summary(start, end)`` reduces a step window into a plain dict of floats —
the unit every experiment, benchmark and test consumes.

Replicate axis
--------------
With ``n_replicates = R > 1`` the collector records ``R`` stacked
independent runs at once: per-peer inputs arrive as flat ``(R * N,)`` (or
``(R, N)``) arrays, counters as ``(R,)`` arrays, and every series becomes
``(R, n_steps)``.  All reductions are row-wise over contiguous memory, so
replicate ``r``'s recorded values — and therefore its ``summary`` — are
bit-identical to collecting that replicate alone.  For ``R = 1`` the
public attributes stay 1-D (zero-copy views of row 0), preserving the
historical single-run API exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL, TYPE_NAMES

__all__ = ["StepStats", "MetricsCollector"]


@dataclass
class StepStats:
    """Everything the engine hands the collector after one step.

    Per-peer arrays are ``(N,)`` for a single run or flat ``(R * N,)`` /
    ``(R, N)`` for stacked replicates; the count matrices are ``(3, 2)``
    or ``(R, 3, 2)``; the scalar counters become ``(R,)`` arrays.
    """

    offered_files: np.ndarray  # per peer, [0, 1]
    offered_bandwidth: np.ndarray  # per peer, [0, 1]
    reputation_s: np.ndarray
    reputation_e: np.ndarray
    sharing_utility: np.ndarray
    editing_utility: np.ndarray
    # Edit-proposal counts for this step, keyed by behaviour type code:
    # shape (3, 2): [type, constructive? 1 : 0] -> proposals
    proposals: np.ndarray
    accepted: np.ndarray  # same shape: accepted proposals
    votes_cast: int | np.ndarray
    votes_successful: int | np.ndarray
    vote_bans: int | np.ndarray
    reputation_resets: int | np.ndarray


class MetricsCollector:
    """Fixed-size store of per-step series (optionally replicate-stacked).

    ``streaming=True`` switches the per-type reductions from gather
    buffers (copy each type's members, then row means) to one-pass
    segment sums (``np.bincount`` over a precomputed ``(replicate,
    type)`` label array).  The streaming path allocates nothing
    per-peer beyond the label vector — the scale engine flips it on
    above ``scale.stream_metrics_threshold`` agents, where the four
    ``(4, R·k)`` gather scratch buffers stop being free.  Recorded
    means are statistically identical; they are bitwise identical to
    the gather path only for single-member types (the accumulation
    tree differs), which is why the threshold default leaves small
    populations on the historical path.
    """

    _TYPES = (RATIONAL, ALTRUISTIC, IRRATIONAL)

    def __init__(
        self,
        n_steps: int,
        types: np.ndarray,
        n_replicates: int = 1,
        streaming: bool = False,
    ):
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        types = np.asarray(types, dtype=np.int8)
        if types.ndim == 2:
            n_replicates = types.shape[0]
        elif types.ndim != 1:
            raise ValueError("types must be 1-D or (n_replicates, n_agents)")
        if n_replicates < 1 or types.size % n_replicates:
            raise ValueError("types must split evenly into n_replicates rows")
        self.n_steps = int(n_steps)
        self.n_replicates = int(n_replicates)
        self.types = types.reshape(-1)
        self._n_per_rep = self.types.size // self.n_replicates
        types2d = self.types.reshape(self.n_replicates, self._n_per_rep)
        self.streaming = bool(streaming)
        # Per-(replicate, type) member indices, precomputed once; gathers
        # through these match boolean-mask compression element-for-element.
        # The streaming path reduces by label instead and skips them.
        self._type_idx = (
            None
            if self.streaming
            else [
                {t: np.flatnonzero(types2d[r] == t) for t in self._TYPES}
                for r in range(self.n_replicates)
            ]
        )
        self._cursor = 0

        R = self.n_replicates
        shape = (R, self.n_steps)
        self._files_all = np.zeros(shape)
        self._bandwidth_all = np.zeros(shape)
        self._files_by_type = {t: np.zeros(shape) for t in self._TYPES}
        self._bandwidth_by_type = {t: np.zeros(shape) for t in self._TYPES}
        self._rep_s_by_type = {t: np.zeros(shape) for t in self._TYPES}
        self._rep_e_by_type = {t: np.zeros(shape) for t in self._TYPES}
        self._utility_s_all = np.zeros(shape)
        self._utility_e_all = np.zeros(shape)
        # (replicate, steps, type, constructive) proposal/acceptance counts.
        self._proposals = np.zeros((R, self.n_steps, 3, 2))
        self._accepted = np.zeros((R, self.n_steps, 3, 2))
        self._votes_cast = np.zeros(shape)
        self._votes_successful = np.zeros(shape)
        self._vote_bans = np.zeros(shape)
        self._reputation_resets = np.zeros(shape)
        if self.streaming:
            # One (replicate, type) label per slot: per-type means become
            # bincount segment sums — no per-peer gather buffers at all.
            pos = np.full(self.types.size, -1, dtype=np.int64)
            for k, t in enumerate(self._TYPES):
                pos[self.types == t] = k
            reps = np.repeat(np.arange(R, dtype=np.int64), self._n_per_rep)
            self._labels = reps * len(self._TYPES) + pos
            counts = np.bincount(
                self._labels, minlength=R * len(self._TYPES)
            ).reshape(R, len(self._TYPES))
            self._label_counts = counts.astype(np.float64)
            self._label_empty = counts == 0
        else:
            # Scratch: the four per-peer series stacked so one contiguous
            # gather serves all per-type means (reused every step).
            self._type_buf = np.empty((4, self.types.size))
            # When a type has the same member count in every replicate (the
            # common case — replicates share one mix), its means batch into a
            # single take over flat slot ids; ragged types fall back to a
            # per-replicate loop.  Both paths gather the same elements in the
            # same per-replicate order and reduce contiguous rows of the same
            # length, so they are bit-identical.
            self._type_flat_idx: dict[int, np.ndarray | None] = {}
            for t in self._TYPES:
                sizes = {self._type_idx[r][t].size for r in range(R)}
                if len(sizes) == 1 and sizes != {0}:
                    self._type_flat_idx[t] = np.concatenate(
                        [
                            self._type_idx[r][t] + r * self._n_per_rep
                            for r in range(R)
                        ]
                    )
                else:
                    self._type_flat_idx[t] = None
            # Reused per-step scratch for the by-type gathers: one (4, R*k)
            # take target per type and one (4, R) mean target, so the hot
            # record() path allocates nothing for the batched types.
            self._gather_buf = {
                t: np.empty((4, idx.size))
                for t, idx in self._type_flat_idx.items()
                if idx is not None
            }
            self._type_mean = np.empty((4, R))

        # Public views: single runs keep the historical 1-D attributes
        # (row-0 views, zero-copy); stacked runs expose the (R, steps)
        # arrays directly.
        first = (lambda a: a[0]) if R == 1 else (lambda a: a)
        self.files_all = first(self._files_all)
        self.bandwidth_all = first(self._bandwidth_all)
        self.files_by_type = {t: first(a) for t, a in self._files_by_type.items()}
        self.bandwidth_by_type = {
            t: first(a) for t, a in self._bandwidth_by_type.items()
        }
        self.rep_s_by_type = {t: first(a) for t, a in self._rep_s_by_type.items()}
        self.rep_e_by_type = {t: first(a) for t, a in self._rep_e_by_type.items()}
        self.utility_s_all = first(self._utility_s_all)
        self.utility_e_all = first(self._utility_e_all)
        self.proposals = first(self._proposals)
        self.accepted = first(self._accepted)
        self.votes_cast = first(self._votes_cast)
        self.votes_successful = first(self._votes_successful)
        self.vote_bans = first(self._vote_bans)
        self.reputation_resets = first(self._reputation_resets)

    # ------------------------------------------------------------------
    def record(self, stats: StepStats) -> None:
        i = self._cursor
        if i >= self.n_steps:
            raise RuntimeError("metrics store is full")
        R, N = self.n_replicates, self._n_per_rep
        files = np.asarray(stats.offered_files).reshape(R, N)
        bw = np.asarray(stats.offered_bandwidth).reshape(R, N)
        rep_s = np.asarray(stats.reputation_s).reshape(R, N)
        rep_e = np.asarray(stats.reputation_e).reshape(R, N)
        np.mean(files, axis=1, out=self._files_all[:, i])
        np.mean(bw, axis=1, out=self._bandwidth_all[:, i])
        if self.streaming:
            self._record_types_streaming(i, files, bw, rep_s, rep_e)
        else:
            self._record_types_gathered(i, files, bw, rep_s, rep_e)
        np.mean(
            np.asarray(stats.sharing_utility).reshape(R, N),
            axis=1,
            out=self._utility_s_all[:, i],
        )
        np.mean(
            np.asarray(stats.editing_utility).reshape(R, N),
            axis=1,
            out=self._utility_e_all[:, i],
        )
        self._proposals[:, i] = np.asarray(stats.proposals).reshape(R, 3, 2)
        self._accepted[:, i] = np.asarray(stats.accepted).reshape(R, 3, 2)
        self._votes_cast[:, i] = np.asarray(stats.votes_cast)
        self._votes_successful[:, i] = np.asarray(stats.votes_successful)
        self._vote_bans[:, i] = np.asarray(stats.vote_bans)
        self._reputation_resets[:, i] = np.asarray(stats.reputation_resets)
        self._cursor += 1

    def _record_types_streaming(self, i, files, bw, rep_s, rep_e) -> None:
        """Per-type means as one-pass label-segment sums (large N)."""
        R = self.n_replicates
        nt = len(self._TYPES)
        for series, arr in (
            (self._files_by_type, files),
            (self._bandwidth_by_type, bw),
            (self._rep_s_by_type, rep_s),
            (self._rep_e_by_type, rep_e),
        ):
            sums = np.bincount(
                self._labels, weights=arr.reshape(-1), minlength=R * nt
            ).reshape(R, nt)
            means = np.divide(
                sums,
                self._label_counts,
                out=np.full((R, nt), np.nan),
                where=~self._label_empty,
            )
            for k, t in enumerate(self._TYPES):
                series[t][:, i] = means[:, k]

    def _record_types_gathered(self, i, files, bw, rep_s, rep_e) -> None:
        """Per-type means through the reused gather buffers (small N)."""
        R, N = self.n_replicates, self._n_per_rep
        buf = self._type_buf
        buf[0] = files.reshape(-1)
        buf[1] = bw.reshape(-1)
        buf[2] = rep_s.reshape(-1)
        buf[3] = rep_e.reshape(-1)
        for t in self._TYPES:
            flat_idx = self._type_flat_idx[t]
            if flat_idx is not None:
                # (4, R*k) contiguous gather -> (4, R, k) rows -> row
                # means, through the reused per-type scratch buffers.
                k = flat_idx.size // R
                g = self._gather_buf[t]
                np.take(buf, flat_idx, axis=1, out=g)
                m = np.mean(g.reshape(4, R, k), axis=2, out=self._type_mean)
                self._files_by_type[t][:, i] = m[0]
                self._bandwidth_by_type[t][:, i] = m[1]
                self._rep_s_by_type[t][:, i] = m[2]
                self._rep_e_by_type[t][:, i] = m[3]
                continue
            for r in range(R):
                idx = self._type_idx[r][t]
                if idx.size:
                    row = buf[:, r * N : (r + 1) * N]
                    m = row.take(idx, axis=1).mean(axis=1)
                    self._files_by_type[t][r, i] = m[0]
                    self._bandwidth_by_type[t][r, i] = m[1]
                    self._rep_s_by_type[t][r, i] = m[2]
                    self._rep_e_by_type[t][r, i] = m[3]
                else:
                    self._files_by_type[t][r, i] = np.nan
                    self._bandwidth_by_type[t][r, i] = np.nan
                    self._rep_s_by_type[t][r, i] = np.nan
                    self._rep_e_by_type[t][r, i] = np.nan

    @property
    def steps_recorded(self) -> int:
        return self._cursor

    # ------------------------------------------------------------------
    def summary(
        self, start: int, end: int | None = None, replicate: int | None = None
    ) -> dict[str, float]:
        """Reduce the window ``[start, end)`` into scalar metrics.

        ``replicate`` selects the row of a stacked collector; single-run
        collectors default to their only replicate.
        """
        if replicate is None:
            if self.n_replicates != 1:
                raise ValueError(
                    "stacked collector: pass replicate= (or use summaries())"
                )
            replicate = 0
        if not 0 <= replicate < self.n_replicates:
            raise ValueError(f"replicate {replicate} out of range")
        r = replicate
        end = self._cursor if end is None else end
        if not 0 <= start < end <= self._cursor:
            raise ValueError(f"bad window [{start}, {end}) with {self._cursor} steps")
        sl = slice(start, end)
        out: dict[str, float] = {
            "shared_files": float(self._files_all[r, sl].mean()),
            "shared_bandwidth": float(self._bandwidth_all[r, sl].mean()),
            "utility_sharing": float(self._utility_s_all[r, sl].mean()),
            "utility_editing": float(self._utility_e_all[r, sl].mean()),
            "votes_cast_per_step": float(self._votes_cast[r, sl].mean()),
            "vote_success_rate": _safe_ratio(
                self._votes_successful[r, sl].sum(), self._votes_cast[r, sl].sum()
            ),
            "vote_bans": float(self._vote_bans[r, sl].sum()),
            "reputation_resets": float(self._reputation_resets[r, sl].sum()),
        }
        for t in self._TYPES:
            name = TYPE_NAMES[t]
            out[f"shared_files_{name}"] = _nanmean(self._files_by_type[t][r, sl])
            out[f"shared_bandwidth_{name}"] = _nanmean(
                self._bandwidth_by_type[t][r, sl]
            )
            out[f"reputation_s_{name}"] = _nanmean(self._rep_s_by_type[t][r, sl])
            out[f"reputation_e_{name}"] = _nanmean(self._rep_e_by_type[t][r, sl])

        props = self._proposals[r, sl].sum(axis=0)  # (3, 2)
        accs = self._accepted[r, sl].sum(axis=0)
        for t in self._TYPES:
            name = TYPE_NAMES[t]
            good, bad = props[t, 1], props[t, 0]
            out[f"edits_constructive_{name}"] = float(good)
            out[f"edits_destructive_{name}"] = float(bad)
            out[f"edit_constructive_fraction_{name}"] = _safe_ratio(good, good + bad)
            out[f"accepted_constructive_{name}"] = float(accs[t, 1])
            out[f"accepted_destructive_{name}"] = float(accs[t, 0])
            out[f"edit_accept_rate_{name}"] = _safe_ratio(
                accs[t].sum(), props[t].sum()
            )
        total_good = props[:, 1].sum()
        total_bad = props[:, 0].sum()
        out["edit_constructive_fraction"] = _safe_ratio(
            total_good, total_good + total_bad
        )
        out["accepted_constructive_rate"] = _safe_ratio(
            accs[:, 1].sum(), props[:, 1].sum()
        )
        out["accepted_destructive_rate"] = _safe_ratio(
            accs[:, 0].sum(), props[:, 0].sum()
        )
        return out

    def summaries(self, start: int, end: int | None = None) -> list[dict[str, float]]:
        """Per-replicate summaries of the window, in replicate order."""
        return [
            self.summary(start, end, replicate=r) for r in range(self.n_replicates)
        ]

    def series(self, name: str) -> np.ndarray:
        """A recorded per-step series (trimmed to recorded length).

        Single-run collectors return the historical 1-D (or
        ``(steps, 3, 2)``) shape; stacked collectors prepend the
        replicate axis.
        """
        arr = getattr(self, name, None)
        if not isinstance(arr, np.ndarray):
            raise KeyError(name)
        if self.n_replicates == 1:
            return arr[: self._cursor]
        return arr[:, : self._cursor]


def _safe_ratio(num: float, den: float) -> float:
    return float(num) / float(den) if den else float("nan")


def _nanmean(values: np.ndarray) -> float:
    finite = values[~np.isnan(values)]
    return float(finite.mean()) if finite.size else float("nan")
