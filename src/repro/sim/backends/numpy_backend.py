"""The always-on NumPy reference backend.

This is the engine's historical vectorized hot path, verbatim: every
kernel keeps the exact operation sequence (scatter order, chunk
boundaries, ``where=`` branches) the pre-backend modules used, so the
reference defines the bit pattern every other backend must reproduce.
The surrounding modules (``repro.network.bandwidth``,
``repro.core.sparse``, ``repro.agents.qlearning``, the phase kernels)
delegate here through their ``kernels`` attribute, defaulting to this
backend, so code that never mentions backends behaves exactly as
before.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import KernelBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Vectorized NumPy implementation of the kernel set (the reference)."""

    name = "numpy"

    def info(self) -> dict[str, Any]:
        """Availability/version facts for ``repro backends``."""
        return {
            "name": self.name,
            "available": True,
            "mode": "reference",
            "numpy_version": np.__version__,
            "warmed": True,
            "detail": "always-on vectorized reference",
        }

    # ------------------------------------------------------------------
    def grouped_shares(
        self, group_ids: np.ndarray, weights: np.ndarray, n_groups: int
    ) -> np.ndarray:
        """Group-normalized shares via one scatter-add (reference order)."""
        group_ids = np.asarray(group_ids)
        weights = np.asarray(weights, dtype=np.float64)
        if group_ids.shape != weights.shape:
            raise ValueError("group_ids and weights must have the same shape")
        if group_ids.size == 0:
            return np.zeros(0, dtype=np.float64)
        if np.any((group_ids < 0) | (group_ids >= n_groups)):
            raise ValueError("group ids out of range")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")

        totals = np.zeros(n_groups, dtype=np.float64)
        np.add.at(totals, group_ids, weights)
        counts = np.bincount(group_ids, minlength=n_groups)

        shares = np.empty_like(weights)
        group_total = totals[group_ids]
        degenerate = group_total <= 0.0
        # Normal case: proportional share.
        np.divide(weights, group_total, out=shares, where=~degenerate)
        # Degenerate case (all weights zero in a group): equal split.
        if np.any(degenerate):
            shares[degenerate] = 1.0 / counts[group_ids[degenerate]]
        return shares

    def match_sources(
        self,
        downloaders: np.ndarray,
        choice_idx: np.ndarray,
        sources_flat: np.ndarray,
        req_start: np.ndarray,
        req_n_s: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Source fix-ups exactly as the batch sampler always applied them."""
        chosen = sources_flat[req_start + choice_idx]
        self_hit = chosen == downloaders
        if np.any(self_hit):
            # With several sharers shift to the next one; a lone sharer
            # cannot download from itself.
            shift = self_hit & (req_n_s > 1)
            if np.any(shift):
                chosen[shift] = sources_flat[
                    req_start[shift] + (choice_idx[shift] + 1) % req_n_s[shift]
                ]
            drop = self_hit & (req_n_s == 1)
            if np.any(drop):
                keep = ~drop
                downloaders, chosen = downloaders[keep], chosen[keep]
        return downloaders, chosen

    def settle_downloads(
        self,
        downloader_ids: np.ndarray,
        source_ids: np.ndarray,
        shares: np.ndarray,
        offered_bandwidth: np.ndarray,
        upload_capacity: np.ndarray,
        n_peers: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One gather + two scatters, preserving per-source input order."""
        received = np.zeros(n_peers, dtype=np.float64)
        served = np.zeros(n_peers, dtype=np.float64)
        if downloader_ids.size == 0:
            return received, served
        capacity = offered_bandwidth[source_ids] * upload_capacity[source_ids]
        amount = capacity * shares
        # A downloader can issue at most one request per step, so a plain
        # scatter is enough for `received`; sources may serve many requests.
        received[downloader_ids] = amount
        np.add.at(served, source_ids, amount)
        return received, served

    def filter_vote_candidates(
        self,
        cand_local: np.ndarray,
        counts: np.ndarray,
        local_proposers: np.ndarray,
        rep_of_prop: np.ndarray,
        can_vote: np.ndarray,
        all_can_vote: bool,
        n_agents: int,
        chunk_size: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chunked ragged filter (chunks bound temporaries, never results)."""
        n_prop = counts.size
        csum = np.cumsum(counts)
        kept_voters: list[np.ndarray] = []
        kept_props: list[np.ndarray] = []
        start = 0
        while start < n_prop:
            base = int(csum[start - 1]) if start else 0
            end = int(np.searchsorted(csum, base + chunk_size, side="right"))
            if end <= start:
                end = start + 1  # one oversized pool still processes alone
            chunk_cand = cand_local[base : int(csum[end - 1])]
            prop_of_cand = np.repeat(np.arange(start, end), counts[start:end])
            keep = chunk_cand != local_proposers[prop_of_cand]
            flat_cand = chunk_cand + rep_of_prop[prop_of_cand] * n_agents
            if not all_can_vote:
                keep &= can_vote[flat_cand]
            kept_voters.append(flat_cand[keep])
            kept_props.append(prop_of_cand[keep])
            start = end
        if not kept_voters:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.int64)
        return np.concatenate(kept_voters), np.concatenate(kept_props)

    def tally_votes(
        self,
        flat_prop: np.ndarray,
        weights: np.ndarray,
        votes_for: np.ndarray,
        n_prop: int,
    ) -> np.ndarray:
        """Masked scatter-add; ``np.add.at`` accumulates in input order."""
        for_weight = np.zeros(n_prop)
        np.add.at(for_weight, flat_prop[votes_for], weights[votes_for])
        return for_weight

    def ledger_lookup(
        self,
        partners: np.ndarray,
        amounts: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        chunk_size: int,
    ) -> np.ndarray:
        """Chunked first-match row scans over the capped ledger rows."""
        out = np.zeros(rows.size, dtype=np.float64)
        for lo in range(0, rows.size, chunk_size):
            r = rows[lo : lo + chunk_size]
            match = partners[r] == cols[lo : lo + chunk_size, None]
            hit = match.any(axis=1)
            vals = amounts[r, match.argmax(axis=1)]
            out[lo : lo + chunk_size] = np.where(hit, vals, 0.0)
        return out

    def ledger_add(
        self,
        partners: np.ndarray,
        amounts: np.ndarray,
        counts: np.ndarray,
        row_cap: Any,
        rows: np.ndarray,
        cols: np.ndarray,
        add_amounts: np.ndarray,
        chunk_size: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chunked classify/accumulate/insert with decay-eviction.

        Per chunk: classification against the chunk-start state, hits
        accumulated first, then misses inserted (evicting the smallest
        stored amount of any full row) — the state-dependent order every
        backend must reproduce.
        """
        ev_rows: list[np.ndarray] = []
        ev_amts: list[np.ndarray] = []
        for lo in range(0, rows.size, chunk_size):
            r = rows[lo : lo + chunk_size]
            c = cols[lo : lo + chunk_size]
            a = add_amounts[lo : lo + chunk_size]
            live = a != 0.0  # dense cells ignore +0.0; don't spend capacity
            if not live.all():
                r, c, a = r[live], c[live], a[live]
            if not r.size:
                continue
            match = partners[r] == c[:, None]
            hit = match.any(axis=1)
            if hit.any():
                # (row, pos) targets are distinct within a call (pairs are
                # unique), so fancy-index accumulation is exact.
                amounts[r[hit], match.argmax(axis=1)[hit]] += a[hit]
            miss = ~hit
            if miss.any():
                got = self._ledger_insert(
                    partners, amounts, counts, row_cap, r[miss], c[miss], a[miss]
                )
                if got is not None:
                    ev_rows.append(got[0])
                    ev_amts.append(got[1])
        if not ev_rows:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        return np.concatenate(ev_rows), np.concatenate(ev_amts)

    @staticmethod
    def _ledger_insert(
        partners: np.ndarray,
        amounts: np.ndarray,
        counts: np.ndarray,
        row_cap: Any,
        rows: np.ndarray,
        cols: np.ndarray,
        add_amounts: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Append new partners; evict the smallest entry of any full row."""
        from ...core.params import gather_param

        order = np.argsort(rows, kind="stable")
        sr = rows[order]
        # Within-call rank of each insert in its row: repeated rows (one
        # source meeting several new partners in one settlement) claim
        # consecutive slots after the row's current count.
        new_run = np.empty(sr.size, dtype=bool)
        new_run[0] = True
        np.not_equal(sr[1:], sr[:-1], out=new_run[1:])
        run_start = np.flatnonzero(new_run)
        run_len = np.diff(np.append(run_start, sr.size))
        rank = np.arange(sr.size) - np.repeat(run_start, run_len)
        slot = counts[sr] + rank
        ok = slot < gather_param(row_cap, sr)
        if ok.any():
            src = order[ok]
            partners[sr[ok], slot[ok]] = cols[src]
            amounts[sr[ok], slot[ok]] = add_amounts[src]
            np.add.at(counts, sr[ok], 1)
        overflow = np.flatnonzero(~ok)
        if not overflow.size:
            return None
        # Decay-eviction (rare; the approximation regime): replace the
        # smallest stored amount — stale partners have decayed furthest.
        ev_rows = np.empty(overflow.size, dtype=np.int64)
        ev_amts = np.empty(overflow.size, dtype=np.float64)
        for k, i in enumerate(overflow):
            row = int(sr[i])
            j = int(np.argmin(amounts[row, : counts[row]]))
            ev_rows[k] = row
            ev_amts[k] = amounts[row, j]
            partners[row, j] = cols[order[i]]
            amounts[row, j] = add_amounts[order[i]]
        return ev_rows, ev_amts

    def q_update(
        self,
        q: np.ndarray,
        idx: np.ndarray,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        learning_rate: Any,
        discount: Any,
    ) -> None:
        """The historical fancy-indexed TD backup, in place."""
        best_next = q[idx, next_states].max(axis=1)
        target = rewards + discount * best_next
        current = q[idx, states, actions]
        q[idx, states, actions] = (1.0 - learning_rate) * current + learning_rate * target
