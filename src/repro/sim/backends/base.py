"""The formal phase-kernel seam: the :class:`KernelBackend` interface.

The engine's per-step work funnels through a small set of *kernels* —
the hot inner loops the profiler actually sees.  A backend is one
implementation of that set over the flat ``SimState`` slot arrays:

===========================  =====================================================
kernel                       hot loop it implements
===========================  =====================================================
``grouped_shares``           the shared group-normalized allocator behind
                             bandwidth settlement, voting weights and
                             collusion renormalization
``match_sources``            download matching: post-draw source fix-ups
                             (self-hit shift / lone-sharer drop)
``settle_downloads``         bandwidth settlement: per-request transfer
                             amounts scattered into received/served
``filter_vote_candidates``   edit-vote candidate filtering over the ragged
                             per-proposal voter gathers
``tally_votes``              weighted vote accumulation per proposal
``ledger_lookup``            tit-for-tat sparse-ledger reads
``ledger_add``               tit-for-tat sparse-ledger accumulate/insert/evict
``q_update``                 the vectorized tabular Q-learning TD backup
===========================  =====================================================

**Identity contract.**  Results are *backend-invariant*: every backend
must reproduce the ``numpy`` reference **bit for bit** — same
floating-point operations on the same values in the same per-cell order
(see ``docs/BACKENDS.md`` for the per-kernel ordering obligations).
Backends are therefore excluded from the run-store config hash, and the
equivalence suite (``tests/sim/test_backend_equivalence.py``) plus
``repro verify-backend`` enforce the contract across all four incentive
schemes, the adversary kernels and churn.

**No RNG.**  Kernels never draw random numbers; all sampling stays in
the per-replicate stream loops outside the backend so stream parity is
untouched by backend choice.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["KernelBackend"]


class KernelBackend:
    """Abstract kernel set one engine backend provides.

    Concrete backends subclass this and implement every kernel method.
    Instances are cheap, stateless (apart from warm-up bookkeeping) and
    shared: the registry hands out one singleton per backend name, and
    pickling round-trips by name (:meth:`__reduce__`), so checkpointed
    states and process-pool workers re-resolve the backend — with the
    documented graceful fallback — on the other side.
    """

    #: Registry name; subclasses set it.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def available(self) -> bool:
        """Whether this backend can execute on this interpreter."""
        return True

    def warmed(self) -> bool:
        """Whether one-time preparation (JIT compilation) already ran."""
        return True

    def ensure_warm(self, tracer: Any = None) -> float:
        """Run one-time preparation (JIT compilation) if still pending.

        Returns the seconds spent (0.0 when already warm).  When a
        tracer is given and work happens, it is recorded under a
        ``backend/compile`` span so profile/trace output attributes
        compilation to the backend, never to the first step's phases.
        """
        return 0.0

    def info(self) -> dict[str, Any]:
        """Availability/version/warm-up facts for ``repro backends``."""
        return {"name": self.name, "available": self.available(), "warmed": self.warmed()}

    def __reduce__(self):
        """Pickle by name so restored states re-resolve the backend."""
        from . import get_backend

        return (get_backend, (self.name,))

    def __repr__(self) -> str:
        """Short diagnostic spelling, e.g. ``<KernelBackend numpy>``."""
        return f"<KernelBackend {self.name}>"

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def grouped_shares(
        self, group_ids: np.ndarray, weights: np.ndarray, n_groups: int
    ) -> np.ndarray:
        """Normalize ``weights`` within each group (equal split when all-zero).

        The one shared allocator: bandwidth shares per source, voting
        weights per proposal, collusion-ring renormalization.  Raises
        ``ValueError`` on out-of-range group ids or negative weights.
        """
        raise NotImplementedError

    def match_sources(
        self,
        downloaders: np.ndarray,
        choice_idx: np.ndarray,
        sources_flat: np.ndarray,
        req_start: np.ndarray,
        req_n_s: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve drawn source choices into request pairs.

        Applies the sampler's fix-ups: a self-selection shifts to the
        next sharer when the replicate has several, and drops the
        request when the downloader is the lone sharer.  Returns the
        kept ``(downloaders, sources)`` in input order.
        """
        raise NotImplementedError

    def settle_downloads(
        self,
        downloader_ids: np.ndarray,
        source_ids: np.ndarray,
        shares: np.ndarray,
        offered_bandwidth: np.ndarray,
        upload_capacity: np.ndarray,
        n_peers: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convert shares into per-peer ``(received, served)`` bandwidth."""
        raise NotImplementedError

    def filter_vote_candidates(
        self,
        cand_local: np.ndarray,
        counts: np.ndarray,
        local_proposers: np.ndarray,
        rep_of_prop: np.ndarray,
        can_vote: np.ndarray,
        all_can_vote: bool,
        n_agents: int,
        chunk_size: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Filter the ragged candidate-voter gather of one step's proposals.

        ``cand_local`` concatenates every proposal's candidate voters
        (local ids); ``counts[p]`` is proposal ``p``'s candidate count.
        Drops each proposal's own proposer and (unless ``all_can_vote``)
        voters without voting rights.  Returns ``(flat_voters,
        cand_prop)`` — kept voters as flat slot ids with their proposal
        index, in input order (chunking must never reorder).
        """
        raise NotImplementedError

    def tally_votes(
        self,
        flat_prop: np.ndarray,
        weights: np.ndarray,
        votes_for: np.ndarray,
        n_prop: int,
    ) -> np.ndarray:
        """Accumulate the approving vote weight per proposal, in input order."""
        raise NotImplementedError

    def ledger_lookup(
        self,
        partners: np.ndarray,
        amounts: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        chunk_size: int,
    ) -> np.ndarray:
        """Sparse-ledger reads: stored amount per ``(row, col)``, else 0.0."""
        raise NotImplementedError

    def ledger_add(
        self,
        partners: np.ndarray,
        amounts: np.ndarray,
        counts: np.ndarray,
        row_cap: Any,
        rows: np.ndarray,
        cols: np.ndarray,
        add_amounts: np.ndarray,
        chunk_size: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sparse-ledger accumulate: in-place add/insert with cap eviction.

        Mutates ``partners``/``amounts``/``counts``; returns the evicted
        ``(rows, amounts)``.  Must follow the reference's exact chunked
        two-pass order (classify against chunk-start state, apply hits,
        then insert misses) — eviction choices are state-dependent, so
        any other order breaks bit-identity.  ``row_cap`` is a scalar or
        a per-slot array.
        """
        raise NotImplementedError

    def q_update(
        self,
        q: np.ndarray,
        idx: np.ndarray,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        learning_rate: Any,
        discount: Any,
    ) -> None:
        """In-place TD backup ``Q(s,a) <- (1-a) Q(s,a) + a (r + g max Q(s'))``.

        ``learning_rate``/``discount`` are scalars or arrays already
        gathered to align with ``idx``.
        """
        raise NotImplementedError
