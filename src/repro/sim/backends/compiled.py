"""The ``compiled`` backend: Numba ``@njit`` kernels over the slot arrays.

Every kernel is written as a plain-Python scalar loop that Numba can
compile in ``nopython`` mode.  When Numba is installed the loops are
JIT-compiled (no ``fastmath`` — reassociation would break bit-identity);
when it is not, the registry normally falls back to the ``numpy``
reference, but setting ``REPRO_COMPILED_PUREPY=1`` runs these same loops
interpreted, which is how the equivalence suite exercises the compiled
algorithms on machines without Numba.

**Bit-identity notes.**  The loops replay the reference's exact
floating-point expressions element by element: ``grouped_shares`` keeps
the ``w / total`` vs ``1 / count`` branch, ``settle_downloads`` keeps the
``(offered * capacity) * share`` association, ``q_update`` keeps
``(1 - a) * q + a * (r + g * max)``, and ``ledger_add`` replays the
chunked classify/accumulate/insert order (see ``docs/BACKENDS.md``) so
state-dependent evictions land on the same cells.  Integer/boolean
kernels are order-insensitive and simply loop.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable

import numpy as np

from .base import KernelBackend

__all__ = ["CompiledBackend", "numba_available", "numba_version"]

try:  # pragma: no cover - depends on the environment
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None


def numba_available() -> bool:
    """Whether Numba is importable in this interpreter."""
    return _numba is not None


def numba_version() -> str | None:
    """The installed Numba version, or ``None``."""
    return getattr(_numba, "__version__", None) if _numba is not None else None


# ----------------------------------------------------------------------
# Kernel bodies (nopython-compatible; also runnable interpreted)
# ----------------------------------------------------------------------
def _k_grouped_shares(group_ids, weights, n_groups):
    """Loop form of the group-normalized allocator."""
    m = group_ids.shape[0]
    totals = np.zeros(n_groups, dtype=np.float64)
    counts = np.zeros(n_groups, dtype=np.int64)
    for k in range(m):
        g = group_ids[k]
        if g < 0 or g >= n_groups:
            raise ValueError("group ids out of range")
        w = weights[k]
        if w < 0.0:
            raise ValueError("weights must be non-negative")
        totals[g] += w
        counts[g] += 1
    shares = np.empty(m, dtype=np.float64)
    for k in range(m):
        t = totals[group_ids[k]]
        if t > 0.0:
            shares[k] = weights[k] / t
        else:
            shares[k] = 1.0 / counts[group_ids[k]]
    return shares


def _k_match_sources(downloaders, choice_idx, sources_flat, req_start, req_n_s):
    """Loop form of the post-draw source fix-ups."""
    m = downloaders.shape[0]
    out_d = np.empty(m, dtype=np.int64)
    out_s = np.empty(m, dtype=np.int64)
    kept = 0
    for k in range(m):
        d = downloaders[k]
        ns = req_n_s[k]
        chosen = sources_flat[req_start[k] + choice_idx[k]]
        if chosen == d:
            if ns > 1:
                chosen = sources_flat[req_start[k] + (choice_idx[k] + 1) % ns]
            else:
                continue  # lone sharer: drop the request
        out_d[kept] = d
        out_s[kept] = chosen
        kept += 1
    return out_d[:kept].copy(), out_s[:kept].copy()


def _k_settle_downloads(
    downloader_ids, source_ids, shares, offered_bandwidth, upload_capacity, n_peers
):
    """Loop form of bandwidth settlement (same association order)."""
    received = np.zeros(n_peers, dtype=np.float64)
    served = np.zeros(n_peers, dtype=np.float64)
    for k in range(downloader_ids.shape[0]):
        s = source_ids[k]
        amount = (offered_bandwidth[s] * upload_capacity[s]) * shares[k]
        received[downloader_ids[k]] = amount
        served[s] += amount
    return received, served


def _k_filter_vote_candidates(
    cand_local, counts, local_proposers, rep_of_prop, can_vote, all_can_vote, n_agents
):
    """Loop form of the ragged candidate filter (integer-only, order-free)."""
    total = cand_local.shape[0]
    out_v = np.empty(total, dtype=np.int64)
    out_p = np.empty(total, dtype=np.int64)
    kept = 0
    base = 0
    for p in range(counts.shape[0]):
        cp = counts[p]
        rep_off = rep_of_prop[p] * n_agents
        lp = local_proposers[p]
        for j in range(cp):
            c = cand_local[base + j]
            if c == lp:
                continue
            flat = c + rep_off
            if not all_can_vote and not can_vote[flat]:
                continue
            out_v[kept] = flat
            out_p[kept] = p
            kept += 1
        base += cp
    return out_v[:kept].copy(), out_p[:kept].copy()


def _k_tally_votes(flat_prop, weights, votes_for, n_prop):
    """Loop form of the approving-weight accumulation (input order)."""
    for_weight = np.zeros(n_prop, dtype=np.float64)
    for k in range(flat_prop.shape[0]):
        if votes_for[k]:
            for_weight[flat_prop[k]] += weights[k]
    return for_weight


def _k_ledger_lookup(partners, amounts, rows, cols):
    """First-match row scans; chunk boundaries don't affect gathers."""
    m = rows.shape[0]
    width = partners.shape[1]
    out = np.zeros(m, dtype=np.float64)
    for k in range(m):
        r = rows[k]
        c = cols[k]
        for j in range(width):
            if partners[r, j] == c:
                out[k] = amounts[r, j]
                break
    return out


def _k_ledger_add(
    partners, amounts, counts, cap_arr, cap_scalar, cap_is_array,
    rows, cols, add_amounts, chunk_size,
):
    """Chunk-faithful replay of the reference accumulate/insert/evict.

    Per chunk of the reference's ``chunk_size``: pass 1 classifies every
    live entry against the chunk-start state, pass 2 applies all hits,
    pass 3 inserts misses in input order with live counts (equivalent to
    the reference's stable row-sorted ranks cell by cell), evicting the
    current smallest stored amount of a full row.
    """
    n_in = rows.shape[0]
    width = partners.shape[1]
    ev_rows = np.empty(n_in, dtype=np.int64)
    ev_amts = np.empty(n_in, dtype=np.float64)
    n_ev = 0
    pos = np.empty(n_in, dtype=np.int64)
    lo = 0
    while lo < n_in:
        hi = lo + chunk_size
        if hi > n_in:
            hi = n_in
        # Pass 1: classify against the chunk-start state.
        for k in range(lo, hi):
            if add_amounts[k] == 0.0:
                pos[k] = -2  # dense zero cell: ignored entirely
                continue
            r = rows[k]
            c = cols[k]
            p = np.int64(-1)
            for j in range(width):
                if partners[r, j] == c:
                    p = np.int64(j)
                    break
            pos[k] = p
        # Pass 2: all hits accumulate before any insert mutates the row.
        for k in range(lo, hi):
            if pos[k] >= 0:
                amounts[rows[k], pos[k]] += add_amounts[k]
        # Pass 3: misses insert (or evict) with live counts/amounts.
        for k in range(lo, hi):
            if pos[k] != -1:
                continue
            r = rows[k]
            cap = cap_arr[r] if cap_is_array else cap_scalar
            cnt = counts[r]
            if cnt < cap:
                partners[r, cnt] = cols[k]
                amounts[r, cnt] = add_amounts[k]
                counts[r] = cnt + 1
            else:
                jmin = 0
                amin = amounts[r, 0]
                for j in range(1, cnt):
                    v = amounts[r, j]
                    if v < amin:
                        amin = v
                        jmin = j
                ev_rows[n_ev] = r
                ev_amts[n_ev] = amin
                n_ev += 1
                partners[r, jmin] = cols[k]
                amounts[r, jmin] = add_amounts[k]
        lo = hi
    return ev_rows[:n_ev].copy(), ev_amts[:n_ev].copy()


def _k_q_update(
    q, idx, states, actions, rewards, next_states,
    lr_arr, lr_scalar, lr_is_array, g_arr, g_scalar, g_is_array,
):
    """Loop form of the TD backup (same scalar expression tree).

    Two passes — compute every new value against the pre-update table,
    then scatter — because the reference's fancy-indexed assignment
    gathers all reads before any write (and last write wins on
    duplicate ``(agent, state, action)`` triples).
    """
    m = idx.shape[0]
    n_actions = q.shape[2]
    new_vals = np.empty(m, dtype=np.float64)
    for k in range(m):
        i = idx[k]
        ns = next_states[k]
        best = q[i, ns, 0]
        for b in range(1, n_actions):
            v = q[i, ns, b]
            if v > best:
                best = v
        a = lr_arr[k] if lr_is_array else lr_scalar
        g = g_arr[k] if g_is_array else g_scalar
        cur = q[i, states[k], actions[k]]
        new_vals[k] = (1.0 - a) * cur + a * (rewards[k] + g * best)
    for k in range(m):
        q[idx[k], states[k], actions[k]] = new_vals[k]


_KERNEL_BODIES: dict[str, Callable] = {
    "grouped_shares": _k_grouped_shares,
    "match_sources": _k_match_sources,
    "settle_downloads": _k_settle_downloads,
    "filter_vote_candidates": _k_filter_vote_candidates,
    "tally_votes": _k_tally_votes,
    "ledger_lookup": _k_ledger_lookup,
    "ledger_add": _k_ledger_add,
    "q_update": _k_q_update,
}

_JITTED: dict[str, Callable] | None = None


def _jitted_kernels() -> dict[str, Callable]:
    """Compile (once per process) every kernel body with ``@njit``."""
    global _JITTED
    if _JITTED is None:
        # nogil so sweep thread-executors overlap; cache=False keeps the
        # build sandbox-friendly (no __pycache__ writes at import time).
        jit = _numba.njit(cache=False, nogil=True)
        _JITTED = {name: jit(fn) for name, fn in _KERNEL_BODIES.items()}
    return _JITTED


def _i64(a: np.ndarray) -> np.ndarray:
    """Contiguous int64 view/copy (stabilizes the JIT signature)."""
    return np.ascontiguousarray(a, dtype=np.int64)


def _f64(a: np.ndarray) -> np.ndarray:
    """Contiguous float64 view/copy (stabilizes the JIT signature)."""
    return np.ascontiguousarray(a, dtype=np.float64)


_NO_F64 = np.zeros(1, dtype=np.float64)
_NO_I64 = np.zeros(1, dtype=np.int64)


class CompiledBackend(KernelBackend):
    """Numba-compiled (or forced-interpreted) loop kernels.

    ``mode`` is ``"jit"`` when Numba compiles the loops and
    ``"interpreted"`` when the same bodies run as plain Python (the
    ``REPRO_COMPILED_PUREPY=1`` equivalence-testing path).
    """

    name = "compiled"

    def __init__(self, jit: bool | None = None) -> None:
        """Build the backend; ``jit=None`` means "JIT iff Numba exists"."""
        if jit is None:
            jit = numba_available()
        if jit and not numba_available():
            raise RuntimeError("compiled backend: jit=True requires numba")
        self.jit = bool(jit)
        self._fns = _jitted_kernels() if self.jit else dict(_KERNEL_BODIES)
        self._warm_seconds: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def warmed(self) -> bool:
        """Whether the one-time warm-up pass already ran."""
        return self._warm_seconds is not None

    def ensure_warm(self, tracer: Any = None) -> float:
        """Compile every kernel specialization on tiny representative inputs.

        Records a ``backend/compile`` span when a tracer is given so
        profile/trace phase breakdowns never absorb JIT time.  Idempotent;
        returns the seconds the first pass took (0.0 afterwards).
        """
        if self._warm_seconds is not None:
            return 0.0
        if tracer is not None and getattr(tracer, "enabled", False):
            with tracer.span("backend/compile", backend=self.name, mode=self.mode()):
                seconds = self._warm_up()
        else:
            seconds = self._warm_up()
        self._warm_seconds = seconds
        return seconds

    def _warm_up(self) -> float:
        """Run every kernel once on miniature inputs; returns seconds."""
        t0 = perf_counter()
        ids = np.array([0, 1, 0], dtype=np.int64)
        w = np.array([1.0, 2.0, 3.0], dtype=np.float64)
        self._fns["grouped_shares"](ids, w, 2)
        self._fns["match_sources"](
            np.array([2, 0], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
            np.array([2, 2], dtype=np.int64),
        )
        self._fns["settle_downloads"](
            np.array([0, 1], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.array([1.0, 1.0], dtype=np.float64),
            np.array([0.5, 0.5], dtype=np.float64),
            np.array([1.0, 1.0], dtype=np.float64),
            2,
        )
        self._fns["filter_vote_candidates"](
            np.array([0, 1, 1], dtype=np.int64),
            np.array([2, 1], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
            np.ones(2, dtype=np.bool_),
            False,
            2,
        )
        self._fns["tally_votes"](
            ids, w, np.array([True, False, True]), 2
        )
        partners = np.full((2, 3), -1, dtype=np.int64)
        amounts = np.zeros((2, 3), dtype=np.float64)
        counts = np.zeros(2, dtype=np.int64)
        self._fns["ledger_add"](
            partners, amounts, counts, _NO_I64, 3, False,
            np.array([0, 0, 1, 0], dtype=np.int64),
            np.array([1, 2, 0, 1], dtype=np.int64),
            np.array([1.0, 2.0, 3.0, 1.0], dtype=np.float64),
            2,
        )
        self._fns["ledger_lookup"](
            partners, amounts,
            np.array([0, 1], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
        )
        q = np.zeros((2, 2, 2), dtype=np.float64)
        self._fns["q_update"](
            q,
            np.array([0, 1], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.array([0.5, -0.5], dtype=np.float64),
            np.array([1, 0], dtype=np.int64),
            _NO_F64, 0.1, False, _NO_F64, 0.9, False,
        )
        return perf_counter() - t0

    def mode(self) -> str:
        """``"jit"`` or ``"interpreted"``."""
        return "jit" if self.jit else "interpreted"

    def info(self) -> dict[str, Any]:
        """Availability/version/warm-up facts for ``repro backends``."""
        return {
            "name": self.name,
            "available": True,
            "mode": self.mode(),
            "numba_version": numba_version(),
            "warmed": self.warmed(),
            "warm_seconds": self._warm_seconds,
            "detail": (
                "numba njit kernels"
                if self.jit
                else "interpreted loop kernels (REPRO_COMPILED_PUREPY)"
            ),
        }

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def grouped_shares(
        self, group_ids: np.ndarray, weights: np.ndarray, n_groups: int
    ) -> np.ndarray:
        """Compiled group-normalized allocator (reference expressions)."""
        group_ids = np.asarray(group_ids)
        weights = np.asarray(weights, dtype=np.float64)
        if group_ids.shape != weights.shape:
            raise ValueError("group_ids and weights must have the same shape")
        if group_ids.size == 0:
            return np.zeros(0, dtype=np.float64)
        return self._fns["grouped_shares"](_i64(group_ids), _f64(weights), int(n_groups))

    def match_sources(
        self,
        downloaders: np.ndarray,
        choice_idx: np.ndarray,
        sources_flat: np.ndarray,
        req_start: np.ndarray,
        req_n_s: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compiled post-draw source fix-ups."""
        return self._fns["match_sources"](
            _i64(downloaders), _i64(choice_idx), _i64(sources_flat),
            _i64(req_start), _i64(req_n_s),
        )

    def settle_downloads(
        self,
        downloader_ids: np.ndarray,
        source_ids: np.ndarray,
        shares: np.ndarray,
        offered_bandwidth: np.ndarray,
        upload_capacity: np.ndarray,
        n_peers: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compiled bandwidth settlement."""
        return self._fns["settle_downloads"](
            _i64(downloader_ids), _i64(source_ids), _f64(shares),
            _f64(offered_bandwidth), _f64(upload_capacity), int(n_peers),
        )

    def filter_vote_candidates(
        self,
        cand_local: np.ndarray,
        counts: np.ndarray,
        local_proposers: np.ndarray,
        rep_of_prop: np.ndarray,
        can_vote: np.ndarray,
        all_can_vote: bool,
        n_agents: int,
        chunk_size: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compiled ragged candidate filter (chunk size is irrelevant here)."""
        return self._fns["filter_vote_candidates"](
            _i64(cand_local), _i64(counts), _i64(local_proposers),
            _i64(rep_of_prop), np.ascontiguousarray(can_vote, dtype=np.bool_),
            bool(all_can_vote), int(n_agents),
        )

    def tally_votes(
        self,
        flat_prop: np.ndarray,
        weights: np.ndarray,
        votes_for: np.ndarray,
        n_prop: int,
    ) -> np.ndarray:
        """Compiled approving-weight accumulation."""
        return self._fns["tally_votes"](
            _i64(flat_prop), _f64(weights),
            np.ascontiguousarray(votes_for, dtype=np.bool_), int(n_prop),
        )

    def ledger_lookup(
        self,
        partners: np.ndarray,
        amounts: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        chunk_size: int,
    ) -> np.ndarray:
        """Compiled first-match row scans."""
        return self._fns["ledger_lookup"](partners, amounts, _i64(rows), _i64(cols))

    def ledger_add(
        self,
        partners: np.ndarray,
        amounts: np.ndarray,
        counts: np.ndarray,
        row_cap: Any,
        rows: np.ndarray,
        cols: np.ndarray,
        add_amounts: np.ndarray,
        chunk_size: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compiled chunk-faithful accumulate/insert/evict."""
        if isinstance(row_cap, np.ndarray):
            cap_arr, cap_scalar, cap_is_array = _i64(row_cap), 0, True
        else:
            cap_arr, cap_scalar, cap_is_array = _NO_I64, int(row_cap), False
        return self._fns["ledger_add"](
            partners, amounts, counts, cap_arr, cap_scalar, cap_is_array,
            _i64(rows), _i64(cols), _f64(add_amounts), int(chunk_size),
        )

    def q_update(
        self,
        q: np.ndarray,
        idx: np.ndarray,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        learning_rate: Any,
        discount: Any,
    ) -> None:
        """Compiled in-place TD backup."""
        if isinstance(learning_rate, np.ndarray):
            lr_arr, lr_scalar, lr_is_array = _f64(learning_rate), 0.0, True
        else:
            lr_arr, lr_scalar, lr_is_array = _NO_F64, float(learning_rate), False
        if isinstance(discount, np.ndarray):
            g_arr, g_scalar, g_is_array = _f64(discount), 0.0, True
        else:
            g_arr, g_scalar, g_is_array = _NO_F64, float(discount), False
        self._fns["q_update"](
            q, _i64(idx), _i64(states), _i64(actions), _f64(rewards),
            _i64(next_states), lr_arr, lr_scalar, lr_is_array,
            g_arr, g_scalar, g_is_array,
        )
