"""Pluggable kernel backends: the registry behind ``engine.backend``.

Backends implement the :class:`~repro.sim.backends.base.KernelBackend`
interface — the formal seam between the phase orchestration (Python,
RNG, bookkeeping) and the hot inner loops.  Two ship with the engine:

- ``numpy`` — the always-on vectorized reference; its results define
  correctness bit for bit.
- ``compiled`` — Numba ``@njit`` loop kernels.  Without Numba the
  registry degrades gracefully: resolving ``"compiled"`` warns once and
  hands back the ``numpy`` singleton (set ``REPRO_COMPILED_PUREPY=1``
  to run the compiled loop bodies interpreted instead, as the
  equivalence suite does).

The registry hands out one singleton per name so JIT warm-up happens at
most once per process, and pickled backends re-resolve by name on the
other side of a checkpoint or process pool.  Register additional
backends with :func:`register_backend`; see ``docs/BACKENDS.md``.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable

from .base import KernelBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "BACKEND_CHOICES",
    "DEFAULT_BACKEND",
    "default_kernels",
    "get_backend",
    "register_backend",
    "list_backends",
    "backend_info",
    "reset_backend_cache",
]

#: The backend used when a config doesn't say otherwise.
DEFAULT_BACKEND = "numpy"


def _numpy_factory() -> KernelBackend:
    """Build the reference backend (always available)."""
    return NumpyBackend()


def _compiled_factory() -> KernelBackend:
    """Resolve ``compiled``: JIT if Numba exists, else the documented fallback."""
    from .compiled import CompiledBackend, numba_available

    if numba_available():
        return CompiledBackend(jit=True)
    if os.environ.get("REPRO_COMPILED_PUREPY"):
        return CompiledBackend(jit=False)
    warnings.warn(
        "kernel backend 'compiled' requested but numba is not installed; "
        "falling back to the bit-identical 'numpy' reference backend "
        "(results are unchanged, only slower)",
        RuntimeWarning,
        stacklevel=3,
    )
    return get_backend("numpy")


_FACTORIES: dict[str, Callable[[], KernelBackend]] = {
    "numpy": _numpy_factory,
    "compiled": _compiled_factory,
}

#: Names accepted by ``engine.backend`` / ``--backend`` out of the box.
BACKEND_CHOICES = ("numpy", "compiled")

_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(
    name: str, factory: Callable[[], KernelBackend], *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` (third-party backends hook in here)."""
    if not replace and name in _FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve ``name`` to its singleton backend instance.

    ``None`` resolves to :data:`DEFAULT_BACKEND`.  Unknown names raise
    ``ValueError`` listing what is registered.  The resolved instance is
    cached under the *requested* name, so the compiled→numpy fallback
    warns only once per process.
    """
    key = DEFAULT_BACKEND if name is None else name
    got = _INSTANCES.get(key)
    if got is None:
        factory = _FACTORIES.get(key)
        if factory is None:
            known = ", ".join(sorted(_FACTORIES))
            raise ValueError(f"unknown kernel backend {key!r} (known: {known})")
        got = factory()
        _INSTANCES[key] = got
    return got


def default_kernels() -> KernelBackend:
    """The reference backend singleton (what bare constructors use)."""
    return get_backend(DEFAULT_BACKEND)


def backend_info(name: str) -> dict[str, Any]:
    """Describe one registered backend without triggering fallback warnings.

    For ``compiled`` without Numba this reports the planned fallback
    instead of instantiating (and warning); otherwise it resolves the
    singleton and returns its :meth:`~KernelBackend.info`.
    """
    if name not in _FACTORIES:
        raise ValueError(f"unknown kernel backend {name!r}")
    if name == "compiled" and name not in _INSTANCES:
        from .compiled import numba_available

        if not numba_available() and not os.environ.get("REPRO_COMPILED_PUREPY"):
            return {
                "name": "compiled",
                "available": False,
                "mode": "fallback",
                "numba_version": None,
                "warmed": False,
                "detail": "numba not installed; resolves to the numpy reference",
            }
    info = dict(get_backend(name).info())
    if info.get("name") != name:
        # A fallback singleton answered for this name.  "available" keeps
        # meaning "can this *name* run natively", matching the
        # pre-instantiation branch above.
        info["requested"] = name
        info["mode"] = "fallback"
        info["available"] = False
    return info


def list_backends() -> list[dict[str, Any]]:
    """Availability/version/warm-up facts for every registered backend."""
    return [backend_info(name) for name in sorted(_FACTORIES)]


def reset_backend_cache() -> None:
    """Drop cached singletons (tests use this to re-trigger resolution)."""
    _INSTANCES.clear()
