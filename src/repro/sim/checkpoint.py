"""Checkpointing: persist and restore a simulation's learned state.

Enables train-once / evaluate-many workflows: run the expensive 10 000-step
training phase once, save the Q-matrices, then replay evaluation phases
under different service configurations from the same learned policies.

Only the *learned* state is persisted (Q-matrices, contribution ledgers,
step counter); the RNG is reseeded by the caller, matching the paper's
phase boundary where reputations reset anyway.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .engine import CollaborationSimulation

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(sim: CollaborationSimulation, path: str | Path) -> Path:
    """Write the simulation's learned state to an ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n_agents=np.int64(sim.config.n_agents),
        n_rational=np.int64(sim.rational_idx.size),
        step_count=np.int64(sim.step_count),
        sharing_q=sim.sharing_learner.q,
        edit_q=sim.edit_learner.q,
        ledger_c_s=sim.scheme.ledger.sharing.copy(),
        ledger_c_e=sim.scheme.ledger.editing.copy(),
        types=sim.peers.types,
    )
    return path


def load_checkpoint(sim: CollaborationSimulation, path: str | Path) -> None:
    """Restore learned state saved by :func:`save_checkpoint`.

    The target simulation must have the same population size and rational
    count; its behaviour types must match exactly (the Q-matrices are
    indexed by rational-peer order).
    """
    # Open the handle ourselves: np.load leaks its internal FileIO when it
    # raises on a corrupt archive, which surfaces as an unraisable
    # ResourceWarning at the next GC point.
    with open(Path(path), "rb") as fh, np.load(fh) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        if int(data["n_agents"]) != sim.config.n_agents:
            raise ValueError(
                f"population mismatch: checkpoint has {int(data['n_agents'])} "
                f"agents, simulation has {sim.config.n_agents}"
            )
        if int(data["n_rational"]) != sim.rational_idx.size:
            raise ValueError("rational-peer count mismatch")
        if not np.array_equal(data["types"], sim.peers.types):
            raise ValueError(
                "behaviour-type layout mismatch; use the same config seed"
            )
        if data["sharing_q"].shape != sim.sharing_learner.q.shape:
            raise ValueError("sharing Q-matrix shape mismatch")
        if data["edit_q"].shape != sim.edit_learner.q.shape:
            raise ValueError("edit Q-matrix shape mismatch")
        sim.sharing_learner.q[:] = data["sharing_q"]
        sim.edit_learner.q[:] = data["edit_q"]
        sim.scheme.ledger.sharing[:] = data["ledger_c_s"]
        sim.scheme.ledger.editing[:] = data["ledger_c_e"]
        sim.step_count = int(data["step_count"])
