"""Checkpointing: persist and restore a simulation's learned state.

Enables train-once / evaluate-many workflows: run the expensive 10 000-step
training phase once, save the Q-matrices, then replay evaluation phases
under different service configurations from the same learned policies.

Only the *learned* state is persisted (Q-matrices, contribution ledgers,
step counter — plus the tit-for-tat scheme's private history, which is as
learned as a Q-matrix); the RNG is reseeded by the caller, matching the
paper's phase boundary where reputations reset anyway.

Format history
--------------
* **v1** — Q-matrices, contribution ledger, step counter, types.
* **v2** — adds the tit-for-tat private history for ``scheme="tft"``
  sims: the incrementally maintained service totals plus either the
  dense ``given`` stack or the sparse ledger arrays (``partners`` /
  ``amounts`` / ``counts``), whichever the sim ran with.  Loading
  migrates between storage modes: a dense-written checkpoint loads into
  a sparse-configured sim when every peer's partner set fits
  ``scale.ledger_cap`` (and raises a clear error otherwise), and a
  sparse checkpoint expands losslessly into a dense sim.  v1 files still
  load (their tft history simply starts empty, as it always did).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from ..core.baselines import PrivateHistoryScheme
from ..core.sparse import SparseInteractionLedger
from .engine import CollaborationSimulation

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_checkpoint(sim: CollaborationSimulation, path: str | Path) -> Path:
    """Write the simulation's learned state to an ``.npz`` file.

    Crash-safe: the archive is written to a same-directory temp file,
    flushed and fsynced, then atomically renamed over ``path`` — a crash
    (or an injected ``checkpoint/save`` fault) mid-write leaves any
    existing checkpoint at ``path`` intact, never a torn archive.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = dict(
        version=np.int64(_FORMAT_VERSION),
        n_agents=np.int64(sim.config.n_agents),
        n_rational=np.int64(sim.rational_idx.size),
        step_count=np.int64(sim.step_count),
        sharing_q=sim.sharing_learner.q,
        edit_q=sim.edit_learner.q,
        ledger_c_s=sim.scheme.ledger.sharing.copy(),
        ledger_c_e=sim.scheme.ledger.editing.copy(),
        types=sim.peers.types,
    )
    scheme = sim.scheme
    if isinstance(scheme, PrivateHistoryScheme):
        payload["tft_totals"] = scheme._totals.copy()
        if scheme.sparse:
            led = scheme._ledger
            payload["tft_sparse"] = np.int64(1)
            payload["tft_partners"] = led.partners.copy()
            payload["tft_amounts"] = led.amounts.copy()
            payload["tft_counts"] = led.counts.copy()
        else:
            payload["tft_sparse"] = np.int64(0)
            payload["tft_given"] = scheme._given.copy()
    # Imported lazily: repro.resilience imports repro.sim modules, so a
    # top-level import here would be circular during package init.
    from ..resilience.faults import InjectedFault, fault_point, torn_bytes

    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        spec = fault_point("checkpoint/save", key=str(path))
        with os.fdopen(fd, "wb") as fh:
            fd = None  # fdopen owns it now
            if spec is not None and spec.action == "torn-write":
                # Cooperative torn write: partial bytes land in the temp
                # file only — the rename below never happens, proving the
                # target checkpoint cannot be half-written.
                import io

                buf = io.BytesIO()
                np.savez_compressed(buf, **payload)
                fh.write(torn_bytes(spec, buf.getvalue()))
                fh.flush()
                os.fsync(fh.fileno())
                raise InjectedFault("checkpoint/save")
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        tmp = None
    finally:
        if fd is not None:
            os.close(fd)
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return path


def _restore_tft_history(scheme: PrivateHistoryScheme, data) -> None:
    """Install a v2 checkpoint's tft history, migrating storage modes.

    Every check (and every migration that can fail) runs before the first
    write to the scheme, so a raised error leaves the target simulation
    exactly as it was — callers may catch and retry another checkpoint.
    """
    if "tft_totals" not in data:
        raise ValueError(
            "checkpoint holds no tit-for-tat history but the simulation "
            "uses scheme='tft'; it was saved from a different scheme"
        )
    saved_sparse = bool(int(data["tft_sparse"]))
    if saved_sparse:
        partners, amounts = data["tft_partners"], data["tft_amounts"]
        counts = data["tft_counts"]
        if scheme.sparse:
            led = scheme._ledger
            if int(counts.max(initial=0)) > led.cap:
                raise ValueError(
                    f"sparse checkpoint rows hold up to {int(counts.max())} "
                    f"partners but the target ledger cap is {led.cap}; "
                    "raise scale.ledger_cap to load this checkpoint"
                )
            led.reset()
            width = min(partners.shape[1], led.cap)
            led.partners[:, :width] = partners[:, :width]
            led.amounts[:, :width] = amounts[:, :width]
            led.counts[:] = counts
        else:
            # Sparse -> dense: lossless expansion via a scratch ledger.
            led = SparseInteractionLedger(
                scheme.n_peers, scheme.n_replicates, cap=partners.shape[1]
            )
            led.partners[:] = partners
            led.amounts[:] = amounts
            led.counts[:] = counts
            scheme._given[:] = led.to_dense()
    else:
        given = data["tft_given"]
        if scheme.sparse:
            # Dense -> sparse: exact migration, or a clear error (raised
            # before any state moves) when the history does not fit.
            scheme._ledger = SparseInteractionLedger.from_dense(
                given,
                cap=scheme._ledger.row_cap,
                chunk_size=scheme._ledger.chunk_size,
            )
        else:
            scheme._given[:] = given
    scheme._totals[:] = data["tft_totals"]


def load_checkpoint(sim: CollaborationSimulation, path: str | Path) -> None:
    """Restore learned state saved by :func:`save_checkpoint`.

    The target simulation must have the same population size and rational
    count; its behaviour types must match exactly (the Q-matrices are
    indexed by rational-peer order).  Tit-for-tat history follows the
    target sim's storage mode — see the module docstring for the
    dense/sparse migration rules.
    """
    # Open the handle ourselves: np.load leaks its internal FileIO when it
    # raises on a corrupt archive, which surfaces as an unraisable
    # ResourceWarning at the next GC point.
    with open(Path(path), "rb") as fh, np.load(fh) as data:
        version = int(data["version"])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported checkpoint version {version}")
        if int(data["n_agents"]) != sim.config.n_agents:
            raise ValueError(
                f"population mismatch: checkpoint has {int(data['n_agents'])} "
                f"agents, simulation has {sim.config.n_agents}"
            )
        if int(data["n_rational"]) != sim.rational_idx.size:
            raise ValueError("rational-peer count mismatch")
        if not np.array_equal(data["types"], sim.peers.types):
            raise ValueError(
                "behaviour-type layout mismatch; use the same config seed"
            )
        if data["sharing_q"].shape != sim.sharing_learner.q.shape:
            raise ValueError("sharing Q-matrix shape mismatch")
        if data["edit_q"].shape != sim.edit_learner.q.shape:
            raise ValueError("edit Q-matrix shape mismatch")
        if version >= 2 and isinstance(sim.scheme, PrivateHistoryScheme):
            _restore_tft_history(sim.scheme, data)
        sim.sharing_learner.q[:] = data["sharing_q"]
        sim.edit_learner.q[:] = data["edit_q"]
        sim.scheme.ledger.sharing[:] = data["ledger_c_s"]
        sim.scheme.ledger.editing[:] = data["ledger_c_e"]
        sim.step_count = int(data["step_count"])
