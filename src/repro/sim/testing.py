"""Test/verification helpers shared by the suite and the ``repro`` CLI.

Two things live here because both the property-based tests and the
``repro verify-backend`` subcommand need them:

* **State fingerprinting** — :func:`collect_arrays` walks an arbitrary
  object graph (a :class:`~repro.sim.state.SimState`, a scheme, a
  learner) and returns every reachable numpy array keyed by its
  attribute path; :func:`compare_fingerprints` diffs two such maps bit
  for bit.  :func:`backend_equivalence_report` builds on them: it steps
  one config under two kernel backends and reports every array that
  diverges (empty report == bit-identical), including each lane's RNG
  stream position — a backend that consumed randomness would shift it.

* **Config generation** — :func:`random_config` draws valid random
  :class:`~repro.sim.config.SimulationConfig` objects covering every
  structured corner (float sentinels, nested dataclasses, dotted
  ``scale.*``/``engine.*`` updates).  Grown for the store's hashing
  round-trip property suite; the backend-equivalence property suite
  reuses it so the two properties explore the same config space.
"""

from __future__ import annotations

import random
from typing import Any

import numpy as np

from ..agents.population import PopulationMix
from ..core.params import (
    ContributionParams,
    PaperConstants,
    ReputationParams,
    ServiceParams,
    UtilityParams,
)
from ..core.reputation import REPUTATION_FUNCTIONS
from .config import SimulationConfig

__all__ = [
    "collect_arrays",
    "state_fingerprint",
    "compare_fingerprints",
    "backend_equivalence_report",
    "random_config",
    "random_equivalence_config",
]

#: Attribute names the array walker never descends into: backends hold
#: no run state (and are shared singletons), configs hold no arrays.
_SKIP_ATTRS = frozenset({"backend", "kernels", "config", "configs"})


def collect_arrays(
    obj: Any, prefix: str = "", *, _seen: set[int] | None = None, _depth: int = 0
) -> dict[str, np.ndarray]:
    """Every numpy array reachable from ``obj``, keyed by attribute path.

    Descends through dicts, lists/tuples and object ``__dict__``s
    (cycle-safe, depth-capped); skips callables, modules and the
    attribute names in :data:`_SKIP_ATTRS`.  The paths are stable across
    two objects built the same way, which is what makes two walks
    comparable.
    """
    out: dict[str, np.ndarray] = {}
    if _depth > 12:
        return out
    seen = _seen if _seen is not None else set()
    if isinstance(obj, np.ndarray):
        out[prefix] = obj
        return out
    if isinstance(obj, (str, bytes, int, float, bool, complex, type(None), type)):
        return out
    if callable(obj) and not hasattr(obj, "__dict__"):
        return out
    marker = id(obj)
    if marker in seen:
        return out
    seen.add(marker)
    if isinstance(obj, dict):
        items = [(f"{prefix}[{k!r}]", v) for k, v in obj.items()]
    elif isinstance(obj, (list, tuple)):
        items = [(f"{prefix}[{i}]", v) for i, v in enumerate(obj)]
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs is None:
            return out
        items = [
            (f"{prefix}.{k}" if prefix else k, v)
            for k, v in attrs.items()
            if k not in _SKIP_ATTRS and not callable(v)
        ]
    for path, value in items:
        out.update(collect_arrays(value, path, _seen=seen, _depth=_depth + 1))
    return out


def state_fingerprint(state: Any) -> dict[str, np.ndarray]:
    """All run state of a :class:`~repro.sim.state.SimState`, as arrays.

    The generic walk covers the peers, scheme books, learner Q-tables,
    article stores, metrics buffers and counters; on top of it each
    lane's RNG position is recorded explicitly (``BufferedRNG`` uses
    ``__slots__``, so the walk cannot see it): the PCG64 stream state
    plus the buffer cursor.  Kernel backends never draw randomness, so
    any backend that did — or that changed a draw's *size* — shifts
    these and fails the comparison.
    """
    fp = collect_arrays(state, "state")
    for r, rng in enumerate(getattr(state, "rngs", [])):
        gen = getattr(rng, "gen", rng)
        inner = gen.bit_generator.state.get("state", {})
        fp[f"rng[{r}].state"] = np.asarray(
            [int(inner.get("state", 0)), int(inner.get("inc", 0))], dtype=object
        )
        fp[f"rng[{r}].pos"] = np.asarray([getattr(rng, "_pos", -1)])
    return fp


def compare_fingerprints(
    a: dict[str, np.ndarray], b: dict[str, np.ndarray]
) -> list[str]:
    """Paths present in only one map, or whose arrays are not bit-identical."""
    bad: list[str] = []
    for path in sorted(set(a) | set(b)):
        if path not in a or path not in b:
            bad.append(f"{path} (missing on one side)")
            continue
        x, y = a[path], b[path]
        if x.shape != y.shape or x.dtype != y.dtype:
            bad.append(f"{path} (shape/dtype {x.shape}/{x.dtype} vs {y.shape}/{y.dtype})")
        elif not np.array_equal(x, y, equal_nan=x.dtype.kind == "f"):
            bad.append(path)
    return bad


def backend_equivalence_report(
    config: SimulationConfig,
    n_steps: int = 8,
    backends: tuple[str, str] = ("numpy", "compiled"),
    temperature: float = 1.0,
    learn: bool = True,
) -> list[str]:
    """Step ``config`` under two backends; report every diverging array.

    Builds one fresh :class:`~repro.sim.state.SimState` per backend
    (identical seeds), advances both ``n_steps`` through the full phase
    pipeline and diffs the complete state fingerprints.  An empty list
    means the backends are bit-identical on this config — the compiled
    backend's acceptance contract.
    """
    from .phases import step_state
    from .state import build_sim_state

    fingerprints = []
    for name in backends:
        cfg = config.with_(**{"engine.backend": name})
        state = build_sim_state([cfg])
        for _ in range(max(0, int(n_steps))):
            step_state(state, temperature, learn=learn)
        fingerprints.append(state_fingerprint(state))
    return compare_fingerprints(*fingerprints)


# ----------------------------------------------------------------------
# Random config generation
# ----------------------------------------------------------------------
_SCHEMES = ("auto", "reputation", "none", "tft", "karma")
_OVERLAYS = ("full", "random", "smallworld", "scalefree")


def _eighths(rng: random.Random) -> PopulationMix:
    """A random mix in exact eighths, so the fractions sum to exactly 1."""
    a = rng.randint(0, 8)
    b = rng.randint(0, 8 - a)
    return PopulationMix(
        rational=a / 8, altruistic=b / 8, irrational=(8 - a - b) / 8
    )


def _maybe_integral(rng: random.Random, lo: float, hi: float) -> float:
    """A float in (lo, hi]; sometimes exactly integral.

    The int-collapse corner: canonical JSON serializes 2.0 as 2.
    """
    if rng.random() < 0.3:
        value = float(rng.randint(max(1, int(lo)), max(2, int(hi))))
        return min(max(value, lo), hi)
    return rng.uniform(lo, hi) or hi


def _constants(rng: random.Random) -> PaperConstants:
    """Random paper constants within each parameter's validated range."""

    def reputation() -> ReputationParams:
        r_min = rng.uniform(0.01, 0.4)
        return ReputationParams(
            g=_maybe_integral(rng, 1.0, 40.0),
            beta=rng.uniform(0.05, 2.0),
            r_min=r_min,
            r_max=rng.uniform(r_min + 0.05, 1.0),
        )

    rep_s = reputation()
    majority_min = rng.uniform(0.3, 0.7)
    return PaperConstants(
        reputation_s=rep_s,
        reputation_e=reputation(),
        contribution=ContributionParams(
            alpha_s=_maybe_integral(rng, 1.0, 5.0),
            beta_s=rng.uniform(0.5, 5.0),
            d_s=rng.uniform(0.0, 0.2),
            alpha_e=rng.uniform(0.5, 5.0),
            beta_e=rng.uniform(0.5, 5.0),
            d_e=rng.uniform(0.0, 0.2),
            retention=rng.uniform(0.5, 1.0),
        ),
        service=ServiceParams(
            # edit_threshold must clear the sharing scheme's r_min floor.
            edit_threshold=rng.uniform(rep_s.r_min + 0.01, 0.9),
            majority_min=majority_min,
            majority_max=rng.uniform(majority_min, 1.0),
            vote_punish_threshold=rng.randint(1, 20),
            edit_punish_threshold=rng.randint(1, 20),
        ),
        utility=UtilityParams(
            alpha=_maybe_integral(rng, 1.0, 10.0),
            beta=rng.uniform(0.01, 1.0),
            gamma=rng.uniform(0.01, 1.0),
            delta=_maybe_integral(rng, 1.0, 40.0),
            epsilon=rng.uniform(0.5, 10.0),
        ),
    )


def random_config(rng: random.Random) -> SimulationConfig:
    """One valid random config touching every structured corner."""
    t_train = rng.choice(
        [float("inf"), float("-inf"), float("nan"), rng.uniform(0.1, 10.0)]
    )
    cfg = SimulationConfig(
        n_agents=rng.randint(2, 500),
        mix=_eighths(rng),
        incentives_enabled=rng.random() < 0.5,
        scheme=rng.choice(_SCHEMES),
        constants=_constants(rng),
        reputation_fn_s=rng.choice(list(REPUTATION_FUNCTIONS)),
        reputation_fn_e=rng.choice(list(REPUTATION_FUNCTIONS)),
        karma_initial=_maybe_integral(rng, 0.0, 5.0),
        karma_floor=rng.uniform(0.001, 0.5),
        tft_optimistic_floor=rng.uniform(0.001, 0.5),
        tft_history_decay=rng.uniform(0.5, 1.0),
        n_states=rng.randint(1, 30),
        training_steps=rng.randint(0, 10_000),
        eval_steps=rng.randint(1, 5_000),
        t_train=t_train,
        t_eval=rng.choice([1.0, 2.0, float("inf"), rng.uniform(0.1, 5.0)]),
        learning_rate=rng.uniform(0.01, 1.0),
        discount=rng.uniform(0.0, 1.0),
        learn_during_eval=rng.random() < 0.5,
        n_articles=rng.randint(1, 100),
        founders_per_article=rng.randint(1, 10),
        download_probability=rng.choice([1.0, rng.uniform(0.0, 1.0)]),
        edit_attempt_prob=rng.uniform(0.0, 1.0),
        max_voters_per_edit=rng.randint(1, 30),
        min_voters_per_edit=rng.randint(1, 5),
        enforce_edit_threshold=rng.random() < 0.5,
        overlay_kind=rng.choice(_OVERLAYS),
        overlay_degree=rng.randint(2, 32),
        capacity_sigma=rng.choice([0.0, rng.uniform(0.0, 2.0)]),
        leave_rate=rng.uniform(0.0, 0.2),
        join_rate=rng.uniform(0.0, 0.2),
        whitewash_rate=rng.uniform(0.0, 0.2),
        collusion_fraction=rng.uniform(0.0, 1.0),
        collusion_ring_size=rng.randint(2, 10),
        sybil_fraction=rng.uniform(0.0, 1.0),
        sybil_rate=rng.uniform(0.0, 1.0),
        seed=rng.randint(0, 2**31),
        measure_window=rng.uniform(0.1, 1.0),
    )
    if rng.random() < 0.5:
        # Exercise the dotted scale.* update path the CLI and scenario
        # modifiers use, not just the ScaleConfig constructor.
        cfg = cfg.with_(**{
            "scale.sparse": rng.random() < 0.5,
            "scale.ledger_cap": rng.randint(1, 256),
            "scale.chunk_size": rng.randint(1, 65536),
            "scale.stream_metrics_threshold": rng.randint(2, 50_000),
        })
    if rng.random() < 0.5:
        # engine.* is execution policy, excluded from the hash: the wire
        # cycle drops it and the revived config (default engine) must
        # still hash identically — exactly the exclusion invariant.
        cfg = cfg.with_(**{"engine.backend": rng.choice(("numpy", "compiled"))})
    return cfg


def random_equivalence_config(rng: random.Random) -> SimulationConfig:
    """A :func:`random_config` shrunk to equivalence-check proportions.

    Same structured diversity (schemes, overlays, adversaries, churn,
    sparse ledgers, chunk sizes), but small populations and finite
    temperatures so stepping a handful of steps under two backends
    stays fast; ``chunk_size`` is kept tiny to force chunk-boundary
    code paths through every chunked kernel.
    """
    cfg = random_config(rng)
    return cfg.with_(**{
        "n_agents": rng.randint(6, 24),
        "n_articles": rng.randint(1, 6),
        "founders_per_article": rng.randint(1, 3),
        "n_states": rng.randint(1, 6),
        "t_train": rng.choice([float("inf"), 1.0, 2.0]),
        "t_eval": rng.choice([1.0, 0.5]),
        "download_probability": rng.uniform(0.2, 1.0),
        "edit_attempt_prob": rng.uniform(0.2, 1.0),
        "max_voters_per_edit": rng.randint(1, 8),
        "scale.chunk_size": rng.choice([1, 2, 3, 7, 32]),
        "scale.ledger_cap": rng.randint(1, 8),
        "collect_events": False,
    })
