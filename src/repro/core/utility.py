"""Utility functions (paper section III-D).

``U_S = alpha * UP_source * B - beta * DS_articles - gamma * UP_own``
    The benefit of the bandwidth actually received minus the costs of the
    disk space used for shared articles and of the peer's own offered
    upload bandwidth.  Bandwidths and the file size are normalized to 1 as
    in the paper, so ``UP_source * B`` is the download rate received.

``U_E = delta * E_succ + epsilon * V_succ``
    The benefit of accepted edits and successful votes.  The paper
    deliberately assigns editing/voting no rational *cost* ("there must be
    an altruistic motivation for them"), so ``U_E >= 0``.

Both are pure, vectorized functions of per-peer arrays; the simulation
engine feeds them straight into the Q-learning reward signal.
"""

from __future__ import annotations

import numpy as np

from .params import UtilityParams

__all__ = [
    "sharing_utility",
    "sharing_utility_values",
    "editing_utility",
    "editing_utility_values",
]


def sharing_utility(
    received_bandwidth: np.ndarray,
    shared_articles: np.ndarray,
    offered_bandwidth: np.ndarray,
    params: UtilityParams,
) -> np.ndarray:
    """Per-peer sharing utility ``U_S`` for one step.

    Parameters
    ----------
    received_bandwidth:
        ``UP_source * B`` — the download bandwidth each peer actually
        received this step (0 for peers that did not download).
    shared_articles:
        ``DS_articles`` — fraction of disk space used for shared articles.
    offered_bandwidth:
        ``UP_own`` — fraction of upload bandwidth the peer offers.
    """
    return sharing_utility_values(
        received_bandwidth,
        shared_articles,
        offered_bandwidth,
        params.alpha,
        params.beta,
        params.gamma,
    )


def sharing_utility_values(
    received_bandwidth: np.ndarray,
    shared_articles: np.ndarray,
    offered_bandwidth: np.ndarray,
    alpha: float | np.ndarray,
    beta: float | np.ndarray,
    gamma: float | np.ndarray,
) -> np.ndarray:
    """:func:`sharing_utility` on explicit modifier values.

    The lane-batched engine passes per-slot ``(R * N,)`` modifier arrays
    (each lane rewards with its own constants); scalars reproduce the
    params-object spelling operation for operation.
    """
    received_bandwidth = np.asarray(received_bandwidth, dtype=np.float64)
    shared_articles = np.asarray(shared_articles, dtype=np.float64)
    offered_bandwidth = np.asarray(offered_bandwidth, dtype=np.float64)
    return (
        alpha * received_bandwidth
        - beta * shared_articles
        - gamma * offered_bandwidth
    )


def editing_utility(
    accepted_edits: np.ndarray,
    successful_votes: np.ndarray,
    params: UtilityParams,
) -> np.ndarray:
    """Per-peer editing/voting utility ``U_E`` for one step."""
    return editing_utility_values(
        accepted_edits, successful_votes, params.delta, params.epsilon
    )


def editing_utility_values(
    accepted_edits: np.ndarray,
    successful_votes: np.ndarray,
    delta: float | np.ndarray,
    epsilon: float | np.ndarray,
) -> np.ndarray:
    """:func:`editing_utility` on explicit (scalar or per-slot) values."""
    accepted_edits = np.asarray(accepted_edits, dtype=np.float64)
    successful_votes = np.asarray(successful_votes, dtype=np.float64)
    return delta * accepted_edits + epsilon * successful_votes
