"""Sparse capped interaction ledgers: O(N·cap) pairwise state for large N.

The engine's one quadratic structure is the tit-for-tat private-history
matrix ``given[i, j]`` — ``(R, N, N)`` floats that cap populations at a
few thousand peers (50k agents would need 20 GB for the matrix alone).
At scale a peer only ever interacts with a vanishing fraction of the
population, so almost every cell is a structural zero; this module stores
only the lived interactions.

:class:`SparseInteractionLedger` keeps, per *slot* (peer × replicate), a
capped row of ``(partner, amount)`` entries in flat preallocated arrays —
CSR-style fixed-width rows, no per-step Python dicts:

* ``partners``: ``(n_slots, cap)`` int64 local peer ids, ``-1`` = empty;
* ``amounts``:  ``(n_slots, cap)`` float64 accumulated values;
* ``counts``:   ``(n_slots,)`` live entries per row (rows are compact:
  entries occupy positions ``[0, counts[i])``, the tail stays
  ``(-1, 0.0)``).

Memory is ``n_slots * cap * 16`` bytes — ``O(N)`` for a fixed cap — and
every operation is vectorized and **chunked**: lookups and accumulations
process at most ``chunk_size`` rows of ``(m, cap)`` temporaries at a
time, so the peak working set is bounded by the chunk, not the request
count.  Chunking never changes results (all per-chunk work is elementwise
or row-local, and chunks are processed in input order).

Exactness contract
------------------
As long as no row exceeds its cap, the ledger reproduces a dense matrix
**bit for bit**: each ``(row, col)`` cell accumulates with the same
floating-point additions in the same order (``add`` requires the
``(row, col)`` pairs of one call to be unique — the engine guarantees
this because a downloader issues at most one request per step), decay
multiplies exactly the stored values a dense row-scale would, and
``lookup`` returns the stored cell or exactly ``0.0``.  Zero-amount
additions are dropped on insert (a dense matrix cell stays 0.0 either
way), so capacity is never spent on structural zeros.

When a full row meets a new partner, the entry with the **smallest
stored amount** is evicted (decay-eviction: stale partners decay toward
zero and age out first).  Eviction is the one approximation of the scale
path; callers get the evicted entries back so derived aggregates can
stay consistent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SparseInteractionLedger"]


class SparseInteractionLedger:
    """Capped per-row (partner, amount) store over ``R * N`` flat slots.

    Parameters
    ----------
    n_local:
        Peers per replicate (``N``); partner ids are local to a replicate.
    n_replicates:
        Stacked replicate count (``R``); rows = ``R * N`` slots.
    cap:
        Allocated entries per row.  May be a per-slot ``(R * N,)`` array
        (lane batching lifts the cap like any other per-lane knob); the
        allocation width is then ``max(cap)`` and each row evicts at its
        own cap, exactly as a solo ledger with that scalar cap would.
    chunk_size:
        Rows per vectorized chunk in ``lookup``/``add`` — bounds the
        ``(chunk, cap)`` temporaries; pure execution knob, results are
        identical for any positive value.
    kernels:
        The :class:`~repro.sim.backends.base.KernelBackend` executing
        ``lookup``/``add`` (``None`` = the numpy reference).  Backends
        are bit-identical by contract, so this is an execution knob too.
    """

    def __init__(
        self,
        n_local: int,
        n_replicates: int = 1,
        cap: int | np.ndarray = 64,
        chunk_size: int = 32_768,
        kernels=None,
    ) -> None:
        if n_local < 1 or n_replicates < 1:
            raise ValueError("need n_local >= 1 and n_replicates >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        cap_arr = np.asarray(cap)
        if np.any(cap_arr < 1):
            raise ValueError("ledger cap must be >= 1")
        self.n_local = int(n_local)
        self.n_replicates = int(n_replicates)
        self.n_slots = self.n_local * self.n_replicates
        # A row can never hold more than N - 1 distinct partners (no
        # self-interactions), so clip the allocation to what small
        # populations can actually fill.
        width = int(min(int(cap_arr.max()), max(self.n_local - 1, 1)))
        self.cap = width
        self.row_cap: int | np.ndarray = (
            np.minimum(cap_arr, width).astype(np.int64)
            if cap_arr.ndim
            else min(int(cap_arr), width)
        )
        if isinstance(self.row_cap, np.ndarray) and self.row_cap.shape != (
            self.n_slots,
        ):
            raise ValueError("per-slot cap must have shape (n_slots,)")
        self.chunk_size = int(chunk_size)
        if kernels is None:
            from ..sim.backends import default_kernels

            kernels = default_kernels()
        self.kernels = kernels
        self.partners = np.full((self.n_slots, width), -1, dtype=np.int64)
        self.amounts = np.zeros((self.n_slots, width), dtype=np.float64)
        self.counts = np.zeros(self.n_slots, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Resident bytes of the ledger arrays."""
        return self.partners.nbytes + self.amounts.nbytes + self.counts.nbytes

    def lookup(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Stored amount at each ``(row, col)``, ``0.0`` where absent."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return self.kernels.ledger_lookup(
            self.partners, self.amounts, rows, cols, self.chunk_size
        )

    def add(
        self, rows: np.ndarray, cols: np.ndarray, amounts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Accumulate ``amounts`` into the ``(row, col)`` cells.

        The ``(row, col)`` pairs of one call must be unique (rows may
        repeat with different cols).  Returns ``(evicted_rows,
        evicted_amounts)`` — the entries displaced by cap overflow, empty
        on the exact path — so callers can keep derived totals in sync.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        amounts = np.asarray(amounts, dtype=np.float64)
        return self.kernels.ledger_add(
            self.partners,
            self.amounts,
            self.counts,
            self.row_cap,
            rows,
            cols,
            amounts,
            self.chunk_size,
        )

    # ------------------------------------------------------------------
    def decay_rows(self, decay: float | np.ndarray) -> None:
        """Scale every stored amount (all replicates) by ``decay``."""
        self.amounts *= decay

    def decay_replicates(self, rep_ids: np.ndarray, decay) -> None:
        """Scale the stored amounts of the given replicates only."""
        a3 = self.amounts.reshape(self.n_replicates, self.n_local, self.cap)
        if isinstance(decay, np.ndarray):
            a3[rep_ids] *= decay[rep_ids, None, None]
        else:
            a3[rep_ids] *= decay

    def clear_rows(self, rows: np.ndarray) -> None:
        """Wipe entire rows (a discarded identity forgets what it gave)."""
        self.partners[rows] = -1
        self.amounts[rows] = 0.0
        self.counts[rows] = 0

    def remove_partner(
        self, rep: int, local: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop every entry naming ``local`` within replicate ``rep``.

        Returns ``(rows, removed_amounts)`` so the caller can subtract the
        forgotten service from derived totals.  Rows stay compact via a
        swap-with-last delete (entry order inside a row carries no
        numeric meaning).
        """
        lo = rep * self.n_local
        block = self.partners[lo : lo + self.n_local]
        match = block == local
        rel = np.flatnonzero(match.any(axis=1))
        if not rel.size:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        pos = match[rel].argmax(axis=1)  # unique pairs: one hit per row
        rows = rel + lo
        removed = self.amounts[rows, pos].copy()
        last = self.counts[rows] - 1
        self.partners[rows, pos] = self.partners[rows, last]
        self.amounts[rows, pos] = self.amounts[rows, last]
        self.partners[rows, last] = -1
        self.amounts[rows, last] = 0.0
        self.counts[rows] = last
        return rows, removed

    def reset(self) -> None:
        """Forget everything (the protocol's phase-boundary wipe)."""
        self.partners.fill(-1)
        self.amounts.fill(0.0)
        self.counts.fill(0)

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the ``(R, N, N)`` matrix (tests / checkpoints only)."""
        dense = np.zeros(
            (self.n_replicates, self.n_local, self.n_local), dtype=np.float64
        )
        valid = self.partners >= 0
        row, _ = np.nonzero(valid)
        dense[
            row // self.n_local, row % self.n_local, self.partners[valid]
        ] = self.amounts[valid]
        return dense

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        cap: int | np.ndarray = 64,
        chunk_size: int = 32_768,
    ) -> "SparseInteractionLedger":
        """Exact migration of a dense ``(R, N, N)`` matrix.

        Raises ``ValueError`` when any row holds more distinct partners
        than its cap — a lossy import must be an explicit caller decision,
        not a silent truncation.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim == 2:
            dense = dense[None]
        n_rep, n_local, n2 = dense.shape
        if n_local != n2:
            raise ValueError("dense matrix must be square per replicate")
        led = cls(n_local, n_rep, cap=cap, chunk_size=chunk_size)
        nz = dense != 0.0
        per_row = nz.sum(axis=2).reshape(-1)
        cap_of = (
            led.row_cap
            if isinstance(led.row_cap, np.ndarray)
            else np.full(led.n_slots, led.row_cap, dtype=np.int64)
        )
        if np.any(per_row > cap_of):
            worst = int(per_row.max())
            raise ValueError(
                f"dense history does not fit the sparse cap: a row holds "
                f"{worst} partners, cap allows {int(cap_of.min())}; raise "
                f"scale.ledger_cap (or keep the dense path) to migrate"
            )
        rep, i, j = np.nonzero(nz)
        rows = rep * n_local + i  # row-major: within-row order preserved
        new_run = np.empty(rows.size, dtype=bool)
        if rows.size:
            new_run[0] = True
            np.not_equal(rows[1:], rows[:-1], out=new_run[1:])
            run_start = np.flatnonzero(new_run)
            run_len = np.diff(np.append(run_start, rows.size))
            rank = np.arange(rows.size) - np.repeat(run_start, run_len)
            led.partners[rows, rank] = j
            led.amounts[rows, rank] = dense[rep, i, j]
            led.counts[:] = per_row
        return led
