"""Core library: the paper's reputation-based incentive scheme.

Public surface:

* :mod:`repro.core.params` — every model constant, documented.
* :mod:`repro.core.reputation` — logistic reputation function (+ alternatives).
* :mod:`repro.core.contribution` — vectorized ``C_S``/``C_E`` ledgers.
* :mod:`repro.core.service` — bandwidth / voting / editing differentiation.
* :mod:`repro.core.utility` — the paper's utility functions.
* :mod:`repro.core.punishment` — malicious voter/editor punishment.
* :mod:`repro.core.incentives` — scheme facade + no-incentive baseline.
"""

from .baselines import KarmaScheme, PrivateHistoryScheme
from .contribution import ContributionLedger
from .incentives import NoIncentiveScheme, ReputationIncentiveScheme, make_scheme
from .params import (
    DEFAULT_CONSTANTS,
    ContributionParams,
    PaperConstants,
    ReputationParams,
    ServiceParams,
    UtilityParams,
)
from .punishment import EditPunishment, VotePunishment
from .reputation import (
    REPUTATION_FUNCTIONS,
    ConstantReputation,
    LinearReputation,
    LogisticReputation,
    PowerReputation,
    ReputationFunction,
    StepReputation,
    reputation_to_state,
)
from .service import (
    allocate_by_reputation,
    allocate_equal_split,
    edit_eligibility,
    required_majority,
    voting_weights,
)
from .utility import editing_utility, sharing_utility

__all__ = [
    "KarmaScheme",
    "PrivateHistoryScheme",
    "ContributionLedger",
    "NoIncentiveScheme",
    "ReputationIncentiveScheme",
    "make_scheme",
    "DEFAULT_CONSTANTS",
    "ContributionParams",
    "PaperConstants",
    "ReputationParams",
    "ServiceParams",
    "UtilityParams",
    "EditPunishment",
    "VotePunishment",
    "REPUTATION_FUNCTIONS",
    "ConstantReputation",
    "LinearReputation",
    "LogisticReputation",
    "PowerReputation",
    "ReputationFunction",
    "StepReputation",
    "reputation_to_state",
    "allocate_by_reputation",
    "allocate_equal_split",
    "edit_eligibility",
    "required_majority",
    "voting_weights",
    "editing_utility",
    "sharing_utility",
]
