"""Incentive-scheme facade: the paper's contribution, assembled.

:class:`ReputationIncentiveScheme` wires together the contribution ledger,
the two reputation functions, service differentiation and the punishment
rules behind one step-level API the simulation engine drives.

:class:`NoIncentiveScheme` is the paper's comparison baseline (Figure 3,
"without incentive"): bandwidth is split equally among downloaders, votes
are unweighted, anybody may edit or vote, and nothing is punished.  It
still *tracks* contributions so that the same metrics can be reported.

Both classes satisfy the same implicit protocol; the engine never needs to
know which one it is driving.
"""

from __future__ import annotations

import numpy as np

from .contribution import ContributionLedger
from .params import PaperConstants
from .punishment import EditPunishment, VotePunishment
from .reputation import (
    ConstantReputation,
    LogisticReputation,
    ReputationFunction,
)
from .service import (
    edit_eligibility,
    required_majority,
    voting_weights,
)

__all__ = ["ReputationIncentiveScheme", "NoIncentiveScheme", "make_scheme"]


def _default_kernels():
    """Resolve the reference backend lazily (avoids an import cycle)."""
    from ..sim.backends import default_kernels

    return default_kernels()


class ReputationIncentiveScheme:
    """The reputation-based incentive scheme of Bocek et al. (2008).

    With ``n_replicates > 1`` the scheme keeps the books for ``R``
    independent stacked populations in flat ``R * n_peers`` arrays
    (replicate ``r`` owns slots ``[r*N, (r+1)*N)``).  Every operation here
    is elementwise or grouped by peer slot, so one scheme instance drives
    all replicates bit-identically to ``R`` separate instances; ``R = 1``
    reduces to the historical behaviour exactly.
    """

    differentiates_service = True

    def __init__(
        self,
        n_peers: int,
        constants: PaperConstants | None = None,
        reputation_fn_s: ReputationFunction | None = None,
        reputation_fn_e: ReputationFunction | None = None,
        n_replicates: int = 1,
        kernels=None,
    ) -> None:
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        self.n_peers = int(n_peers)
        self.n_replicates = int(n_replicates)
        self.n_slots = self.n_peers * self.n_replicates
        self.kernels = kernels if kernels is not None else _default_kernels()
        self.constants = constants if constants is not None else PaperConstants()
        c = self.constants
        self.fn_s = reputation_fn_s or LogisticReputation(c.reputation_s)
        self.fn_e = reputation_fn_e or LogisticReputation(c.reputation_e)
        self.ledger = ContributionLedger(self.n_slots, c.contribution)
        self.vote_punishment = VotePunishment(
            self.n_slots, c.service.vote_punish_threshold
        )
        self.edit_punishment = EditPunishment(
            self.n_slots, c.service.edit_punish_threshold
        )

    # ------------------------------------------------------------------
    # Reputation views
    # ------------------------------------------------------------------
    def reputation_s(self) -> np.ndarray:
        """Sharing reputation ``R_S`` per peer."""
        return self.fn_s(self.ledger.sharing)

    def reputation_e(self) -> np.ndarray:
        """Editing/voting reputation ``R_E`` per peer."""
        return self.fn_e(self.ledger.editing)

    # ------------------------------------------------------------------
    # Service differentiation
    # ------------------------------------------------------------------
    def bandwidth_shares(
        self, source_ids: np.ndarray, downloader_ids: np.ndarray
    ) -> np.ndarray:
        """Fraction of each source's upload bandwidth granted per request."""
        rep = self.reputation_s()[downloader_ids]
        return self.kernels.grouped_shares(source_ids, rep, self.n_slots)

    def vote_weights(self, voter_ids: np.ndarray) -> np.ndarray:
        """Normalized voting power of one edit's voter set."""
        return voting_weights(self.reputation_e()[voter_ids])

    def accept_majority(self, editor_id: int) -> float:
        """Required accept majority ``M`` for an edit by ``editor_id``."""
        rep = self.reputation_e()[editor_id]
        return float(
            required_majority(rep, self.constants.service, self.constants.reputation_e)
        )

    def may_edit(self) -> np.ndarray:
        """Mask of peers whose ``R_S >= theta`` (editing privilege)."""
        return edit_eligibility(self.reputation_s(), self.constants.service)

    def may_vote(self) -> np.ndarray:
        """Mask of peers currently holding voting rights (not vote-banned)."""
        return self.vote_punishment.can_vote()

    # ------------------------------------------------------------------
    # Accounting hooks (called once per step by the engine)
    # ------------------------------------------------------------------
    def record_sharing(
        self, shared_articles: np.ndarray, served_bandwidth: np.ndarray
    ) -> None:
        self.ledger.record_sharing(shared_articles, served_bandwidth)

    def record_editing(
        self, successful_votes: np.ndarray, accepted_edits: np.ndarray
    ) -> None:
        self.ledger.record_editing(successful_votes, accepted_edits)

    def record_vote_outcomes(
        self, voter_ids: np.ndarray, successful: np.ndarray
    ) -> np.ndarray:
        """Feed vote outcomes to the punishment tracker; returns new bans."""
        return self.vote_punishment.record_votes(voter_ids, successful)

    def record_edit_outcomes(
        self, editor_ids: np.ndarray, accepted: np.ndarray
    ) -> np.ndarray:
        """Feed edit outcomes to the punishment tracker.

        Accepted edits restore the editor's voting rights (the paper's "to
        get any new rights, the peer has to contribute constructive edits
        first").  Editors crossing the declined-edit threshold get both
        reputations reset to the minimum; their indices are returned.
        """
        editor_ids = np.asarray(editor_ids, dtype=np.int64)
        accepted = np.asarray(accepted, dtype=bool)
        if editor_ids.size:
            self.vote_punishment.restore(editor_ids[accepted])
        punished = self.edit_punishment.record_edits(editor_ids, accepted)
        if punished.size:
            self.ledger.reset_peers(punished)
        return punished

    # ------------------------------------------------------------------
    def reset_identities(self, peer_ids: np.ndarray) -> None:
        """Wipe *all* identity-bound state of the given peer slots.

        Used by the sybil/whitewash kernel: a discarded identity loses its
        contributions (reputation falls to ``R_min``) *and* its punishment
        record — the fresh identity is unbanned and carries no streaks,
        which is exactly why sybil attacks defeat punishment-based
        deterrence.
        """
        peer_ids = np.asarray(peer_ids, dtype=np.int64)
        self.ledger.reset_peers(peer_ids)
        self.vote_punishment.forget(peer_ids)
        self.edit_punishment.forget(peer_ids)

    def reset_reputations(self) -> None:
        """Training -> evaluation phase boundary: wipe reputations and
        punishment state, keep nothing but the agents' Q-matrices (which
        live outside this class)."""
        self.ledger.reset_all()
        self.vote_punishment.reset()
        self.edit_punishment.reset()


class NoIncentiveScheme:
    """Baseline without service differentiation (paper Figure 3, 'without')."""

    differentiates_service = False

    def __init__(
        self,
        n_peers: int,
        constants: PaperConstants | None = None,
        n_replicates: int = 1,
        kernels=None,
    ) -> None:
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        self.n_peers = int(n_peers)
        self.n_replicates = int(n_replicates)
        self.n_slots = self.n_peers * self.n_replicates
        self.kernels = kernels if kernels is not None else _default_kernels()
        self.constants = constants if constants is not None else PaperConstants()
        # Contributions are still tracked so metrics stay comparable, but
        # they never influence any service decision.
        self.ledger = ContributionLedger(self.n_slots, self.constants.contribution)
        self._flat = ConstantReputation(self.constants.reputation_s, value=1.0)

    def reputation_s(self) -> np.ndarray:
        return self._flat(self.ledger.sharing)

    def reputation_e(self) -> np.ndarray:
        return self._flat(self.ledger.editing)

    def bandwidth_shares(
        self, source_ids: np.ndarray, downloader_ids: np.ndarray
    ) -> np.ndarray:
        source_ids = np.asarray(source_ids)
        ones = np.ones(source_ids.shape, dtype=np.float64)
        return self.kernels.grouped_shares(source_ids, ones, self.n_slots)

    def vote_weights(self, voter_ids: np.ndarray) -> np.ndarray:
        voter_ids = np.asarray(voter_ids)
        if voter_ids.size == 0:
            return np.zeros(0, dtype=np.float64)
        return np.full(voter_ids.shape, 1.0 / voter_ids.size)

    def accept_majority(self, editor_id: int) -> float:
        # Simple unweighted majority rule.
        return 0.5

    def may_edit(self) -> np.ndarray:
        return np.ones(self.n_slots, dtype=bool)

    def may_vote(self) -> np.ndarray:
        return np.ones(self.n_slots, dtype=bool)

    def record_sharing(
        self, shared_articles: np.ndarray, served_bandwidth: np.ndarray
    ) -> None:
        self.ledger.record_sharing(shared_articles, served_bandwidth)

    def record_editing(
        self, successful_votes: np.ndarray, accepted_edits: np.ndarray
    ) -> None:
        self.ledger.record_editing(successful_votes, accepted_edits)

    def record_vote_outcomes(
        self, voter_ids: np.ndarray, successful: np.ndarray
    ) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def record_edit_outcomes(
        self, editor_ids: np.ndarray, accepted: np.ndarray
    ) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def reset_identities(self, peer_ids: np.ndarray) -> None:
        """A fresh identity only loses its (inert) contribution record."""
        self.ledger.reset_peers(np.asarray(peer_ids, dtype=np.int64))

    def reset_reputations(self) -> None:
        self.ledger.reset_all()


def make_scheme(
    n_peers: int,
    incentives_enabled: bool,
    constants: PaperConstants | None = None,
    reputation_fn_s: ReputationFunction | None = None,
    reputation_fn_e: ReputationFunction | None = None,
    n_replicates: int = 1,
    kernels=None,
):
    """Factory used by the simulation config."""
    if incentives_enabled:
        return ReputationIncentiveScheme(
            n_peers,
            constants,
            reputation_fn_s=reputation_fn_s,
            reputation_fn_e=reputation_fn_e,
            n_replicates=n_replicates,
            kernels=kernels,
        )
    return NoIncentiveScheme(
        n_peers, constants, n_replicates=n_replicates, kernels=kernels
    )
