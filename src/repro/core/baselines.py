"""Baseline incentive schemes from the paper's related work (section II-B).

The paper sorts incentive schemes into *trust based* (the proposed
reputation scheme; private vs shared histories) and *trade based*
(currencies such as Off-line Karma).  To make the comparison concrete we
implement one representative of each missing category behind the same
scheme protocol the engine drives:

* :class:`PrivateHistoryScheme` — BitTorrent-style tit-for-tat: a source
  splits its upload bandwidth among concurrent downloaders in proportion
  to the bandwidth each of them has *personally* served to that source
  before.  No shared state, no editing support — exactly the scheme the
  paper argues breaks down on non-direct relations.
* :class:`KarmaScheme` — a trade-based currency: serving earns karma,
  downloading costs karma, and a source splits bandwidth proportionally
  to its downloaders' balances.  Globally efficient but needs the central
  authority / heavy overhead the paper criticises (here: an oracle).

Both schemes leave editing/voting undifferentiated (everyone may edit and
vote with equal weight) because neither can price a vote against an
upload — the very gap the paper's scheme fills.

The engine feeds both through the optional ``record_transfers`` hook
(called after download settlement with the request pairs and transferred
amounts); schemes that don't need it simply inherit the no-op.
"""

from __future__ import annotations

import numpy as np

from .contribution import ContributionLedger
from .params import PaperConstants, gather_param as _gather
from .sparse import SparseInteractionLedger


def _default_kernels():
    """Resolve the reference backend lazily (avoids an import cycle)."""
    from ..sim.backends import default_kernels

    return default_kernels()

__all__ = ["PrivateHistoryScheme", "KarmaScheme"]


class _UndifferentiatedEditingMixin:
    """Editing/voting behaviour shared by both baselines: no privileges,
    unweighted votes, simple majority, no punishment."""

    n_peers: int
    #: Total peer slots across stacked replicates (== n_peers when R=1).
    n_slots: int

    def reputation_e(self) -> np.ndarray:
        return np.ones(self.n_slots)

    def vote_weights(self, voter_ids: np.ndarray) -> np.ndarray:
        voter_ids = np.asarray(voter_ids)
        if voter_ids.size == 0:
            return np.zeros(0, dtype=np.float64)
        return np.full(voter_ids.shape, 1.0 / voter_ids.size)

    def accept_majority(self, editor_id: int) -> float:
        return 0.5

    def may_edit(self) -> np.ndarray:
        return np.ones(self.n_slots, dtype=bool)

    def may_vote(self) -> np.ndarray:
        return np.ones(self.n_slots, dtype=bool)

    def record_vote_outcomes(
        self, voter_ids: np.ndarray, successful: np.ndarray
    ) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def record_edit_outcomes(
        self, editor_ids: np.ndarray, accepted: np.ndarray
    ) -> np.ndarray:
        return np.empty(0, dtype=np.int64)


class PrivateHistoryScheme(_UndifferentiatedEditingMixin):
    """Tit-for-tat bandwidth allocation from private direct experience.

    ``given[i, j]`` accumulates the bandwidth peer ``i`` has served peer
    ``j`` (decayed geometrically so the history stays recent, like
    BitTorrent's rolling rate estimate).  When peers compete for source
    ``j``'s bandwidth, downloader ``i``'s weight is
    ``epsilon + given[i, j]`` — strangers receive only the optimistic-
    unchoke floor ``epsilon``.

    Storage has two modes sharing one book-keeping code path:

    * **dense** (default): the historical ``(R, N, N)`` matrix — exact,
      but O(N²) memory, capping populations at a few thousand peers;
    * **sparse** (``sparse=True``): a
      :class:`~repro.core.sparse.SparseInteractionLedger` of at most
      ``ledger_cap`` partners per peer — O(N·cap) memory, bit-identical
      to the dense matrix while no row overflows its cap (the engine's
      scale packs run 50k+ peers this way).

    Per-peer service totals (what ``reputation_s`` normalizes) are
    maintained *incrementally* in both modes — decayed and accumulated by
    the same elementwise operations the pairwise cells see — so the two
    modes produce identical reputations by construction instead of
    depending on the summation tree of a dense row reduction.
    """

    differentiates_service = True

    def __init__(
        self,
        n_peers: int,
        constants: PaperConstants | None = None,
        optimistic_floor: float = 0.05,
        history_decay: float = 0.995,
        n_replicates: int = 1,
        sparse: bool = False,
        ledger_cap: int | np.ndarray = 64,
        chunk_size: int = 32_768,
        kernels=None,
    ) -> None:
        # Lane batches pass ``optimistic_floor`` as a per-slot (R*N,)
        # array and ``history_decay`` as a per-replicate (R,) array; both
        # are consumed elementwise within each replicate's slots, so a
        # heterogeneous batch books bit-identically to per-lane instances.
        if np.any(np.asarray(history_decay) <= 0.0) or np.any(
            np.asarray(history_decay) > 1.0
        ):
            raise ValueError("history_decay must be in (0, 1]")
        if np.any(np.asarray(optimistic_floor) <= 0.0):
            raise ValueError("optimistic_floor must be positive (unchoke)")
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        self.n_peers = int(n_peers)
        self.n_replicates = int(n_replicates)
        self.n_slots = self.n_peers * self.n_replicates
        self.constants = constants if constants is not None else PaperConstants()
        self.optimistic_floor = (
            optimistic_floor
            if isinstance(optimistic_floor, np.ndarray)
            else float(optimistic_floor)
        )
        self.history_decay = (
            history_decay
            if isinstance(history_decay, np.ndarray)
            else float(history_decay)
        )
        self.kernels = kernels if kernels is not None else _default_kernels()
        self.sparse = bool(sparse)
        if self.sparse:
            # Capped interaction rows: O(N·cap) instead of O(N²).  The
            # cap may be a per-slot array (lane batching lifts it like
            # every other per-lane knob).
            self._ledger = SparseInteractionLedger(
                n_peers,
                n_replicates=self.n_replicates,
                cap=ledger_cap,
                chunk_size=chunk_size,
                kernels=self.kernels,
            )
            self._given = None
        else:
            # One (N, N) direct-experience matrix per replicate; histories
            # are strictly per-replicate (a peer never remembers service
            # from a sibling universe), so replicate batching keeps a
            # (R, N, N) stack rather than a quadratically larger flat
            # (R*N, R*N) matrix.
            self._ledger = None
            self._given = np.zeros(
                (self.n_replicates, n_peers, n_peers), dtype=np.float64
            )
        # Incrementally maintained per-peer service totals — the one
        # aggregate ``reputation_s`` needs, kept O(N) so neither mode ever
        # reduces over the pairwise axis.
        self._totals = np.zeros((self.n_replicates, n_peers), dtype=np.float64)
        self._totals_flat = self._totals.reshape(-1)
        # Contributions tracked only for comparable metrics.
        self.ledger = ContributionLedger(self.n_slots, self.constants.contribution)

    # ``_totals_flat`` is a live view of ``_totals``; pickle would
    # serialize the pair as two independent arrays, silently severing the
    # aliasing and corrupting every post-restore total.  Drop the view
    # from the state and rebuild it on the other side so a restored
    # scheme books transfers bit-identically (checkpoint/resume relies
    # on this).
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_totals_flat"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._totals_flat = self._totals.reshape(-1)

    @property
    def given(self) -> np.ndarray:
        """Direct-experience matrix: ``(N, N)`` for a single run (the
        historical shape), ``(R, N, N)`` when replicates are stacked.

        The sparse mode materializes the dense matrix on demand — an
        introspection/checkpoint convenience, not a hot path.
        """
        dense = (
            self._ledger.to_dense() if self._given is None else self._given
        )
        return dense[0] if self.n_replicates == 1 else dense

    def reputation_s(self) -> np.ndarray:
        """No global reputation exists; expose each peer's total recent
        service (normalized per replicate) purely for metrics."""
        top = self._totals.max(axis=1, keepdims=True)
        out = np.zeros_like(self._totals)
        np.divide(self._totals, top, out=out, where=top > 0)
        return out.reshape(-1)

    def bandwidth_shares(
        self, source_ids: np.ndarray, downloader_ids: np.ndarray
    ) -> np.ndarray:
        source_ids = np.asarray(source_ids, dtype=np.int64)
        downloader_ids = np.asarray(downloader_ids, dtype=np.int64)
        if source_ids.size == 0:
            return np.zeros(0, dtype=np.float64)
        n = self.n_peers
        if self._given is None:
            history = self._ledger.lookup(downloader_ids, source_ids % n)
        else:
            history = self._given[
                source_ids // n, downloader_ids % n, source_ids % n
            ]
        weights = _gather(self.optimistic_floor, source_ids) + history
        return self.kernels.grouped_shares(source_ids, weights, self.n_slots)

    def record_sharing(
        self, shared_articles: np.ndarray, served_bandwidth: np.ndarray
    ) -> None:
        self.ledger.record_sharing(shared_articles, served_bandwidth)

    def record_editing(
        self, successful_votes: np.ndarray, accepted_edits: np.ndarray
    ) -> None:
        self.ledger.record_editing(successful_votes, accepted_edits)

    def record_transfers(
        self,
        downloader_ids: np.ndarray,
        source_ids: np.ndarray,
        amounts: np.ndarray,
    ) -> None:
        """After settlement: the source remembers what it gave whom.

        The rolling history decays one notch per settlement round — but
        only in replicates that actually settled transfers this step, so
        a stacked run decays each replicate exactly as often as running
        it alone would (the engine skips the hook on request-free steps).
        """
        source_ids = np.asarray(source_ids, dtype=np.int64)
        downloader_ids = np.asarray(downloader_ids, dtype=np.int64)
        n = self.n_peers
        rep_ids = source_ids // n
        decay = self.history_decay
        # Decay pairwise cells and totals with the same per-replicate
        # scaling; both modes execute identical total-side operations, so
        # sparse and dense runs see bit-identical reputations.
        if self.n_replicates == 1:
            if self._given is None:
                self._ledger.decay_rows(decay)
            else:
                self._given *= decay
            self._totals *= decay
        else:
            settled = np.unique(rep_ids)
            if self._given is None:
                self._ledger.decay_replicates(settled, decay)
            elif isinstance(decay, np.ndarray):
                self._given[settled] *= decay[settled, None, None]
            else:
                self._given[settled] *= decay
            if isinstance(decay, np.ndarray):
                self._totals[settled] *= decay[settled, None]
            else:
                self._totals[settled] *= decay
        if self._given is None:
            ev_rows, ev_amounts = self._ledger.add(
                source_ids, downloader_ids % n, amounts
            )
            if ev_rows.size:
                # Cap overflow (the approximation regime): the displaced
                # service is forgotten, so the totals forget it too.
                np.subtract.at(self._totals_flat, ev_rows, ev_amounts)
        else:
            np.add.at(
                self._given,
                (rep_ids, source_ids % n, downloader_ids % n),
                amounts,
            )
        np.add.at(self._totals_flat, source_ids, amounts)

    def reset_identities(self, peer_ids: np.ndarray) -> None:
        """Wipe a discarded identity from every private history.

        Both directions vanish: what the peer gave (its own rows) and what
        every source remembers about it (its columns) — a rejoining sybil
        is a stranger to the whole population and falls back to the
        optimistic-unchoke floor.
        """
        peer_ids = np.asarray(peer_ids, dtype=np.int64)
        rep, local = peer_ids // self.n_peers, peer_ids % self.n_peers
        # Rows first (the peer's own history and totals) ...
        if self._given is None:
            self._ledger.clear_rows(peer_ids)
        else:
            self._given[rep, local, :] = 0.0
        self._totals_flat[peer_ids] = 0.0
        # ... then the columns: every source forgets the service it gave
        # the discarded identity, one peer at a time so the totals see the
        # exact same subtraction sequence in both storage modes.
        for k in range(peer_ids.size):
            r, c = int(rep[k]), int(local[k])
            if self._given is None:
                rows, removed = self._ledger.remove_partner(r, c)
                if rows.size:
                    self._totals_flat[rows] -= removed
            else:
                self._totals[r] -= self._given[r, :, c]
                self._given[r, :, c] = 0.0
        self.ledger.reset_peers(peer_ids)

    def reset_reputations(self) -> None:
        if self._given is None:
            self._ledger.reset()
        else:
            self._given.fill(0.0)
        self._totals.fill(0.0)
        self.ledger.reset_all()


class KarmaScheme(_UndifferentiatedEditingMixin):
    """Trade-based currency: earn by serving, pay by downloading.

    Balances start at ``initial_karma``; a served unit of bandwidth earns
    one karma, a received unit costs one (floored at zero — we model a
    soft debit rather than refusing service, so the engine's request flow
    is unchanged).  Allocation weight is the downloader's balance plus a
    small floor so broke newcomers can bootstrap.
    """

    differentiates_service = True

    def __init__(
        self,
        n_peers: int,
        constants: PaperConstants | None = None,
        initial_karma: float = 1.0,
        floor: float = 0.05,
        n_replicates: int = 1,
        kernels=None,
    ) -> None:
        # Lane batches pass both knobs as per-slot (R*N,) arrays; every
        # use below is an elementwise fill or a per-downloader gather, so
        # each lane trades exactly as a solo scheme with its scalars would.
        if np.any(np.asarray(initial_karma) < 0):
            raise ValueError("initial_karma must be non-negative")
        if np.any(np.asarray(floor) <= 0):
            raise ValueError("floor must be positive")
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        self.n_peers = int(n_peers)
        self.n_replicates = int(n_replicates)
        self.n_slots = self.n_peers * self.n_replicates
        self.constants = constants if constants is not None else PaperConstants()
        self.initial_karma = (
            initial_karma
            if isinstance(initial_karma, np.ndarray)
            else float(initial_karma)
        )
        self.floor = floor if isinstance(floor, np.ndarray) else float(floor)
        self.kernels = kernels if kernels is not None else _default_kernels()
        self.balance = np.empty(self.n_slots, dtype=np.float64)
        self.balance[:] = self.initial_karma
        self.ledger = ContributionLedger(self.n_slots, self.constants.contribution)

    def reputation_s(self) -> np.ndarray:
        """Balances normalized into [0, 1], per replicate (karma is a
        currency within one universe — a rich sibling replicate must not
        deflate everyone else's normalized standing)."""
        b = self.balance.reshape(self.n_replicates, self.n_peers)
        top = b.max(axis=1, keepdims=True)
        out = np.zeros_like(b)
        np.divide(b, top, out=out, where=top > 0)
        return out.reshape(-1)

    def bandwidth_shares(
        self, source_ids: np.ndarray, downloader_ids: np.ndarray
    ) -> np.ndarray:
        source_ids = np.asarray(source_ids, dtype=np.int64)
        downloader_ids = np.asarray(downloader_ids, dtype=np.int64)
        if source_ids.size == 0:
            return np.zeros(0, dtype=np.float64)
        weights = _gather(self.floor, downloader_ids) + self.balance[downloader_ids]
        return self.kernels.grouped_shares(source_ids, weights, self.n_slots)

    def record_sharing(
        self, shared_articles: np.ndarray, served_bandwidth: np.ndarray
    ) -> None:
        self.ledger.record_sharing(shared_articles, served_bandwidth)

    def record_editing(
        self, successful_votes: np.ndarray, accepted_edits: np.ndarray
    ) -> None:
        self.ledger.record_editing(successful_votes, accepted_edits)

    def record_transfers(
        self,
        downloader_ids: np.ndarray,
        source_ids: np.ndarray,
        amounts: np.ndarray,
    ) -> None:
        np.add.at(self.balance, source_ids, amounts)
        np.subtract.at(self.balance, downloader_ids, amounts)
        np.maximum(self.balance, 0.0, out=self.balance)

    def reset_identities(self, peer_ids: np.ndarray) -> None:
        """A discarded identity forfeits its balance; the fresh one gets
        the newcomer grant — which is why currencies with a positive
        ``initial_karma`` are whitewash-prone: broke peers profit from
        rejoining."""
        peer_ids = np.asarray(peer_ids, dtype=np.int64)
        self.balance[peer_ids] = _gather(self.initial_karma, peer_ids)
        self.ledger.reset_peers(peer_ids)

    def reset_reputations(self) -> None:
        self.balance[:] = self.initial_karma
        self.ledger.reset_all()
