"""Service differentiation (paper section III-C).

Three services are differentiated by reputation:

1. **Downloading** — all peers downloading from the same source compete for
   its upload bandwidth; peer ``i`` receives the fraction
   ``B_i = R_iS / sum_k R_kS`` over the downloaders of that source.
2. **Voting** — voting power is ``v_i = R_iE / sum_k R_kE`` over the voters
   of one edit; eligibility is restricted to previously successful editors.
3. **Editing** — requires sharing reputation ``R_S >= theta``; the accept
   majority ``M`` is inversely proportional to the editor's editing
   reputation (high-reputation editors need less consent).

The allocation kernels are fully vectorized group-by-source reductions
(``np.add.at`` scatter + gather) so the engine can settle thousands of
concurrent downloads without a Python loop.
"""

from __future__ import annotations

import numpy as np

from .params import ReputationParams, ServiceParams

__all__ = [
    "grouped_shares",
    "allocate_by_reputation",
    "allocate_equal_split",
    "voting_weights",
    "required_majority",
    "required_majority_values",
    "edit_eligibility",
]


def grouped_shares(
    group_ids: np.ndarray, weights: np.ndarray, n_groups: int
) -> np.ndarray:
    """Normalize ``weights`` within each group: ``w_i / sum_{j in group(i)} w_j``.

    ``group_ids`` maps each element to its group in ``[0, n_groups)``.
    Groups with a zero weight-sum fall back to an equal split among their
    members, so the shares always sum to one per non-empty group.
    """
    group_ids = np.asarray(group_ids)
    weights = np.asarray(weights, dtype=np.float64)
    if group_ids.shape != weights.shape:
        raise ValueError("group_ids and weights must have the same shape")
    if group_ids.size == 0:
        return np.zeros(0, dtype=np.float64)
    if np.any((group_ids < 0) | (group_ids >= n_groups)):
        raise ValueError("group ids out of range")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")

    totals = np.zeros(n_groups, dtype=np.float64)
    np.add.at(totals, group_ids, weights)
    counts = np.bincount(group_ids, minlength=n_groups)

    shares = np.empty_like(weights)
    group_total = totals[group_ids]
    degenerate = group_total <= 0.0
    # Normal case: proportional share.
    np.divide(weights, group_total, out=shares, where=~degenerate)
    # Degenerate case (all weights zero in a group): equal split.
    if np.any(degenerate):
        shares[degenerate] = 1.0 / counts[group_ids[degenerate]]
    return shares


def allocate_by_reputation(
    source_ids: np.ndarray,
    downloader_reputation: np.ndarray,
    n_sources: int,
) -> np.ndarray:
    """Reputation-proportional bandwidth shares (the incentive scheme).

    Parameters
    ----------
    source_ids:
        For each download request, the index of the source peer it targets.
    downloader_reputation:
        For each download request, the sharing reputation ``R_S`` of the
        requesting peer.
    n_sources:
        Total number of peers (used to size the reduction).

    Returns
    -------
    Per-request fraction ``B_i`` of the source's upload bandwidth; the
    fractions of each source's requests sum to 1.
    """
    return grouped_shares(source_ids, downloader_reputation, n_sources)


def allocate_equal_split(source_ids: np.ndarray, n_sources: int) -> np.ndarray:
    """Equal-split shares — the no-incentive baseline allocator."""
    source_ids = np.asarray(source_ids)
    ones = np.ones(source_ids.shape, dtype=np.float64)
    return grouped_shares(source_ids, ones, n_sources)


def voting_weights(voter_reputation: np.ndarray) -> np.ndarray:
    """Weighted voting: ``v_i = R_iE / sum_k R_kE`` for one edit's voter set.

    A single edit's voters form one group, so this is a one-group special
    case; empty voter sets return an empty array.
    """
    rep = np.asarray(voter_reputation, dtype=np.float64)
    if rep.size == 0:
        return rep.copy()
    if np.any(rep < 0):
        raise ValueError("reputations must be non-negative")
    total = rep.sum()
    if total <= 0.0:
        return np.full(rep.shape, 1.0 / rep.size)
    return rep / total


def required_majority(
    editor_reputation: np.ndarray | float,
    service: ServiceParams,
    reputation: ReputationParams,
) -> np.ndarray:
    """Adaptive accept-majority ``M`` for an edit (paper section III-C3).

    "the majority M of a vote is inversely proportional to the editor's
    reputation": we interpolate linearly from ``majority_max`` at ``R_min``
    down to ``majority_min`` at ``R_max``.
    """
    return required_majority_values(
        editor_reputation,
        reputation.r_min,
        reputation.r_max,
        service.majority_min,
        service.majority_max,
    )


def required_majority_values(
    editor_reputation: np.ndarray | float,
    r_min: np.ndarray | float,
    r_max: np.ndarray | float,
    majority_min: np.ndarray | float,
    majority_max: np.ndarray | float,
) -> np.ndarray:
    """:func:`required_majority` on explicit parameter values.

    The lane-batched engine gathers per-editor parameters (each editor's
    lane may configure its own majority band); scalars reproduce the
    params-object spelling operation for operation, so the two entry
    points are bit-identical.
    """
    r = np.asarray(editor_reputation, dtype=np.float64)
    span = r_max - r_min
    frac = np.clip((r - r_min) / span, 0.0, 1.0)
    return majority_max - (majority_max - majority_min) * frac


def edit_eligibility(
    sharing_reputation: np.ndarray,
    service: ServiceParams,
) -> np.ndarray:
    """Boolean mask of peers allowed to edit: ``R_S >= theta``."""
    r = np.asarray(sharing_reputation, dtype=np.float64)
    return r >= service.edit_threshold
