"""Punishment of malicious voters and editors (paper sections III-C2/3).

* **Voters**: "if the number of a peer's unsuccessful votes, i.e. votes
  against the majority, exceeds a certain threshold it will lose its voting
  rights.  To get any new rights, the peer has to contribute constructive
  edits first."
* **Editors**: "if a peer has too many declined edits it will lose its
  editing right.  This is done by setting its sharing reputation to the
  minimum value ... In addition, the editing reputation drops to the
  minimum value as well."  Because editing requires ``R_S >= theta > R_min``
  the reputation reset *is* the editing ban; the peer must re-earn sharing
  reputation before it may edit again.

Both trackers are vectorized over the population and expose boolean masks
the engine consults every step.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VotePunishment", "EditPunishment"]


def _as_threshold(threshold):
    """Scalar threshold, or a per-peer array for lane-heterogeneous
    batches (every comparison below is elementwise, so a slot with
    threshold ``t`` behaves exactly like a tracker built with ``t``)."""
    if isinstance(threshold, np.ndarray):
        if np.any(threshold < 1):
            raise ValueError("threshold must be >= 1")
        return threshold
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    return int(threshold)


class VotePunishment:
    """Counts anti-majority votes; revokes voting rights above a threshold."""

    def __init__(self, n_peers: int, threshold):
        self.n_peers = int(n_peers)
        self.threshold = _as_threshold(threshold)
        self.unsuccessful_votes = np.zeros(self.n_peers, dtype=np.int64)
        self.banned = np.zeros(self.n_peers, dtype=bool)

    def record_votes(
        self, voter_ids: np.ndarray, successful: np.ndarray
    ) -> np.ndarray:
        """Account one round of votes.

        ``voter_ids`` are peer indices, ``successful`` the matching boolean
        outcomes (True = voted with the majority).  Returns the indices of
        peers *newly* banned by this round.
        """
        voter_ids = np.asarray(voter_ids, dtype=np.int64)
        successful = np.asarray(successful, dtype=bool)
        if voter_ids.shape != successful.shape:
            raise ValueError("voter_ids and successful must align")
        if voter_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        # A successful vote clears the streak; an unsuccessful one extends it.
        losers = voter_ids[~successful]
        winners = voter_ids[successful]
        self.unsuccessful_votes[winners] = 0
        np.add.at(self.unsuccessful_votes, losers, 1)
        newly = (self.unsuccessful_votes >= self.threshold) & ~self.banned
        self.banned |= newly
        return np.flatnonzero(newly)

    def restore(self, peer_ids: np.ndarray) -> None:
        """Restore voting rights after constructive (accepted) edits."""
        peer_ids = np.asarray(peer_ids, dtype=np.int64)
        self.banned[peer_ids] = False
        self.unsuccessful_votes[peer_ids] = 0

    def forget(self, peer_ids: np.ndarray) -> None:
        """Drop all state for peers whose identity was discarded (sybil
        rejoin): a fresh identity carries no ban and no vote streak."""
        self.restore(peer_ids)

    def reset(self) -> None:
        self.unsuccessful_votes.fill(0)
        self.banned.fill(False)

    def can_vote(self) -> np.ndarray:
        """Boolean mask of peers currently holding voting rights."""
        return ~self.banned


class EditPunishment:
    """Counts declined edits; triggers a reputation reset above a threshold."""

    def __init__(self, n_peers: int, threshold):
        self.n_peers = int(n_peers)
        self.threshold = _as_threshold(threshold)
        self.declined_edits = np.zeros(self.n_peers, dtype=np.int64)

    def record_edits(
        self, editor_ids: np.ndarray, accepted: np.ndarray
    ) -> np.ndarray:
        """Account one round of edit outcomes.

        Returns indices of peers that crossed the threshold and must have
        their reputations reset (the caller applies the reset through the
        :class:`~repro.core.contribution.ContributionLedger`); their counter
        restarts from zero afterwards.
        """
        editor_ids = np.asarray(editor_ids, dtype=np.int64)
        accepted = np.asarray(accepted, dtype=bool)
        if editor_ids.shape != accepted.shape:
            raise ValueError("editor_ids and accepted must align")
        if editor_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        good = editor_ids[accepted]
        bad = editor_ids[~accepted]
        self.declined_edits[good] = 0
        np.add.at(self.declined_edits, bad, 1)
        punished = np.flatnonzero(self.declined_edits >= self.threshold)
        self.declined_edits[punished] = 0
        return punished

    def forget(self, peer_ids: np.ndarray) -> None:
        """Drop the declined-edit streak of peers with discarded identities."""
        self.declined_edits[np.asarray(peer_ids, dtype=np.int64)] = 0

    def reset(self) -> None:
        self.declined_edits.fill(0)
