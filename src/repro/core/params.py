"""Model constants for the Bocek et al. (IPDPS 2008) incentive scheme.

The paper pins down some constants explicitly (``g = 19``, ``R_min = 0.05``,
``R_max = 1``, 10 Q-learning states, 100 agents, 10 000 training steps) and
leaves others open (the contribution weights ``alpha_S``/``beta_S``, the decay
terms, the utility modifiers ``alpha``..``epsilon``, the edit threshold
``theta``, the punishment thresholds and the adaptive-majority range).  All
of them live here so that every experiment and test refers to a single,
documented source of truth.

Where the paper gives no value we choose defaults that (a) respect every
qualitative constraint stated in the text (e.g. ``theta > R_min``; majority
decreasing in the editor's reputation) and (b) reproduce the *shape* of the
paper's Figures 3-7.  See DESIGN.md section 2 for the substitution record.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

__all__ = [
    "gather_param",
    "ReputationParams",
    "ContributionParams",
    "ServiceParams",
    "UtilityParams",
    "PaperConstants",
    "DEFAULT_CONSTANTS",
]


def gather_param(param: float | int | np.ndarray, idx: np.ndarray):
    """Gather a scalar-or-array parameter at (slot/lane) indices.

    The one idiom every lane-lifted parameter gather uses — scheme books
    in :mod:`repro.core` and phase kernels alike (``repro.sim.lanes``
    re-exports it as ``take``): scalars pass through untouched (numpy
    broadcasting does the rest), arrays are fancy-indexed.
    """
    return param[idx] if isinstance(param, np.ndarray) else param


@dataclass(frozen=True)
class ReputationParams:
    """Parameters of the logistic reputation function (paper section III-A).

    ``R(C) = 1 / (1 + g * exp(-beta * C))`` mapped onto ``[r_min, r_max]``.
    With ``g = 19`` the function starts exactly at ``R(0) = 1/20 = 0.05``,
    which is why the paper pairs ``g = 19`` with ``R_min = 0.05``.
    """

    g: float = 19.0
    beta: float = 0.2
    r_min: float = 0.05
    r_max: float = 1.0

    def __post_init__(self) -> None:
        if self.g <= 0:
            raise ValueError(f"g must be positive, got {self.g}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if not 0.0 < self.r_min < self.r_max <= 1.0:
            raise ValueError(
                f"need 0 < r_min < r_max <= 1, got r_min={self.r_min}, r_max={self.r_max}"
            )


@dataclass(frozen=True)
class ContributionParams:
    """Weights and decay of the two contribution values (paper section III-B).

    ``C_S = alpha_s * S_articles + beta_s * S_bandwidth - d_s`` and
    ``C_E = alpha_e * S_votes + beta_e * S_edits - d_e``.  The decay terms
    are applied every step, so a peer that stops contributing sees its
    contribution (and hence reputation) drift back towards zero, exactly the
    "inactive peers decay" semantics of the paper.
    """

    #: The paper's running example sets (alpha_s, beta_s) = (1, 2)
    #: ("sharing bandwidth is twice as valuable"), but with those weights
    #: rational agents substitute *all* reputation-buying into the cheaper
    #: bandwidth channel and article sharing drops below the baseline.
    #: Equal weights reproduce the paper's Figure 3 (+8 % articles,
    #: +11 % bandwidth); see EXPERIMENTS.md for the calibration record.
    alpha_s: float = 2.0  # weight of shared articles
    beta_s: float = 2.0  # weight of shared bandwidth
    d_s: float = 0.02  # sharing decay per step
    alpha_e: float = 2.0  # weight of successful votes
    beta_e: float = 4.0  # weight of accepted edits
    d_e: float = 0.02  # editing decay per step
    #: Exponential retention factor lambda: ``C <- lambda*C + inflow - d``.
    #: The paper's literal constant-decay rule lets C grow without bound
    #: over 10 000 steps, saturating every sharer at R = 1 and erasing the
    #: service differentiation the paper measures.  With retention < 1 the
    #: steady state is bounded, ``C* = (inflow - d) / (1 - lambda)``, and a
    #: peer's reputation tracks its *sustained* behaviour — the semantics
    #: the paper's decay paragraph describes.  ``retention = 1.0`` recovers
    #: the literal rule (see DESIGN.md, substitutions).
    retention: float = 0.9

    def __post_init__(self) -> None:
        for name in ("alpha_s", "beta_s", "alpha_e", "beta_e"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("d_s", "d_e"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 < self.retention <= 1.0:
            raise ValueError("retention must be in (0, 1]")

    @property
    def memory_window(self) -> float:
        """Effective averaging window ``1 / (1 - retention)`` in steps."""
        return float("inf") if self.retention >= 1.0 else 1.0 / (1.0 - self.retention)

    def steady_state_sharing(self, articles: float, bandwidth: float) -> float:
        """Steady-state ``C_S`` for a constant per-step sharing profile."""
        inflow = self.alpha_s * articles + self.beta_s * bandwidth - self.d_s
        if self.retention >= 1.0:
            return float("inf") if inflow > 0 else 0.0
        return max(inflow, 0.0) / (1.0 - self.retention)


@dataclass(frozen=True)
class ServiceParams:
    """Service-differentiation knobs (paper section III-C).

    * ``edit_threshold`` is the paper's ``theta``: a peer may only edit when
      its sharing reputation satisfies ``R_S >= theta > R_min``.
    * ``majority_min``/``majority_max`` bound the adaptive accept majority
      ``M``; ``M`` interpolates linearly from ``majority_max`` (editor at
      ``R_min``) down to ``majority_min`` (editor at ``R_max``), i.e. it is
      inversely proportional to the editor's reputation as required.
    * ``vote_punish_threshold``: number of unsuccessful (anti-majority)
      votes after which a peer loses its voting rights.
    * ``edit_punish_threshold``: number of declined edits after which a
      peer's reputations are reset to the minimum.
    """

    edit_threshold: float = 0.10
    majority_min: float = 0.50
    majority_max: float = 0.75
    vote_punish_threshold: int = 5
    edit_punish_threshold: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.majority_min <= self.majority_max <= 1.0:
            raise ValueError(
                "need 0 < majority_min <= majority_max <= 1, got "
                f"{self.majority_min}..{self.majority_max}"
            )
        if self.vote_punish_threshold < 1 or self.edit_punish_threshold < 1:
            raise ValueError("punishment thresholds must be >= 1")


@dataclass(frozen=True)
class UtilityParams:
    """Utility-function modifiers (paper section III-D).

    ``U_S = alpha * UP_source * B - beta * DS_articles - gamma * UP_own``
    ``U_E = delta * E_succ + epsilon * V_succ``

    The defaults make downloading clearly beneficial while sharing carries a
    moderate cost: with these values the Q-learners settle at intermediate
    sharing levels, which is what produces the paper's "moderately
    effective" +8-11% result rather than all-or-nothing behaviour.
    """

    alpha: float = 4.0  # benefit of received download bandwidth
    beta: float = 0.30  # cost of disk space used for shared articles
    gamma: float = 0.20  # cost of offered upload bandwidth
    #: Editing/voting benefits.  Edits are rare events (a peer proposes
    #: roughly every 1/edit_attempt_prob steps), so the per-event benefit
    #: must be large for the expected per-step reward difference between
    #: constructive and destructive behaviour to survive the T = 1
    #: Boltzmann exploration — with delta ~ 1 rational agents never leave
    #: the 50/50 mix regardless of the majority.  The paper leaves both
    #: constants open.
    delta: float = 20.0  # benefit per accepted edit
    epsilon: float = 4.0  # benefit per successful vote


@dataclass(frozen=True)
class PaperConstants:
    """Bundle of all scheme constants used by the simulation and analysis."""

    reputation_s: ReputationParams = field(default_factory=ReputationParams)
    # Editing/voting events are much rarer than sharing inflow, so the
    # editing reputation uses a steeper logistic (inflection near C ~ 6)
    # to stay responsive; the paper leaves these constants open.
    reputation_e: ReputationParams = field(
        default_factory=lambda: ReputationParams(beta=0.5)
    )
    contribution: ContributionParams = field(default_factory=ContributionParams)
    service: ServiceParams = field(default_factory=ServiceParams)
    utility: UtilityParams = field(default_factory=UtilityParams)

    def __post_init__(self) -> None:
        # The paper requires theta strictly above the minimum sharing
        # reputation, otherwise freshly joined peers could edit immediately.
        if self.service.edit_threshold <= self.reputation_s.r_min:
            raise ValueError(
                "edit_threshold (theta) must exceed the minimum sharing "
                f"reputation: theta={self.service.edit_threshold} vs "
                f"r_min={self.reputation_s.r_min}"
            )

    def with_overrides(self, **sections: Any) -> "PaperConstants":
        """Return a copy with whole sections replaced, e.g.
        ``constants.with_overrides(utility=UtilityParams(alpha=2.0))``."""
        return replace(self, **sections)


DEFAULT_CONSTANTS = PaperConstants()
