"""Contribution-value accounting (paper section III-B).

Every peer carries two contribution values:

* ``C_S`` for *sharing* — weighted sum of shared articles and shared
  bandwidth, minus a per-step decay ``d_S``;
* ``C_E`` for *editing/voting* — weighted sum of successful votes and
  accepted edits, minus a per-step decay ``d_E``.

A vote is *successful* iff it is cast with the (weighted) majority; an edit
is *accepted* iff the weighted majority votes for it.  Both ledgers are
floored at zero (``C >= 0`` by definition in the paper).

The ledger is a struct-of-arrays container over the whole population so the
simulation engine can update all peers with a handful of vectorized
operations per step.
"""

from __future__ import annotations

import numpy as np

from .params import ContributionParams

__all__ = ["ContributionLedger"]


class ContributionLedger:
    """Vectorized ``C_S``/``C_E`` accounting for ``n_peers`` peers."""

    def __init__(self, n_peers: int, params: ContributionParams | None = None):
        if n_peers < 1:
            raise ValueError("n_peers must be >= 1")
        self.n_peers = int(n_peers)
        self.params = params if params is not None else ContributionParams()
        # Lane batches pass a duck-typed params bundle whose leaves are
        # per-slot arrays; all uses below are elementwise, so each slot
        # behaves bit-identically to a ledger built with its own scalars.
        # Multiplying by a retention of exactly 1.0 is an IEEE identity,
        # so one any() gate covers mixed-retention batches too.
        self._apply_retention = bool(np.any(np.asarray(self.params.retention) < 1.0))
        self._c_s = np.zeros(self.n_peers, dtype=np.float64)
        self._c_e = np.zeros(self.n_peers, dtype=np.float64)

    # ------------------------------------------------------------------
    # Views (read-only by convention; engine treats these as snapshots)
    # ------------------------------------------------------------------
    @property
    def sharing(self) -> np.ndarray:
        """Current ``C_S`` per peer (do not mutate)."""
        return self._c_s

    @property
    def editing(self) -> np.ndarray:
        """Current ``C_E`` per peer (do not mutate)."""
        return self._c_e

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def record_sharing(
        self,
        shared_articles: np.ndarray,
        shared_bandwidth: np.ndarray,
        apply_decay: bool = True,
    ) -> None:
        """Accrue one step of sharing contributions.

        ``shared_articles`` and ``shared_bandwidth`` are per-peer amounts
        for this step (the engine passes the offered fractions).  The
        update is ``C <- retention * C + inflow - d_s`` floored at zero:
        with ``retention < 1`` the ledger is an exponential average with a
        bounded steady state (see :class:`ContributionParams.retention`),
        with ``retention = 1`` it is the paper's literal constant-decay
        rule.  Either way an inactive peer's ``C_S`` decays towards zero.
        """
        p = self.params
        self._check(shared_articles, "shared_articles")
        self._check(shared_bandwidth, "shared_bandwidth")
        if self._apply_retention:
            self._c_s *= p.retention
        self._c_s += p.alpha_s * shared_articles
        self._c_s += p.beta_s * shared_bandwidth
        if apply_decay:
            self._c_s -= p.d_s
        np.maximum(self._c_s, 0.0, out=self._c_s)

    def record_editing(
        self,
        successful_votes: np.ndarray,
        accepted_edits: np.ndarray,
        apply_decay: bool = True,
    ) -> None:
        """Accrue one step of editing/voting contributions (same contract)."""
        p = self.params
        self._check(successful_votes, "successful_votes")
        self._check(accepted_edits, "accepted_edits")
        if self._apply_retention:
            self._c_e *= p.retention
        self._c_e += p.alpha_e * successful_votes
        self._c_e += p.beta_e * accepted_edits
        if apply_decay:
            self._c_e -= p.d_e
        np.maximum(self._c_e, 0.0, out=self._c_e)

    def reset_peers(self, indices: np.ndarray, sharing: bool = True, editing: bool = True) -> None:
        """Reset contributions of punished peers to zero (reputation -> R_min).

        Used by the malicious-editor punishment: "its sharing reputation is
        set to the minimum value ... the editing reputation drops to the
        minimum value as well".
        """
        if sharing:
            self._c_s[indices] = 0.0
        if editing:
            self._c_e[indices] = 0.0

    def reset_all(self) -> None:
        """Zero every ledger — used between the training and evaluation
        phases ("the reputation values are reset but the agents keep their
        Q-Matrices")."""
        self._c_s.fill(0.0)
        self._c_e.fill(0.0)

    # ------------------------------------------------------------------
    def _check(self, arr: np.ndarray, name: str) -> None:
        if arr.shape != (self.n_peers,):
            raise ValueError(
                f"{name} must have shape ({self.n_peers},), got {arr.shape}"
            )
        if np.any(arr < 0):
            raise ValueError(f"{name} must be non-negative")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContributionLedger(n_peers={self.n_peers}, "
            f"mean_c_s={self._c_s.mean():.3f}, mean_c_e={self._c_e.mean():.3f})"
        )
