"""Reputation functions mapping contribution values to reputations.

Paper section III-A: the reputation value ``R`` is a monotonically
increasing function of the contribution value ``C`` with

* ``R(0) = R_min > 0`` so newcomers can download at all,
* ``R <= R_max = 1``,
* fast initial growth to motivate newcomers.

The paper's concrete choice is the logistic function

    ``R(C) = 1 / (1 + g * exp(-beta * C))``

with ``g = 19`` (so ``R(0) = 0.05``), plotted in the paper's Figure 1 for
``beta`` in {0.1, 0.15, 0.2, 0.3}.  The paper's future-work section asks how
alternative reputation-function shapes affect sharing, so this module also
provides linear, power and step functions behind the same interface; the
ablation benchmark sweeps them.

All functions are vectorized: they accept scalars or NumPy arrays and never
allocate more than the output array.
"""

from __future__ import annotations

import abc
from typing import Union

import numpy as np

from .params import ReputationParams

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "ReputationFunction",
    "LogisticReputation",
    "LinearReputation",
    "PowerReputation",
    "StepReputation",
    "ConstantReputation",
    "reputation_to_state",
    "REPUTATION_FUNCTIONS",
]


class ReputationFunction(abc.ABC):
    """Monotone map from contribution value ``C >= 0`` to ``[r_min, r_max]``."""

    def __init__(self, params: ReputationParams | None = None) -> None:
        self.params = params if params is not None else ReputationParams()

    @property
    def r_min(self) -> float:
        return self.params.r_min

    @property
    def r_max(self) -> float:
        return self.params.r_max

    def __call__(self, contribution: ArrayLike) -> np.ndarray:
        """Evaluate the reputation for (an array of) contribution values."""
        c = np.asarray(contribution, dtype=np.float64)
        if np.any(c < 0):
            raise ValueError("contribution values must be non-negative")
        r = self._raw(c)
        # Clip into the admissible band; _raw implementations are already
        # monotone so this only guards the boundaries.
        return np.clip(r, self.r_min, self.r_max)

    @abc.abstractmethod
    def _raw(self, c: np.ndarray) -> np.ndarray:
        """Unclipped reputation values."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.params!r})"


class LogisticReputation(ReputationFunction):
    """The paper's logistic reputation function (Figure 1)."""

    def _raw(self, c: np.ndarray) -> np.ndarray:
        p = self.params
        # exp(-beta*c) underflows harmlessly to 0 for large c.
        return 1.0 / (1.0 + p.g * np.exp(-p.beta * c))

    def inflection_point(self) -> float:
        """Contribution value at which growth is fastest: ``ln(g)/beta``."""
        p = self.params
        return float(np.log(p.g) / p.beta)

    def inverse(self, reputation: ArrayLike) -> np.ndarray:
        """Contribution needed to reach ``reputation`` (for analysis)."""
        r = np.asarray(reputation, dtype=np.float64)
        if np.any((r <= 0.0) | (r >= 1.0)):
            raise ValueError("inverse defined on the open interval (0, 1)")
        p = self.params
        return -np.log((1.0 / r - 1.0) / p.g) / p.beta


class LinearReputation(ReputationFunction):
    """Linear ramp from ``r_min`` at C=0 to ``r_max`` at ``c_full``."""

    def __init__(self, params: ReputationParams | None = None, c_full: float = 30.0):
        super().__init__(params)
        if c_full <= 0:
            raise ValueError("c_full must be positive")
        self.c_full = float(c_full)

    def _raw(self, c: np.ndarray) -> np.ndarray:
        p = self.params
        return p.r_min + (p.r_max - p.r_min) * (c / self.c_full)


class PowerReputation(ReputationFunction):
    """Concave power law ``r_min + (r_max-r_min) * (C/c_full)^exponent``.

    With ``exponent < 1`` it grows quickly at first like the logistic but
    never saturates as hard, which is the main alternative candidate named
    by the paper's future-work discussion.
    """

    def __init__(
        self,
        params: ReputationParams | None = None,
        c_full: float = 30.0,
        exponent: float = 0.5,
    ) -> None:
        super().__init__(params)
        if c_full <= 0 or exponent <= 0:
            raise ValueError("c_full and exponent must be positive")
        self.c_full = float(c_full)
        self.exponent = float(exponent)

    def _raw(self, c: np.ndarray) -> np.ndarray:
        p = self.params
        frac = np.clip(c / self.c_full, 0.0, 1.0)
        return p.r_min + (p.r_max - p.r_min) * frac**self.exponent


class StepReputation(ReputationFunction):
    """Discrete service classes: reputation jumps at evenly spaced steps."""

    def __init__(
        self,
        params: ReputationParams | None = None,
        c_full: float = 30.0,
        n_steps: int = 4,
    ) -> None:
        super().__init__(params)
        if c_full <= 0:
            raise ValueError("c_full must be positive")
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        self.c_full = float(c_full)
        self.n_steps = int(n_steps)

    def _raw(self, c: np.ndarray) -> np.ndarray:
        p = self.params
        level = np.floor(np.clip(c / self.c_full, 0.0, 1.0) * self.n_steps)
        level = np.minimum(level, self.n_steps)
        return p.r_min + (p.r_max - p.r_min) * (level / self.n_steps)


class ConstantReputation(ReputationFunction):
    """Every peer has the same reputation — used by the no-incentive baseline."""

    def __init__(self, params: ReputationParams | None = None, value: float = 1.0):
        super().__init__(params)
        if not 0.0 < value <= 1.0:
            raise ValueError("constant reputation must lie in (0, 1]")
        self.value = float(value)

    def _raw(self, c: np.ndarray) -> np.ndarray:
        return np.full_like(c, self.value)


def reputation_to_state(
    reputation: ArrayLike,
    n_states: int = 10,
    r_min: float = 0.05,
    r_max: float = 1.0,
) -> np.ndarray:
    """Discretize reputations into the paper's Q-learning states.

    The paper uses 10 states, "each state represents 1/10 of the reputation
    interval [0.05, 1]".  Values at ``r_max`` fall into the last state.
    Returns int64 indices in ``[0, n_states)``.  ``r_min``/``r_max`` may be
    per-element arrays (lane-batched states discretize each lane against
    its own band; the arithmetic is elementwise either way).
    """
    if n_states < 1:
        raise ValueError("n_states must be >= 1")
    if np.any(np.asarray(r_min) >= np.asarray(r_max)):
        raise ValueError("need r_min < r_max")
    r = np.asarray(reputation, dtype=np.float64)
    frac = (r - r_min) / (r_max - r_min)
    states = np.floor(frac * n_states).astype(np.int64)
    return np.clip(states, 0, n_states - 1)


#: Registry used by the reputation-function ablation experiment.
REPUTATION_FUNCTIONS = {
    "logistic": LogisticReputation,
    "linear": LinearReputation,
    "power": PowerReputation,
    "step": StepReputation,
    "constant": ConstantReputation,
}
