#!/usr/bin/env python
"""Quickstart: run one collaboration-network simulation and read the results.

Builds the paper's default setting (100 peers, reputation-based incentive
scheme, Q-learning agents), runs a reduced-horizon version of the
train-then-evaluate protocol, and prints the headline metrics.

    python examples/quickstart.py
"""

from repro.sim import base_config, run_simulation


def main() -> None:
    # `fast=True` shrinks the horizon (1 500 training / 800 evaluation
    # steps) while keeping the paper's protocol: uniform exploration at
    # T = inf, reputation reset, then Boltzmann play at T = 1.
    config = base_config(fast=True, seed=42)
    print(f"running: {config.describe()}")
    print(f"  {config.n_agents} peers, {config.training_steps} training steps, "
          f"{config.eval_steps} evaluation steps")

    result = run_simulation(config)

    s = result.summary
    print(f"\ncompleted in {result.wall_time_s:.1f}s — evaluation-window metrics:")
    print(f"  shared articles / peer   : {s['shared_files']:.3f}")
    print(f"  shared bandwidth / peer  : {s['shared_bandwidth']:.3f}")
    print(f"  mean sharing reputation  : {s['reputation_s_rational']:.3f}")
    print(f"  mean sharing utility     : {s['utility_sharing']:.3f}")
    print(f"  votes per step           : {s['votes_cast_per_step']:.1f}")
    print(f"  vote success rate        : {s['vote_success_rate']:.2f}")
    print(f"  constructive edit share  : {s['edit_constructive_fraction']:.2f}")

    # Compare against the no-incentive baseline (the paper's Figure 3).
    baseline = run_simulation(config.with_(incentives_enabled=False))
    b = baseline.summary
    gain_articles = s["shared_files"] / b["shared_files"] - 1.0
    gain_bandwidth = s["shared_bandwidth"] / b["shared_bandwidth"] - 1.0
    print("\nvs the no-incentive baseline (paper: +8 % articles, +11 % bandwidth):")
    print(f"  articles : {b['shared_files']:.3f} -> {s['shared_files']:.3f} "
          f"({gain_articles:+.1%})")
    print(f"  bandwidth: {b['shared_bandwidth']:.3f} -> {s['shared_bandwidth']:.3f} "
          f"({gain_bandwidth:+.1%})")


if __name__ == "__main__":
    main()
