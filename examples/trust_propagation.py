#!/usr/bin/env python
"""Reputation propagation: EigenTrust vs max-flow trust under collusion.

The paper assumes "a mechanism to safely propagate reputation values" and
its related-work section contrasts EigenTrust (efficient, but colluders
can boost each other) with max-flow trust (collusion-proof).  This script
builds a network of honest peers plus a colluding clique, propagates trust
both ways, and shows the difference.

    python examples/trust_propagation.py
"""

import numpy as np

from repro.trust import (
    LocalTrustMatrix,
    eigentrust,
    max_flow_trust,
)

N_HONEST = 12
N_COLLUDERS = 4
N = N_HONEST + N_COLLUDERS


def build_interactions(seed: int = 3) -> LocalTrustMatrix:
    """Honest peers interact positively; colluders fake massive mutual
    satisfaction and occasionally trick one honest peer."""
    rng = np.random.default_rng(seed)
    lt = LocalTrustMatrix(N)
    # Honest mesh: repeated satisfactory exchanges.
    for _ in range(600):
        i, j = rng.choice(N_HONEST, size=2, replace=False)
        lt.record(np.array([i]), np.array([j]), np.array([rng.random() < 0.9]))
    # Collusion: the clique reports huge satisfaction about itself.
    colluders = np.arange(N_HONEST, N)
    for _ in range(2000):
        i, j = rng.choice(colluders, size=2, replace=False)
        lt.record(np.array([i]), np.array([j]), np.array([True]))
    # Entry point: one honest peer had a couple of okay-looking downloads.
    lt.record(np.array([0, 0]), np.array([N_HONEST, N_HONEST]), np.array([True, True]))
    return lt


def main() -> None:
    lt = build_interactions()
    c = lt.matrix()

    print(f"network: {N_HONEST} honest peers, {N_COLLUDERS} colluders "
          f"(peers {N_HONEST}..{N - 1})\n")

    # --- EigenTrust --------------------------------------------------
    result = eigentrust(c, alpha=0.05)
    honest_trust = result.trust[:N_HONEST].mean()
    clique_trust = result.trust[N_HONEST:].mean()
    print("EigenTrust (damping alpha = 0.05):")
    print(f"  converged in {result.iterations} iterations")
    print(f"  mean trust, honest peer : {honest_trust:.4f}")
    print(f"  mean trust, colluder    : {clique_trust:.4f}")
    ratio = clique_trust / honest_trust
    print(f"  -> colluders hold {ratio:.1f}x the trust of an honest peer —"
          "\n     the clique's self-ratings leak through the entry point.\n")

    # --- Pre-trusted damping helps ------------------------------------
    pretrusted = np.zeros(N)
    pretrusted[:3] = 1 / 3  # founders
    damped = eigentrust(c, pretrusted=pretrusted, alpha=0.4)
    print("EigenTrust with pre-trusted founders (alpha = 0.4):")
    print(f"  mean trust, honest peer : {damped.trust[:N_HONEST].mean():.4f}")
    print(f"  mean trust, colluder    : {damped.trust[N_HONEST:].mean():.4f}\n")

    # --- Max-flow trust ----------------------------------------------
    print("Max-flow trust from honest peer 1:")
    cap = lt.scores()
    np.maximum(cap, 0.0, out=cap)
    flow_honest = np.mean(
        [max_flow_trust(cap, 1, t) for t in range(2, N_HONEST)]
    )
    flow_clique = np.mean(
        [max_flow_trust(cap, 1, t) for t in range(N_HONEST, N)]
    )
    print(f"  mean flow to honest peers: {flow_honest:.2f}")
    print(f"  mean flow to colluders   : {flow_clique:.2f}")
    print("  -> the clique's inflated internal edges cannot raise the flow an"
          "\n     honest source can push to them: max-flow trust is bounded by"
          "\n     the honest cut, exactly the robustness Feldman et al. prove.")


if __name__ == "__main__":
    main()
