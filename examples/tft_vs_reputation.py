#!/usr/bin/env python
"""Why tit-for-tat fails in collaboration networks (the paper's motivation).

Part 1 plays the classic Axelrod tournament: in a file-sharing world with
*direct*, repeated relations, TFT is excellent — exactly why BitTorrent
uses it.

Part 2 measures *relation directness* in the collaboration workload: how
often does the peer you serve ever serve you back?  With 100 peers picking
random download sources, direct reciprocal relations are rare and most of
the interaction mass is one-shot — TFT has nothing to react to.

Part 3 quantifies the information gap: a private (TFT-style) history
observes only a sliver of the pairwise relations the shared-history
reputation system covers.

    python examples/tft_vs_reputation.py
"""

import numpy as np

from repro.gametheory import (
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    TitForTat,
    TitForTwoTats,
    prisoners_dilemma,
    round_robin,
)
from repro.network.bandwidth import sample_download_requests
from repro.sim import base_config
from repro.sim.engine import CollaborationSimulation
from repro.trust.history import PrivateHistory


def part1_axelrod() -> None:
    print("== Part 1: direct relations — TFT's home turf ==")
    field = [
        TitForTat(),
        AlwaysCooperate(),
        AlwaysDefect(),
        GrimTrigger(),
        Pavlov(),
        TitForTwoTats(),
    ]
    result = round_robin(field, prisoners_dilemma(), rounds=200)
    for rank, (name, score) in enumerate(result.ranking(), 1):
        print(f"  {rank}. {name:18s} mean payoff {score:.2f}")
    print("  -> reciprocal strategies dominate when relations repeat.\n")


def part2_directness() -> None:
    print("== Part 2: relation directness in the collaboration workload ==")
    # Paper-literal download intensity: each peer downloads with
    # probability 1/N_S per step, i.e. interactions are *sparse* — the
    # regime the paper's "non-direct relations" argument lives in.
    rng = np.random.default_rng(0)
    n = 100
    sharing = np.ones(n, dtype=bool)
    served: dict[tuple[int, int], int] = {}
    steps = 400
    for _ in range(steps):
        req = sample_download_requests(rng, sharing, download_probability=None)
        for d, s in zip(req.downloader_ids, req.source_ids):
            served[(int(s), int(d))] = served.get((int(s), int(d)), 0) + 1
    reciprocal = sum(1 for (a, b) in served if (b, a) in served)
    repeat = sum(1 for v in served.values() if v > 1)
    print(f"  {steps} steps, {sum(served.values())} downloads, "
          f"{len(served)} distinct (source -> downloader) pairs")
    print(f"  pairs that ever reciprocated : {reciprocal / len(served):.1%}")
    print(f"  pairs with repeat interaction: {repeat / len(served):.1%}")
    print("  -> almost no pair ever reciprocates, and editing/voting exchange"
          "\n     *different* resources entirely — TFT cannot price a vote"
          "\n     against an upload.\n")


def part3_information_gap() -> None:
    print("== Part 3: private vs shared history coverage ==")
    config = base_config(fast=True, collect_events=False, seed=1).with_(
        training_steps=300, eval_steps=200, download_probability=0.0
    )
    # download_probability=0 inside the engine: we sample the paper-literal
    # sparse request process (P = 1/N_S) ourselves below.
    sim = CollaborationSimulation(config)
    private = PrivateHistory(config.n_agents)
    for _ in range(250):
        sim.step(1.0)
        req = sample_download_requests(
            sim.rng, sim.peers.sharing_mask(), download_probability=None
        )
        if req.n:
            satisfactory = sim.peers.offered_bandwidth[req.source_ids] > 0
            private.record(req.downloader_ids, req.source_ids, satisfactory)
    print(f"  private-history coverage of ordered peer pairs: "
          f"{private.coverage():.1%}")
    print("  a shared-history reputation covers 100% by construction")
    print("  -> the scheme's shared reputation lets a peer price a stranger's"
          "\n     request; a TFT peer would have to treat it as a first contact.")


def main() -> None:
    part1_axelrod()
    part2_directness()
    part3_information_gap()


if __name__ == "__main__":
    main()
