#!/usr/bin/env python
"""Designing the reputation function (the paper's future-work question).

"The reputation function has a great influence on how much resources are
shared.  Thus, future work will investigate new and existing reputation
functions in order to maximize sharing."  This script explores that
question *analytically* with the mean-field sharing game — no simulation,
instant answers:

1. the utility landscape a rational peer faces under the default logistic,
2. the best-response sharing level per function family and steepness,
3. why the logistic's early saturation caps the scheme's effectiveness
   (the paper's own explanation of the modest Figure-3 gains).

    python examples/reputation_design.py
"""

from repro.core.params import ReputationParams
from repro.core.reputation import (
    LinearReputation,
    LogisticReputation,
    PowerReputation,
    StepReputation,
)
from repro.gametheory.sharing_game import MeanFieldSharingGame, SharingLevel


def show_landscape() -> None:
    print("== Utility landscape under the default logistic ==")
    game = MeanFieldSharingGame(incentives_enabled=True)
    pop = SharingLevel(0.5, 0.5)
    print(f"(population fixed at 50% articles / 50% bandwidth)\n")
    print("          articles=0   articles=0.5   articles=1")
    for b in (0.0, 0.5, 1.0):
        row = [
            game.expected_utility(SharingLevel(a, b), pop)
            for a in (0.0, 0.5, 1.0)
        ]
        print(f"  bw={b:3.1f}   " + "   ".join(f"{u:+9.4f}" for u in row))
    br = game.best_response(pop)
    print(f"\n  best response: articles={br.articles:.1f}, "
          f"bandwidth={br.bandwidth:.1f}\n")


def compare_families() -> None:
    print("== Equilibrium sharing per reputation-function family ==")
    families = {
        "logistic beta=0.1": LogisticReputation(ReputationParams(beta=0.1)),
        "logistic beta=0.2": LogisticReputation(ReputationParams(beta=0.2)),
        "logistic beta=0.3": LogisticReputation(ReputationParams(beta=0.3)),
        "linear (c_full=40)": LinearReputation(c_full=40.0),
        "power  (exp=0.5)": PowerReputation(c_full=40.0, exponent=0.5),
        "step   (4 levels)": StepReputation(c_full=40.0, n_steps=4),
    }
    print(f"  {'family':22s} {'eq articles':>11s} {'eq bandwidth':>12s} "
          f"{'eq utility':>10s}")
    for name, fn in families.items():
        game = MeanFieldSharingGame(reputation_fn=fn, incentives_enabled=True)
        eq = game.symmetric_equilibrium()
        print(f"  {name:22s} {eq.level.articles:11.1f} "
              f"{eq.level.bandwidth:12.1f} {eq.utility:10.4f}")
    print()


def show_saturation() -> None:
    print("== The saturation problem (paper section V-A) ==")
    fn = LogisticReputation()
    game = MeanFieldSharingGame(reputation_fn=fn)
    half = game.steady_reputation(SharingLevel(0.5, 0.5))
    full = game.steady_reputation(SharingLevel(1.0, 1.0))
    print(f"  steady reputation at half sharing: {half:.3f}")
    print(f"  steady reputation at full sharing: {full:.3f}")
    print(f"  -> doubling the contribution buys only "
          f"{(full - half):.3f} extra reputation;")
    print("     'after [the inflection] point the agents have to spend much"
          "\n     more resources than they can get back' — the paper's own"
          "\n     explanation for the modest +8-11% effect.")


def main() -> None:
    show_landscape()
    compare_families()
    show_saturation()


if __name__ == "__main__":
    main()
