#!/usr/bin/env python
"""Experiment store walkthrough: cached, resumable scenario sweeps.

Runs a tiny scheme-shootout grid into a temporary run store, then runs it
again to show that every config is served from cache, and finally renders
the aggregate report — the same machinery behind ``repro run`` /
``repro report``, driven as a library.
"""

import tempfile

from repro.analysis.report import aggregate_stored_runs, render_stored_table
from repro.sim._sweep import run_sweep
from repro.store import RunStore, expand_scenario, short_hash

#: Tiny horizon so the walkthrough stays sub-second.
TINY = dict(n_agents=20, n_articles=5, training_steps=40, eval_steps=30)


def main() -> None:
    configs = expand_scenario(
        "schemes/shootout",
        fast=True,
        n_seeds=1,
        schemes=("none", "reputation"),
        overrides=TINY,
    )
    print(f"schemes/shootout expands to {len(configs)} configs, e.g.:")
    for cfg in configs[:2]:
        print(f"  {short_hash(cfg)}  {cfg.describe()}")

    with tempfile.TemporaryDirectory() as root:
        store = RunStore(root)
        run_sweep(configs, backend="serial", store=store)
        print(f"\nfirst sweep:  {store.stats}")

        # Same grid, fresh store handle: everything is a cache hit, no
        # simulation executes.  An interrupted sweep resumes the same way,
        # executing only the configs whose results never hit the disk.
        store = RunStore(root)
        run_sweep(configs, backend="serial", store=store)
        print(f"second sweep: {store.stats}")

        metrics = ("shared_files", "shared_bandwidth")
        rows = aggregate_stored_runs(store.records(), metrics)
        print("\n" + render_stored_table(rows, metrics))


if __name__ == "__main__":
    main()
