#!/usr/bin/env python
"""A decentralised wiki under attack: quality protection in action.

Scenario: a P2P encyclopedia with a healthy constructive majority and a
vandal minority.  The script runs the full incentive scheme (edit gate,
weighted voting, punishments) with event logging and reports how the
scheme protects article quality:

* what fraction of constructive vs destructive edits were accepted,
* how many vandals lost their voting rights,
* how article quality evolved,
* who ended up with which reputation.

    python examples/collaboration_wiki.py
"""

import numpy as np

from repro.agents.population import PopulationMix
from repro.network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL, TYPE_NAMES
from repro.sim import base_config
from repro.sim.engine import CollaborationSimulation


def main() -> None:
    config = base_config(
        fast=True,
        mix=PopulationMix(rational=0.4, altruistic=0.4, irrational=0.2),
        collect_events=True,
        edit_attempt_prob=0.15,
        seed=7,
    )
    print("decentralised wiki:", config.mix.describe())
    sim = CollaborationSimulation(config)
    result = sim.run()
    s = result.summary

    print("\n-- edit outcomes (evaluation window) --")
    for code in (RATIONAL, ALTRUISTIC, IRRATIONAL):
        name = TYPE_NAMES[code]
        good = s[f"edits_constructive_{name}"]
        bad = s[f"edits_destructive_{name}"]
        rate = s[f"edit_accept_rate_{name}"]
        print(f"  {name:10s}: {good:4.0f} constructive / {bad:4.0f} destructive "
              f"proposals, accept rate {rate:.2f}" if good + bad else
              f"  {name:10s}: no edit proposals (blocked by the theta gate)")
    print(f"  constructive edits accepted: {s['accepted_constructive_rate']:.2f}")
    print(f"  destructive edits accepted : {s['accepted_destructive_rate']:.2f}")

    print("\n-- punishment (evaluation phase only) --")
    # Training-phase punishments hit randomly exploring rational agents and
    # are part of the learning signal; the interesting picture is the
    # converged evaluation phase.
    eval_start = config.training_steps
    bans = [
        p
        for p in result.events.punishments
        if p.kind == "vote_ban" and p.step >= eval_start
    ]
    resets = [
        p
        for p in result.events.punishments
        if p.kind == "reputation_reset" and p.step >= eval_start
    ]
    ban_types = np.array([sim.peers.types[p.peer_id] for p in bans], dtype=int)
    print(f"  vote bans          : {len(bans)} "
          f"({(ban_types == IRRATIONAL).sum()} hit vandals)")
    print(f"  reputation resets  : {len(resets)}")

    print("\n-- article quality --")
    qualities = np.array([a.quality for a in sim.articles.articles])
    print(f"  total quality change: {qualities.sum():+.0f} over "
          f"{len(sim.articles)} articles")
    print(f"  improved articles   : {(qualities > 0).sum()}")
    print(f"  damaged articles    : {(qualities < 0).sum()}")

    print("\n-- final reputations --")
    rep_s = sim.scheme.reputation_s()
    rep_e = sim.scheme.reputation_e()
    for code in (RATIONAL, ALTRUISTIC, IRRATIONAL):
        mask = sim.peers.types == code
        print(f"  {TYPE_NAMES[code]:10s}: R_S = {rep_s[mask].mean():.3f}, "
              f"R_E = {rep_e[mask].mean():.3f}")

    print("\nThe constructive camp keeps its grip on the voter pools, vandals"
          "\nlose voting rights and their edits stay locked out — the quality"
          "\nmechanism of section III-C working end to end.")


if __name__ == "__main__":
    main()
