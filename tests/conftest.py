"""Shared fixtures."""

import math

import numpy as np
import pytest


def assert_summaries_equal(a: dict, b: dict) -> None:
    """Dict equality where NaN == NaN (summaries contain NaN for absent
    behaviour types)."""
    assert a.keys() == b.keys()
    for k in a:
        va, vb = a[k], b[k]
        if isinstance(va, float) and math.isnan(va):
            assert math.isnan(vb), f"{k}: {va} != {vb}"
        else:
            assert va == vb, f"{k}: {va} != {vb}"


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    def make(seed: int = 12345) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
