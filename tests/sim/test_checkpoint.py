"""Tests for simulation checkpointing."""

import numpy as np
import pytest

from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.config import SimulationConfig
from repro.sim.engine import CollaborationSimulation


def make_sim(seed=9, n_agents=20):
    cfg = SimulationConfig(
        n_agents=n_agents,
        n_articles=5,
        training_steps=60,
        eval_steps=30,
        seed=seed,
    )
    return CollaborationSimulation(cfg)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        sim = make_sim()
        for _ in range(50):
            sim.step(float("inf"))
        path = save_checkpoint(sim, tmp_path / "ck.npz")

        fresh = make_sim()
        assert not np.array_equal(fresh.sharing_learner.q, sim.sharing_learner.q)
        load_checkpoint(fresh, path)
        assert np.array_equal(fresh.sharing_learner.q, sim.sharing_learner.q)
        assert np.array_equal(fresh.edit_learner.q, sim.edit_learner.q)
        assert np.array_equal(fresh.scheme.ledger.sharing, sim.scheme.ledger.sharing)
        assert fresh.step_count == sim.step_count

    def test_restored_sim_continues(self, tmp_path):
        sim = make_sim()
        for _ in range(30):
            sim.step(float("inf"))
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        fresh = make_sim()
        load_checkpoint(fresh, path)
        fresh.step(1.0)  # must not raise
        assert fresh.step_count == sim.step_count + 1

    def test_population_mismatch_rejected(self, tmp_path):
        sim = make_sim(n_agents=20)
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        other = make_sim(n_agents=24)
        with pytest.raises(ValueError, match="population mismatch"):
            load_checkpoint(other, path)

    def test_type_layout_mismatch_rejected(self, tmp_path):
        sim = make_sim(seed=9)
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        from repro.agents.population import PopulationMix

        other = CollaborationSimulation(
            SimulationConfig(
                n_agents=20,
                n_articles=5,
                training_steps=10,
                eval_steps=10,
                mix=PopulationMix(0.5, 0.25, 0.25),
                seed=9,
            )
        )
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_creates_parent_dirs(self, tmp_path):
        sim = make_sim()
        path = save_checkpoint(sim, tmp_path / "deep" / "nest" / "ck.npz")
        assert path.exists()


def make_tft_sim(seed=9, n_agents=20, steps=50, **scale_kw):
    from repro.sim.config import ScaleConfig

    cfg = SimulationConfig(
        n_agents=n_agents,
        n_articles=5,
        training_steps=60,
        eval_steps=30,
        scheme="tft",
        seed=seed,
        scale=ScaleConfig(**scale_kw),
    )
    sim = CollaborationSimulation(cfg)
    for _ in range(steps):
        sim.step(float("inf"))
    return sim


class TestTftLedgerCheckpoint:
    """v2 checkpoints carry the tit-for-tat history across storage modes."""

    def test_dense_roundtrip_restores_history(self, tmp_path):
        sim = make_tft_sim()
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        fresh = make_tft_sim(steps=0)
        assert not np.array_equal(fresh.scheme.given, sim.scheme.given)
        load_checkpoint(fresh, path)
        assert np.array_equal(fresh.scheme.given, sim.scheme.given)
        assert np.array_equal(fresh.scheme._totals, sim.scheme._totals)
        assert np.array_equal(fresh.scheme.reputation_s(), sim.scheme.reputation_s())

    def test_sparse_roundtrip_restores_ledger(self, tmp_path):
        sim = make_tft_sim(sparse=True, ledger_cap=19)
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        fresh = make_tft_sim(steps=0, sparse=True, ledger_cap=19)
        load_checkpoint(fresh, path)
        led, want = fresh.scheme._ledger, sim.scheme._ledger
        assert np.array_equal(led.partners, want.partners)
        assert np.array_equal(led.amounts, want.amounts)
        assert np.array_equal(led.counts, want.counts)
        assert np.array_equal(fresh.scheme.reputation_s(), sim.scheme.reputation_s())

    def test_dense_checkpoint_migrates_into_sparse_sim(self, tmp_path):
        sim = make_tft_sim()
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        fresh = make_tft_sim(steps=0, sparse=True, ledger_cap=19)
        load_checkpoint(fresh, path)
        assert np.array_equal(fresh.scheme.given, sim.scheme.given)
        assert np.array_equal(fresh.scheme.reputation_s(), sim.scheme.reputation_s())
        fresh.step(1.0)  # migrated ledger keeps serving the engine

    def test_dense_checkpoint_too_wide_for_cap_is_a_clear_error(self, tmp_path):
        sim = make_tft_sim()
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        fresh = make_tft_sim(steps=0, sparse=True, ledger_cap=2)
        with pytest.raises(ValueError, match="ledger_cap"):
            load_checkpoint(fresh, path)

    def test_sparse_checkpoint_expands_into_dense_sim(self, tmp_path):
        sim = make_tft_sim(sparse=True, ledger_cap=19)
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        fresh = make_tft_sim(steps=0)
        load_checkpoint(fresh, path)
        assert np.array_equal(fresh.scheme.given, sim.scheme.given)
        assert np.array_equal(fresh.scheme._totals, sim.scheme._totals)

    def test_foreign_scheme_checkpoint_rejected_for_tft_sim(self, tmp_path):
        karma = CollaborationSimulation(
            SimulationConfig(
                n_agents=20, n_articles=5, training_steps=60, eval_steps=30,
                scheme="karma", seed=9,
            )
        )
        path = save_checkpoint(karma, tmp_path / "ck.npz")
        fresh = make_tft_sim(steps=0)
        with pytest.raises(ValueError, match="tit-for-tat"):
            load_checkpoint(fresh, path)

    def test_v1_checkpoint_still_loads(self, tmp_path):
        """Legacy files (no tft payload) restore learned state as before."""
        sim = make_tft_sim()
        path = tmp_path / "v1.npz"
        np.savez_compressed(
            path,
            version=np.int64(1),
            n_agents=np.int64(sim.config.n_agents),
            n_rational=np.int64(sim.rational_idx.size),
            step_count=np.int64(sim.step_count),
            sharing_q=sim.sharing_learner.q,
            edit_q=sim.edit_learner.q,
            ledger_c_s=sim.scheme.ledger.sharing.copy(),
            ledger_c_e=sim.scheme.ledger.editing.copy(),
            types=sim.peers.types,
        )
        fresh = make_tft_sim(steps=0)
        load_checkpoint(fresh, path)
        assert np.array_equal(fresh.sharing_learner.q, sim.sharing_learner.q)
        assert np.all(fresh.scheme.given == 0.0)  # v1 never carried history
