"""Tests for simulation checkpointing."""

import numpy as np
import pytest

from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.config import SimulationConfig
from repro.sim.engine import CollaborationSimulation


def make_sim(seed=9, n_agents=20):
    cfg = SimulationConfig(
        n_agents=n_agents,
        n_articles=5,
        training_steps=60,
        eval_steps=30,
        seed=seed,
    )
    return CollaborationSimulation(cfg)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        sim = make_sim()
        for _ in range(50):
            sim.step(float("inf"))
        path = save_checkpoint(sim, tmp_path / "ck.npz")

        fresh = make_sim()
        assert not np.array_equal(fresh.sharing_learner.q, sim.sharing_learner.q)
        load_checkpoint(fresh, path)
        assert np.array_equal(fresh.sharing_learner.q, sim.sharing_learner.q)
        assert np.array_equal(fresh.edit_learner.q, sim.edit_learner.q)
        assert np.array_equal(fresh.scheme.ledger.sharing, sim.scheme.ledger.sharing)
        assert fresh.step_count == sim.step_count

    def test_restored_sim_continues(self, tmp_path):
        sim = make_sim()
        for _ in range(30):
            sim.step(float("inf"))
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        fresh = make_sim()
        load_checkpoint(fresh, path)
        fresh.step(1.0)  # must not raise
        assert fresh.step_count == sim.step_count + 1

    def test_population_mismatch_rejected(self, tmp_path):
        sim = make_sim(n_agents=20)
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        other = make_sim(n_agents=24)
        with pytest.raises(ValueError, match="population mismatch"):
            load_checkpoint(other, path)

    def test_type_layout_mismatch_rejected(self, tmp_path):
        sim = make_sim(seed=9)
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        from repro.agents.population import PopulationMix

        other = CollaborationSimulation(
            SimulationConfig(
                n_agents=20,
                n_articles=5,
                training_steps=10,
                eval_steps=10,
                mix=PopulationMix(0.5, 0.25, 0.25),
                seed=9,
            )
        )
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_creates_parent_dirs(self, tmp_path):
        sim = make_sim()
        path = save_checkpoint(sim, tmp_path / "deep" / "nest" / "ck.npz")
        assert path.exists()
