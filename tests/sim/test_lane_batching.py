"""Lane planner coverage: partitioning, fallbacks, dedupe and the store.

The planner (:func:`repro.sim._sweep.plan_lane_batches`) decides how a
sweep grid maps onto heterogeneous-lane batches; these tests pin its
contract — structural splits, sequential fallbacks for event collectors,
one execution per duplicate config — and prove the store round-trip:
lane-batched results hash, persist and dedupe exactly like sequential
runs of the same grid.
"""

import numpy as np
import pytest

from repro.sim.config import SimulationConfig
from repro.sim.lanes import (
    assert_lane_compatible,
    lane_values,
    slot_values,
    structural_key,
    take,
)
from repro.sim._sweep import plan_lane_batches, replicate, run_sweep
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore


def tiny(seed=7, **overrides):
    params = dict(n_agents=12, n_articles=4, training_steps=15, eval_steps=10,
                  founders_per_article=2)
    params.update(overrides)
    return SimulationConfig(seed=seed, **params)


def plan(configs):
    return plan_lane_batches([(c, [i]) for i, c in enumerate(configs)])


def same_summary(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    for k in a:
        va, vb = a[k], b[k]
        if isinstance(va, float) and isinstance(vb, float) and np.isnan(va):
            if np.isnan(vb):
                continue
        if va != vb:
            return False
    return True


class TestStructuralKeys:
    def test_lane_varying_fields_share_a_key(self):
        assert structural_key(tiny(seed=1)) == structural_key(
            tiny(seed=2, t_eval=0.5, download_probability=0.4,
                 learning_rate=0.3, leave_rate=0.1, join_rate=0.5)
        )

    @pytest.mark.parametrize(
        "change",
        [dict(n_agents=16), dict(n_articles=6), dict(training_steps=20),
         dict(scheme="karma"), dict(overlay_kind="random"),
         dict(enforce_edit_threshold=False), dict(n_states=5)],
    )
    def test_structural_fields_split_keys(self, change):
        assert structural_key(tiny()) != structural_key(tiny(**change))

    def test_auto_scheme_matches_resolved_spelling(self):
        assert structural_key(tiny(scheme="auto")) == structural_key(
            tiny(scheme="reputation")
        )
        assert structural_key(
            tiny(scheme="auto", incentives_enabled=False)
        ) == structural_key(tiny(scheme="none"))

    def test_assert_compatible_names_offenders(self):
        with pytest.raises(ValueError, match="n_agents"):
            assert_lane_compatible([tiny(), tiny(n_agents=16)])
        with pytest.raises(ValueError, match="scheme"):
            assert_lane_compatible([tiny(), tiny(scheme="tft")])


class TestLaneHelpers:
    def test_uniform_values_collapse_to_scalars(self):
        configs = [tiny(seed=s) for s in (1, 2, 3)]
        assert lane_values(configs, "t_eval") == 1.0
        assert slot_values(configs, "edit_attempt_prob", 12) == 0.08

    def test_heterogeneous_values_expand(self):
        configs = [tiny(seed=1), tiny(seed=2, t_eval=0.5)]
        t = lane_values(configs, "t_eval")
        assert isinstance(t, np.ndarray) and t.tolist() == [1.0, 0.5]
        per_slot = slot_values(configs, "t_eval", 3)
        assert per_slot.tolist() == [1.0, 1.0, 1.0, 0.5, 0.5, 0.5]

    def test_take_passes_scalars_and_gathers_arrays(self):
        idx = np.array([0, 2])
        assert take(5.0, idx) == 5.0
        assert take(np.array([1.0, 2.0, 3.0]), idx).tolist() == [1.0, 3.0]


class TestPlanner:
    def test_compatible_grid_is_one_batch(self):
        configs = [tiny(seed=s, t_eval=t) for s in (1, 2) for t in (0.5, 1.0)]
        tasks = plan(configs)
        assert len(tasks) == 1
        assert len(tasks[0]) == 4

    def test_incompatible_structural_dims_split(self):
        configs = [tiny(seed=1), tiny(seed=2, n_agents=16),
                   tiny(seed=3), tiny(seed=4, scheme="karma")]
        tasks = plan(configs)
        assert [len(t) for t in tasks] == [2, 1, 1]
        # Order follows first appearance; lanes 0 and 2 merged.
        assert [idx for _, (idx,) in ((c, i) for c, i in tasks[0])] == [0, 2]

    def test_lane_width_chunks_oversized_batches(self):
        configs = [tiny(seed=s) for s in range(5)]
        tasks = plan_lane_batches(
            [(c, [i]) for i, c in enumerate(configs)], lane_width=2
        )
        assert [len(t) for t in tasks] == [2, 2, 1]
        # Chunking preserves input order across the chunks.
        flat = [idx for t in tasks for _, (idx,) in t]
        assert flat == [0, 1, 2, 3, 4]

    def test_lane_width_validated(self):
        with pytest.raises(ValueError, match="lane_width"):
            plan_lane_batches([(tiny(), [0])], lane_width=0)

    def test_lane_width_sweep_matches_unchunked(self):
        configs = [tiny(seed=s, t_eval=t) for s in (1, 2) for t in (0.5, 1.0)]
        chunked = run_sweep(
            configs, backend="serial", lane_batch=True, lane_width=2
        )
        plain = run_sweep(configs, backend="serial", lane_batch=True)
        for a, b in zip(chunked, plain):
            assert same_summary(a.summary, b.summary)

    def test_event_collectors_fall_back_to_solo_tasks(self):
        configs = [tiny(seed=1), tiny(seed=2, collect_events=True), tiny(seed=3)]
        tasks = plan(configs)
        assert [len(t) for t in tasks] == [2, 1]
        assert tasks[1][0][0].collect_events

    def test_event_collecting_sweep_still_yields_events(self):
        configs = [tiny(seed=s, collect_events=True) for s in (1, 2)]
        results = run_sweep(configs, backend="serial", lane_batch=True)
        assert all(r.events is not None for r in results)


class TestLaneSweeps:
    def test_lane_batched_sweep_matches_sequential_sweep(self):
        configs = [
            tiny(seed=1),
            tiny(seed=2, t_eval=0.5),
            tiny(seed=3, edit_attempt_prob=0.15),
            tiny(seed=4, n_agents=16),  # incompatible: second batch
        ]
        plain = run_sweep(configs, backend="serial")
        lane = run_sweep(configs, backend="serial", lane_batch=True)
        for a, b in zip(plain, lane):
            assert a.config == b.config
            assert same_summary(a.summary, b.summary)

    def test_lane_batch_subsumes_replicate_batching(self):
        configs = replicate(tiny(), 3) + [tiny(seed=99, t_eval=0.5)]
        assert len(plan(configs)) == 1
        lane = run_sweep(configs, backend="serial", lane_batch=True)
        plain = run_sweep(configs, backend="serial", batch_replicates=True)
        for a, b in zip(plain, lane):
            assert same_summary(a.summary, b.summary)

    def test_thread_backend_lane_batches(self):
        configs = [tiny(seed=1, t_eval=t) for t in (0.5, 1.0)] + [
            tiny(seed=2, n_agents=16)
        ]
        results = run_sweep(configs, backend="thread", lane_batch=True)
        assert [r.config for r in results] == configs


class TestStoreRoundTrip:
    def test_duplicates_execute_once(self, tmp_path):
        store = RunStore(tmp_path / "rs")
        dup = tiny(seed=5, t_eval=0.5)
        results = run_sweep(
            [dup, tiny(seed=6), dup], backend="serial", store=store,
            lane_batch=True,
        )
        assert store.misses == 2  # the duplicate slot never executed
        assert len(store) == 2
        assert same_summary(results[0].summary, results[2].summary)

    def test_lane_batched_results_dedupe_with_sequential(self, tmp_path):
        """Lane-batched and sequential spellings share cache entries."""
        store = RunStore(tmp_path / "rs")
        configs = [tiny(seed=1), tiny(seed=2, t_eval=0.5),
                   tiny(seed=3, download_probability=0.4)]
        lane = run_sweep(configs, backend="serial", store=store, lane_batch=True)
        assert store.misses == len(configs) and len(store) == len(configs)
        # A later unbatched sweep is served entirely from cache ...
        plain = run_sweep(configs, backend="serial", store=store)
        assert store.hits == len(configs)
        # ... and the payloads are the lane-batched results, bit for bit.
        for a, b in zip(lane, plain):
            assert config_hash(a.config) == config_hash(b.config)
            assert same_summary(a.summary, b.summary)

    def test_sequential_cache_serves_lane_batched_sweep(self, tmp_path):
        store = RunStore(tmp_path / "rs")
        configs = [tiny(seed=1), tiny(seed=2, t_eval=0.5)]
        run_sweep(configs, backend="serial", store=store)
        run_sweep(configs, backend="serial", store=store, lane_batch=True)
        assert store.hits == len(configs)
        assert len(store) == len(configs)

    def test_partial_cache_only_executes_missing_lanes(self, tmp_path):
        store = RunStore(tmp_path / "rs")
        configs = [tiny(seed=1), tiny(seed=2, t_eval=0.5), tiny(seed=3)]
        run_sweep([configs[1]], backend="serial", store=store)
        run_sweep(configs, backend="serial", store=store, lane_batch=True)
        assert store.hits == 1
        assert len(store) == 3
