"""Tests for the simulation configuration."""

import pickle

import pytest

from repro.agents.population import PopulationMix
from repro.sim.config import SimulationConfig


class TestSimulationConfig:
    def test_paper_defaults(self):
        cfg = SimulationConfig()
        assert cfg.n_agents == 100
        assert cfg.n_states == 10
        assert cfg.training_steps == 10_000
        assert cfg.t_train == float("inf")
        assert cfg.t_eval == 1.0
        assert cfg.incentives_enabled

    def test_with_(self):
        cfg = SimulationConfig()
        cfg2 = cfg.with_(seed=99, incentives_enabled=False)
        assert cfg2.seed == 99
        assert not cfg2.incentives_enabled
        assert cfg.seed == 0  # original untouched

    def test_total_steps(self):
        cfg = SimulationConfig(training_steps=100, eval_steps=50)
        assert cfg.total_steps == 150

    def test_picklable(self):
        cfg = SimulationConfig(mix=PopulationMix(0.5, 0.25, 0.25))
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone == cfg

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_agents": 1},
            {"n_states": 0},
            {"eval_steps": 0},
            {"training_steps": -1},
            {"t_eval": 0.0},
            {"download_probability": 1.5},
            {"edit_attempt_prob": -0.1},
            {"max_voters_per_edit": 0},
            {"measure_window": 0.0},
            {"measure_window": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    def test_describe(self):
        assert "incentive" in SimulationConfig().describe()
        assert "no-incentive" in SimulationConfig(incentives_enabled=False).describe()
