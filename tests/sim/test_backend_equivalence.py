"""Bit-identity of the ``compiled`` backend against the numpy reference.

The acceptance contract of the kernel-backend seam: stepping the same
config under ``engine.backend="numpy"`` and ``"compiled"`` must leave
**every** state array — slot arrays, ledgers, Q-tables, RNG streams —
bit for bit identical.  Without Numba the suite forces the compiled
backend into interpreted mode (``REPRO_COMPILED_PUREPY=1``) so the very
same loop bodies Numba would compile are still the code under test.

Coverage comes in two layers: curated configs that pin every incentive
scheme with churn and both adversaries active, and a property-based
layer drawing structured random configs from the shared generator in
:mod:`repro.sim.testing` (the one the hashing round-trip suite uses).
"""

import random

import numpy as np
import pytest

from repro.agents.population import PopulationMix
from repro.sim.backends import reset_backend_cache
from repro.sim.backends.compiled import numba_available
from repro.sim.config import SimulationConfig
from repro.sim.testing import (
    backend_equivalence_report,
    collect_arrays,
    compare_fingerprints,
    random_equivalence_config,
    state_fingerprint,
)

#: Mixed population so altruists, free-riders and learners all act.
MIX = PopulationMix(rational=0.5, altruistic=0.25, irrational=0.25)

BASE = dict(
    n_agents=18,
    n_articles=4,
    founders_per_article=2,
    training_steps=8,
    eval_steps=1,
    mix=MIX,
    leave_rate=0.05,
    join_rate=0.05,
    whitewash_rate=0.02,
    collusion_fraction=0.2,
    sybil_fraction=0.15,
    sybil_rate=0.1,
)


@pytest.fixture(autouse=True)
def _compiled_kernels_run(monkeypatch):
    """Guarantee 'compiled' resolves to the compiled kernel code paths."""
    if not numba_available():
        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
    reset_backend_cache()
    yield
    reset_backend_cache()


@pytest.mark.parametrize("scheme", ["reputation", "none", "tft", "karma"])
def test_scheme_bit_identical_under_churn_and_adversaries(scheme):
    cfg = SimulationConfig(scheme=scheme, **BASE)
    assert backend_equivalence_report(cfg, n_steps=8) == []


def test_sparse_ledger_with_tiny_chunks_bit_identical():
    # chunk_size=1 forces a chunk boundary between every ledger update,
    # the hardest case for the chunk-faithful ledger_add replay.
    cfg = SimulationConfig(scheme="tft", **BASE).with_(**{
        "scale.sparse": True,
        "scale.ledger_cap": 2,
        "scale.chunk_size": 1,
    })
    assert backend_equivalence_report(cfg, n_steps=8) == []


def test_greedy_and_infinite_temperature_paths():
    cfg = SimulationConfig(scheme="reputation", **BASE)
    assert backend_equivalence_report(cfg, n_steps=4, temperature=0.25) == []
    assert (
        backend_equivalence_report(cfg, n_steps=4, temperature=float("inf"))
        == []
    )


class TestPropertyBased:
    N_CONFIGS = 10
    N_STEPS = 5

    def test_random_configs_bit_identical(self):
        rng = random.Random(0xBEEF)
        for i in range(self.N_CONFIGS):
            cfg = random_equivalence_config(rng)
            diverged = backend_equivalence_report(cfg, n_steps=self.N_STEPS)
            assert diverged == [], (
                f"config #{i} ({cfg.describe()}) diverged at: {diverged}"
            )

    def test_generator_covers_all_schemes(self):
        rng = random.Random(0xBEEF)
        corpus = [random_equivalence_config(rng) for _ in range(50)]
        assert {c.scheme for c in corpus} >= {"reputation", "none", "tft", "karma"}
        assert any(c.scale.sparse for c in corpus)
        assert any(c.scale.chunk_size == 1 for c in corpus)


class TestFingerprint:
    """The diffing machinery itself must be able to see a divergence."""

    def _state(self):
        from repro.sim.state import build_sim_state

        cfg = SimulationConfig(scheme="tft", **BASE)
        return build_sim_state([cfg])

    def test_fingerprint_covers_rng_and_slot_arrays(self):
        fp = state_fingerprint(self._state())
        assert any(path.startswith("rng[") for path in fp)
        assert any("scheme" in path for path in fp)
        assert len(fp) > 20

    def test_detects_a_single_ulp_perturbation(self):
        state = self._state()
        # The fingerprint references the live arrays (no copies), so
        # snapshot it before perturbing the state.
        before = {k: v.copy() for k, v in state_fingerprint(state).items()}
        arrays = collect_arrays(state)
        path = next(
            p
            for p, a in arrays.items()
            if a.dtype.kind == "f" and a.size and "capacity" in p
        )
        arrays[path].flat[0] += 1e-9
        after = state_fingerprint(state)
        assert f"state.{path}" in compare_fingerprints(before, after)

    def test_identical_states_have_empty_diff(self):
        fp = state_fingerprint(self._state())
        assert compare_fingerprints(fp, dict(fp)) == []

    def test_collect_arrays_walks_nested_containers(self):
        class Box:
            def __init__(self):
                self.xs = [np.arange(3), {"deep": np.ones(2)}]
                self.skip_me = lambda: None

        got = collect_arrays(Box())
        assert {"xs[0]", "xs[1]['deep']"} <= set(got)
