"""Progress-callback statistics and sweep telemetry in ``run_sweep``."""

from repro.obs import tracing
from repro.sim.config import SimulationConfig
from repro.sim._sweep import SweepProgress, _adapt_progress, run_sweep
from repro.store._runstore import RunStore


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=20, n_articles=5, training_steps=40, eval_steps=30, seed=seed, **kw
    )


class TestSweepProgressStats:
    def test_stats_passed_to_new_style_callback(self):
        seen = []

        def progress(done, total, index, result, cached, stats):
            seen.append(stats)

        run_sweep([tiny(1), tiny(2)], backend="serial", progress=progress)
        assert [s.done for s in seen] == [1, 2]
        assert all(s.total == 2 for s in seen)
        assert all(s.cached == 0 for s in seen)
        assert [s.computed for s in seen] == [1, 2]
        assert all(s.elapsed_s > 0 for s in seen)
        assert isinstance(seen[0], SweepProgress)

    def test_eta_drops_to_zero_at_completion(self):
        etas = []

        def progress(done, total, index, result, cached, stats):
            etas.append(stats.eta_s)

        run_sweep([tiny(1), tiny(2)], backend="serial", progress=progress)
        assert etas[0] is not None and etas[0] > 0
        assert etas[-1] == 0.0

    def test_cached_vs_computed_split(self, tmp_path):
        store = RunStore(tmp_path)
        run_sweep([tiny(1)], backend="serial", store=store)
        seen = []

        def progress(done, total, index, result, cached, stats):
            seen.append((cached, stats.cached, stats.computed))

        run_sweep(
            [tiny(1), tiny(2)], backend="serial", store=store, progress=progress
        )
        assert seen[0] == (True, 1, 0)  # store hit
        assert seen[1] == (False, 1, 1)  # fresh simulation

    def test_all_cached_sweep_reports_no_eta_until_done(self, tmp_path):
        store = RunStore(tmp_path)
        run_sweep([tiny(1), tiny(2)], backend="serial", store=store)
        etas = []

        def progress(done, total, index, result, cached, stats):
            etas.append(stats.eta_s)

        run_sweep(
            [tiny(1), tiny(2)], backend="serial", store=store, progress=progress
        )
        assert etas == [None, 0.0]


class TestLegacyCallbacks:
    def test_five_argument_callback_still_works(self):
        seen = []

        def progress(done, total, index, result, cached):
            seen.append((done, total, cached))

        run_sweep([tiny(1), tiny(2)], backend="serial", progress=progress)
        assert seen == [(1, 2, False), (2, 2, False)]

    def test_adapter_passes_new_style_through(self):
        def new_style(done, total, index, result, cached, stats):
            pass

        assert _adapt_progress(new_style) is new_style

    def test_adapter_passes_var_positional_through(self):
        def splat(*args):
            pass

        assert _adapt_progress(splat) is splat

    def test_adapter_wraps_legacy(self):
        def legacy(done, total, index, result, cached):
            pass

        assert _adapt_progress(legacy) is not legacy

    def test_adapter_none(self):
        assert _adapt_progress(None) is None


class TestSweepTelemetry:
    def test_slot_counters_and_task_spans(self, tmp_path):
        store = RunStore(tmp_path)
        run_sweep([tiny(1)], backend="serial", store=store)
        with tracing() as tracer:
            run_sweep([tiny(1), tiny(2)], backend="serial", store=store)
        snap = tracer.metrics.snapshot()
        slots = {
            entry["labels"]["outcome"]: entry["value"]
            for entry in snap["sweep_slots_total"]
        }
        assert slots == {"cached": 1.0, "computed": 1.0}
        task = tracer.spans()["sweep/task"]
        assert task.count == 1
        assert task.attrs["backend"] == "serial"
        (hist,) = snap["sweep_task_seconds"]
        assert hist["count"] == 1
        assert hist["sum"] > 0

    def test_untraced_sweep_records_nothing(self):
        from repro.obs import get_tracer

        run_sweep([tiny(3)], backend="serial")
        assert "sweep/task" not in get_tracer().spans()

    def test_pool_sweep_records_worker_gauge(self):
        with tracing() as tracer:
            run_sweep(
                [tiny(1), tiny(2), tiny(3)], backend="thread", workers=2
            )
        snap = tracer.metrics.snapshot()
        assert snap["sweep_workers"] == [{"type": "gauge", "value": 2.0}]
        assert tracer.spans()["sweep/task"].count == 3
        (wait,) = snap["sweep_queue_wait_seconds"]
        assert wait["count"] == 3
