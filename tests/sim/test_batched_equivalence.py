"""Seed-for-seed equivalence: batched replicates == sequential runs.

The contract of the replicate-axis engine is exact: replicate ``r`` of
``run_replicates(config, R)`` must reproduce ``run_simulation`` with the
same derived seed **bit for bit** — same summary, same training summary,
same whitewash count — across every incentive scheme, overlay kind and
churn setting.  These tests enforce the contract on small but
protocol-complete configurations (training phase, reputation reset,
evaluation phase, editing/voting, punishment all exercised).

The lane generalization extends the contract to **mixed-config batches**
(:class:`TestLaneBatches`): every lane of a heterogeneous
``BatchedSimulation`` must reproduce its own sequential run bit for bit,
whatever differs between the lanes — temperatures, scheme constants,
population mixes, churn/adversary knobs, per-scheme parameters.
"""

import math

import pytest

from repro.agents.population import PopulationMix
from repro.core.params import (
    PaperConstants,
    ReputationParams,
    ServiceParams,
    UtilityParams,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import BatchedSimulation, run_replicates, run_simulation
from repro.sim.rng import spawn_seeds

#: Mixed population so altruists, free-riders and learners all act.
MIX = PopulationMix(rational=0.5, altruistic=0.25, irrational=0.25)

BASE = dict(
    n_agents=24,
    n_articles=6,
    training_steps=40,
    eval_steps=30,
    founders_per_article=3,
    mix=MIX,
)


def tiny(seed, **overrides):
    params = dict(BASE)
    params.update(overrides)
    return SimulationConfig(seed=seed, **params)


def _same(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def assert_bit_identical(config, n_replicates=3):
    batched = run_replicates(config, n_replicates)
    seeds = spawn_seeds(config.seed, n_replicates)
    assert [r.config.seed for r in batched] == seeds
    for r, seed in enumerate(seeds):
        sequential = run_simulation(config.with_(seed=seed))
        for section, got, want in (
            ("summary", batched[r].summary, sequential.summary),
            ("training", batched[r].training_summary, sequential.training_summary),
        ):
            assert set(got) == set(want), f"replicate {r}: {section} keys differ"
            for key in want:
                assert _same(got[key], want[key]), (
                    f"replicate {r}: {section}[{key!r}] "
                    f"batched={got[key]!r} sequential={want[key]!r}"
                )
        for extra in ("whitewash_count", "sybil_count"):
            assert batched[r].extras[extra] == sequential.extras[extra]


class TestSchemes:
    @pytest.mark.parametrize("scheme", ["reputation", "none", "tft", "karma"])
    def test_scheme_equivalence(self, scheme):
        assert_bit_identical(tiny(seed=101, scheme=scheme))


class TestOverlays:
    @pytest.mark.parametrize("kind", ["random", "smallworld", "scalefree"])
    def test_overlay_equivalence(self, kind):
        assert_bit_identical(tiny(seed=202, overlay_kind=kind, overlay_degree=4))


class TestChurn:
    @pytest.mark.parametrize("scheme", ["reputation", "karma"])
    def test_churn_equivalence(self, scheme):
        assert_bit_identical(
            tiny(
                seed=303,
                scheme=scheme,
                leave_rate=0.03,
                join_rate=0.25,
                whitewash_rate=0.02,
            )
        )

    def test_churn_off_equivalence(self):
        assert_bit_identical(tiny(seed=304))


class TestAdversaries:
    """The contract extends to the collusion and sybil kernels."""

    @pytest.mark.parametrize("scheme", ["reputation", "tft"])
    def test_collusion_equivalence(self, scheme):
        assert_bit_identical(
            tiny(seed=901, scheme=scheme, collusion_fraction=0.25,
                 collusion_ring_size=3)
        )

    @pytest.mark.parametrize("scheme", ["reputation", "karma"])
    def test_sybil_equivalence(self, scheme):
        assert_bit_identical(
            tiny(seed=902, scheme=scheme, sybil_fraction=0.25, sybil_rate=0.1)
        )

    def test_combined_adversaries_with_churn(self):
        assert_bit_identical(
            tiny(
                seed=903,
                collusion_fraction=0.25,
                collusion_ring_size=3,
                sybil_fraction=0.2,
                sybil_rate=0.05,
                leave_rate=0.02,
                join_rate=0.2,
                whitewash_rate=0.01,
                overlay_kind="random",
                overlay_degree=4,
                capacity_sigma=0.5,
            )
        )


def assert_lanes_bit_identical(configs):
    """Each lane of one heterogeneous batch == its own sequential run."""
    batched = BatchedSimulation(configs).run()
    for i, config in enumerate(configs):
        sequential = run_simulation(config)
        for section, got, want in (
            ("summary", batched[i].summary, sequential.summary),
            ("training", batched[i].training_summary, sequential.training_summary),
        ):
            assert set(got) == set(want), f"lane {i}: {section} keys differ"
            for key in want:
                assert _same(got[key], want[key]), (
                    f"lane {i}: {section}[{key!r}] "
                    f"batched={got[key]!r} sequential={want[key]!r}"
                )
        for extra in ("whitewash_count", "sybil_count"):
            assert batched[i].extras[extra] == sequential.extras[extra]


class TestLaneBatches:
    """Mixed-config lanes: the bit-identity contract across the sweep axis."""

    @pytest.mark.parametrize("scheme", ["reputation", "none", "tft", "karma"])
    def test_workload_axes(self, scheme):
        """Temperatures, request/edit intensities and voter bounds differ."""
        assert_lanes_bit_identical(
            [
                tiny(seed=10, scheme=scheme),
                tiny(seed=11, scheme=scheme, t_eval=0.5, t_train=3.0),
                tiny(seed=12, scheme=scheme, download_probability=0.4,
                     edit_attempt_prob=0.15),
                tiny(seed=13, scheme=scheme, max_voters_per_edit=4,
                     min_voters_per_edit=2),
            ]
        )

    def test_mixed_constants(self):
        """Each lane books reputation with its own PaperConstants."""
        assert_lanes_bit_identical(
            [
                tiny(seed=20),
                tiny(seed=21, constants=PaperConstants(
                    utility=UtilityParams(alpha=2.0, delta=10.0))),
                tiny(seed=22, constants=PaperConstants(
                    reputation_e=ReputationParams(beta=0.4, r_min=0.1),
                    service=ServiceParams(majority_max=0.9,
                                          vote_punish_threshold=3))),
            ]
        )

    def test_mixed_population_mixes(self):
        """Ragged rational counts across lanes (all-rational to none)."""
        assert_lanes_bit_identical(
            [
                tiny(seed=30, mix=PopulationMix(1.0, 0.0, 0.0)),
                tiny(seed=31),
                tiny(seed=32, mix=PopulationMix(0.0, 0.5, 0.5)),
            ]
        )

    def test_mixed_churn_and_adversaries(self):
        """Churn, collusion and sybil kernels active in some lanes only."""
        assert_lanes_bit_identical(
            [
                tiny(seed=40),
                tiny(seed=41, leave_rate=0.03, join_rate=0.25,
                     whitewash_rate=0.02),
                tiny(seed=42, collusion_fraction=0.25, collusion_ring_size=3),
                tiny(seed=43, sybil_fraction=0.25, sybil_rate=0.1),
            ]
        )

    def test_mixed_scheme_knobs_karma(self):
        assert_lanes_bit_identical(
            [
                tiny(seed=50, scheme="karma"),
                tiny(seed=51, scheme="karma", karma_initial=3.0,
                     karma_floor=0.2),
            ]
        )

    def test_mixed_scheme_knobs_tft(self):
        assert_lanes_bit_identical(
            [
                tiny(seed=60, scheme="tft"),
                tiny(seed=61, scheme="tft", tft_optimistic_floor=0.2,
                     tft_history_decay=0.9),
            ]
        )

    def test_mixed_learning_and_capacity(self):
        assert_lanes_bit_identical(
            [
                tiny(seed=70, learning_rate=0.3, discount=0.8),
                tiny(seed=71, capacity_sigma=0.6),
                tiny(seed=72, measure_window=0.8),
            ]
        )

    def test_auto_scheme_batches_with_explicit(self):
        """"auto" and its concrete spelling share a structural key."""
        assert_lanes_bit_identical(
            [tiny(seed=80, scheme="auto"), tiny(seed=81, scheme="reputation")]
        )

    def test_inf_and_finite_eval_temperatures(self):
        """One lane stays at T=inf during evaluation (integer fast path)."""
        assert_lanes_bit_identical(
            [tiny(seed=90), tiny(seed=91, t_eval=float("inf"))]
        )


class TestOtherAxes:
    def test_heterogeneous_capacity(self):
        assert_bit_identical(tiny(seed=404, capacity_sigma=0.6))

    def test_all_rational(self):
        assert_bit_identical(
            tiny(seed=505, mix=PopulationMix(1.0, 0.0, 0.0))
        )

    def test_no_rational(self):
        assert_bit_identical(
            tiny(seed=606, mix=PopulationMix(0.0, 0.5, 0.5)), n_replicates=2
        )

    def test_strict_edit_gate_off(self):
        assert_bit_identical(tiny(seed=707, enforce_edit_threshold=False))

    def test_thinned_downloads(self):
        assert_bit_identical(tiny(seed=808, download_probability=0.3))
