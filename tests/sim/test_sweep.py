"""Tests for the parallel sweep runner."""

import numpy as np
import pytest

from repro.sim.config import SimulationConfig
from repro.sim._sweep import available_workers, replicate, run_sweep


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=20, n_articles=5, training_steps=40, eval_steps=30, seed=seed, **kw
    )


class TestRunSweep:
    def test_empty(self):
        assert run_sweep([]) == []

    def test_serial(self):
        results = run_sweep([tiny(1), tiny(2)], backend="serial")
        assert len(results) == 2
        assert results[0].config.seed == 1

    def test_results_align_with_inputs(self):
        configs = [tiny(s) for s in (5, 6, 7)]
        results = run_sweep(configs, backend="serial")
        assert [r.config.seed for r in results] == [5, 6, 7]

    def test_thread_backend_matches_serial(self):
        from tests.conftest import assert_summaries_equal

        configs = [tiny(1), tiny(2)]
        serial = run_sweep(configs, backend="serial")
        threaded = run_sweep(configs, backend="thread", workers=2)
        for a, b in zip(serial, threaded):
            assert_summaries_equal(a.summary, b.summary)

    def test_process_backend_matches_serial(self):
        from tests.conftest import assert_summaries_equal

        configs = [tiny(1), tiny(2)]
        serial = run_sweep(configs, backend="serial")
        procs = run_sweep(configs, backend="process", workers=2)
        for a, b in zip(serial, procs):
            assert_summaries_equal(a.summary, b.summary)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            run_sweep([tiny(), tiny()], backend="gpu")

    def test_single_config_short_circuits(self):
        results = run_sweep([tiny()], backend="process")
        assert len(results) == 1


class TestReplicate:
    def test_replicate_spawns_distinct_seeds(self):
        configs = replicate(tiny(3), 4)
        seeds = [c.seed for c in configs]
        assert len(set(seeds)) == 4

    def test_replicate_deterministic(self):
        a = [c.seed for c in replicate(tiny(3), 3)]
        b = [c.seed for c in replicate(tiny(3), 3)]
        assert a == b

    def test_replicate_keeps_other_fields(self):
        cfg = tiny(3, incentives_enabled=False)
        for c in replicate(cfg, 2):
            assert not c.incentives_enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(tiny(), 0)


def test_available_workers_positive():
    assert available_workers() >= 1
