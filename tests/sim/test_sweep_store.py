"""Tests for store-backed (cached, resumable) sweeps and failure wrapping."""

import pytest

from tests.conftest import assert_summaries_equal

import repro.sim._sweep as sweep_mod
from repro.sim.config import SimulationConfig
from repro.sim._sweep import (
    SweepWorkerError,
    get_default_store,
    run_sweep,
    set_default_store,
)
from repro.store.hashing import config_hash
from repro.store._runstore import RunStore


def tiny(seed=0, **kw):
    return SimulationConfig(
        n_agents=20, n_articles=5, training_steps=40, eval_steps=30, seed=seed, **kw
    )


def counting_worker(monkeypatch):
    """Instrument the sweep worker with an execution counter."""
    calls = []
    original = sweep_mod._worker

    def counted(config):
        calls.append(config)
        return original(config)

    monkeypatch.setattr(sweep_mod, "_worker", counted)
    return calls


class TestCachedSweep:
    def test_second_sweep_executes_nothing(self, tmp_path, monkeypatch):
        configs = [tiny(1), tiny(2), tiny(3)]
        store = RunStore(tmp_path)
        first = run_sweep(configs, backend="serial", store=store)

        calls = counting_worker(monkeypatch)
        second = run_sweep(configs, backend="serial", store=RunStore(tmp_path))
        assert calls == []  # zero simulations the second time
        for a, b in zip(first, second):
            assert_summaries_equal(a.summary, b.summary)
            assert a.config == b.config

    def test_interrupted_sweep_resumes_missing_only(self, tmp_path, monkeypatch):
        configs = [tiny(s) for s in (1, 2, 3, 4)]
        # "Killed midway": only the first two runs reached the store.
        store = RunStore(tmp_path)
        run_sweep(configs[:2], backend="serial", store=store)

        calls = counting_worker(monkeypatch)
        results = run_sweep(configs, backend="serial", store=RunStore(tmp_path))
        assert [c.seed for c in calls] == [3, 4]  # only the missing configs
        assert [r.config.seed for r in results] == [1, 2, 3, 4]

    def test_cached_matches_fresh(self, tmp_path):
        configs = [tiny(1), tiny(2)]
        run_sweep(configs, backend="serial", store=RunStore(tmp_path))
        cached = run_sweep(configs, backend="serial", store=RunStore(tmp_path))
        fresh = run_sweep(configs, backend="serial")
        for a, b in zip(cached, fresh):
            assert_summaries_equal(a.summary, b.summary)

    def test_duplicate_configs_execute_once(self, tmp_path, monkeypatch):
        calls = counting_worker(monkeypatch)
        results = run_sweep(
            [tiny(1), tiny(1), tiny(1)], backend="serial", store=RunStore(tmp_path)
        )
        assert len(calls) == 1
        assert len(results) == 3
        assert_summaries_equal(results[0].summary, results[2].summary)
        # Duplicate slots own distinct objects: mutating one cannot
        # corrupt its siblings.
        assert results[0] is not results[1]
        assert results[1] is not results[2]

    def test_duplicate_cache_accounting_per_slot(self, tmp_path):
        # Cold store, 3 duplicate slots, 1 execution: the executed slot
        # is the single miss, the duplicate slots count as hits (served
        # from the store after the put) — never more misses than slots.
        store = RunStore(tmp_path)
        run_sweep([tiny(1), tiny(1), tiny(1)], backend="serial", store=store)
        assert store.stats == {"stored": 1, "hits": 2, "misses": 1}

    def test_no_store_duplicates_execute_independently(self, monkeypatch):
        calls = counting_worker(monkeypatch)
        results = run_sweep([tiny(1), tiny(1)], backend="serial")
        assert len(calls) == 2  # no store identity -> no dedupe
        assert results[0] is not results[1]

    def test_collect_events_bypasses_cache(self, tmp_path, monkeypatch):
        cfg = tiny(1, collect_events=True)
        store = RunStore(tmp_path)
        first = run_sweep([cfg], backend="serial", store=store)
        assert first[0].events is not None
        assert not store.contains(cfg)  # event runs are never persisted

        calls = counting_worker(monkeypatch)
        second = run_sweep([cfg], backend="serial", store=RunStore(tmp_path))
        assert len(calls) == 1  # re-executed, not served summary-only
        assert second[0].events is not None

    def test_thread_backend_with_store(self, tmp_path):
        configs = [tiny(1), tiny(2)]
        store = RunStore(tmp_path)
        run_sweep(configs, backend="thread", workers=2, store=store)
        assert store.stats["stored"] == 2
        again = run_sweep(configs, backend="thread", workers=2, store=store)
        assert store.hits == 2
        serial = run_sweep(configs, backend="serial")
        for a, b in zip(again, serial):
            assert_summaries_equal(a.summary, b.summary)

    def test_process_backend_with_store(self, tmp_path):
        configs = [tiny(1), tiny(2)]
        store = RunStore(tmp_path)
        results = run_sweep(configs, backend="process", workers=2, store=store)
        assert store.stats["stored"] == 2
        serial = run_sweep(configs, backend="serial")
        for a, b in zip(results, serial):
            assert_summaries_equal(a.summary, b.summary)


class TestProgressCallback:
    def test_progress_reports_every_slot(self, tmp_path):
        events = []
        run_sweep(
            [tiny(1), tiny(2)],
            backend="serial",
            store=RunStore(tmp_path),
            progress=lambda done, total, i, r, cached: events.append(
                (done, total, i, cached)
            ),
        )
        assert [(e[0], e[1]) for e in events] == [(1, 2), (2, 2)]
        assert all(not e[3] for e in events)  # first pass: nothing cached

        events.clear()
        run_sweep(
            [tiny(1), tiny(2)],
            backend="serial",
            store=RunStore(tmp_path),
            progress=lambda done, total, i, r, cached: events.append(
                (done, total, i, cached)
            ),
        )
        assert all(e[3] for e in events)  # second pass: all cached

    def test_progress_without_store(self):
        events = []
        run_sweep(
            [tiny(1)],
            backend="serial",
            progress=lambda *args: events.append(args),
        )
        assert len(events) == 1


class TestDefaultStore:
    def test_ambient_store_used(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        previous = set_default_store(store)
        try:
            assert get_default_store() is store
            run_sweep([tiny(1)], backend="serial")
            assert store.stats["stored"] == 1

            calls = counting_worker(monkeypatch)
            run_sweep([tiny(1)], backend="serial")
            assert calls == []
        finally:
            set_default_store(previous)

    def test_explicit_store_wins_over_ambient(self, tmp_path):
        ambient = RunStore(tmp_path / "ambient")
        explicit = RunStore(tmp_path / "explicit")
        previous = set_default_store(ambient)
        try:
            run_sweep([tiny(1)], backend="serial", store=explicit)
        finally:
            set_default_store(previous)
        assert explicit.stats["stored"] == 1
        assert ambient.stats["stored"] == 0


class TestWorkerFailure:
    def test_serial_failure_names_config(self, monkeypatch):
        boom = tiny(2)

        def failing(config):
            if config.seed == 2:
                raise RuntimeError("numerical doom")
            return sweep_mod.run_simulation(config)

        monkeypatch.setattr(sweep_mod, "_worker", failing)
        with pytest.raises(SweepWorkerError) as err:
            run_sweep([tiny(1), boom, tiny(3)], backend="serial")
        assert err.value.index == 1
        assert err.value.config == boom
        assert err.value.config_hash == config_hash(boom)
        assert err.value.config_hash[:12] in str(err.value)
        assert "numerical doom" in str(err.value)
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_thread_failure_names_config(self, monkeypatch):
        def failing(config):
            if config.seed == 3:
                raise ValueError("bad grid point")
            return sweep_mod.run_simulation(config)

        monkeypatch.setattr(sweep_mod, "_worker", failing)
        with pytest.raises(SweepWorkerError) as err:
            run_sweep([tiny(1), tiny(2), tiny(3)], backend="thread", workers=2)
        assert err.value.index == 2
        assert isinstance(err.value.__cause__, ValueError)

    def test_pooled_successes_drain_before_failure_raises(
        self, tmp_path, monkeypatch
    ):
        import time

        store = RunStore(tmp_path)

        def failing(config):
            if config.seed == 2:
                time.sleep(0.5)  # successes finish (and persist) first
                raise RuntimeError("doom")
            return sweep_mod.run_simulation(config)

        monkeypatch.setattr(sweep_mod, "_worker", failing)
        with pytest.raises(SweepWorkerError) as err:
            run_sweep(
                [tiny(1), tiny(2), tiny(3)],
                backend="thread",
                workers=3,
                store=store,
            )
        assert err.value.index == 1
        # The sibling runs that completed were persisted despite the
        # failure — a retry sweep only re-executes the failing config.
        reopened = RunStore(tmp_path)
        assert reopened.contains(tiny(1))
        assert reopened.contains(tiny(3))

    def test_completed_results_persist_before_failure(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)

        def failing(config):
            if config.seed == 2:
                raise RuntimeError("doom")
            return sweep_mod.run_simulation(config)

        monkeypatch.setattr(sweep_mod, "_worker", failing)
        with pytest.raises(SweepWorkerError):
            run_sweep([tiny(1), tiny(2)], backend="serial", store=store)
        # The run that finished before the failure is durable: a retry
        # sweep only needs the failing config.
        assert RunStore(tmp_path).contains(tiny(1))
