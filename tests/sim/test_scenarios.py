"""Tests for the canned experiment scenarios."""

from repro.sim.scenarios import (
    FAST_EVAL_STEPS,
    FAST_TRAINING_STEPS,
    base_config,
    fig3_configs,
    fig6_configs,
    mixture_configs,
)


class TestBaseConfig:
    def test_paper_scale_by_default(self):
        cfg = base_config()
        assert cfg.training_steps == 10_000

    def test_fast_mode(self):
        cfg = base_config(fast=True)
        assert cfg.training_steps == FAST_TRAINING_STEPS
        assert cfg.eval_steps == FAST_EVAL_STEPS

    def test_overrides(self):
        cfg = base_config(fast=True, seed=9, incentives_enabled=False)
        assert cfg.seed == 9
        assert not cfg.incentives_enabled


class TestFig3Configs:
    def test_pairs(self):
        with_inc, without = fig3_configs([1, 2], fast=True)
        assert len(with_inc) == len(without) == 2
        assert all(c.incentives_enabled for c in with_inc)
        assert all(not c.incentives_enabled for c in without)
        assert all(c.mix.rational == 1.0 for c in with_inc)


class TestMixtureConfigs:
    def test_paper_percentages(self):
        grid = mixture_configs("altruistic", [1], fast=True)
        pcts = [p for p, _ in grid]
        assert pcts == list(range(10, 100, 10))

    def test_mix_follows_rule(self):
        grid = mixture_configs("irrational", [1], fast=True, percentages=[40])
        _, configs = grid[0]
        mix = configs[0].mix
        assert mix.irrational == 0.4
        assert mix.rational == 0.3
        assert mix.altruistic == 0.3

    def test_editing_gate_disabled_for_figures(self):
        grid = mixture_configs("irrational", [1], fast=True, percentages=[40])
        assert not grid[0][1][0].enforce_edit_threshold

    def test_strict_variant(self):
        grid = mixture_configs(
            "irrational", [1], fast=True, percentages=[40], strict_editing=True
        )
        assert grid[0][1][0].enforce_edit_threshold


class TestFig6Configs:
    def test_remainder_split_equally(self):
        grid = fig6_configs([1], fast=True, percentages=[20])
        mix = grid[0][1][0].mix
        assert mix.rational == 0.2
        assert mix.altruistic == mix.irrational == 0.4

    def test_includes_100_percent(self):
        grid = fig6_configs([1], fast=True)
        assert grid[-1][0] == 100
        assert grid[-1][1][0].mix.rational == 1.0
