"""Tests for the metrics collector."""

import numpy as np
import pytest

from repro.network.peer import ALTRUISTIC, IRRATIONAL, RATIONAL
from repro.sim.metrics import MetricsCollector, StepStats


def make_stats(n=4, files=0.5, bw=0.25, proposals=None, accepted=None):
    return StepStats(
        offered_files=np.full(n, files),
        offered_bandwidth=np.full(n, bw),
        reputation_s=np.full(n, 0.3),
        reputation_e=np.full(n, 0.2),
        sharing_utility=np.full(n, 1.0),
        editing_utility=np.zeros(n),
        proposals=proposals if proposals is not None else np.zeros((3, 2)),
        accepted=accepted if accepted is not None else np.zeros((3, 2)),
        votes_cast=10,
        votes_successful=7,
        vote_bans=1,
        reputation_resets=0,
    )


@pytest.fixture
def types():
    return np.array([RATIONAL, RATIONAL, ALTRUISTIC, IRRATIONAL], dtype=np.int8)


class TestRecord:
    def test_record_and_summary(self, types):
        mc = MetricsCollector(5, types)
        for _ in range(5):
            mc.record(make_stats())
        s = mc.summary(0, 5)
        assert s["shared_files"] == pytest.approx(0.5)
        assert s["shared_bandwidth"] == pytest.approx(0.25)
        assert s["vote_success_rate"] == pytest.approx(0.7)
        assert s["vote_bans"] == 5.0

    def test_overflow_guarded(self, types):
        mc = MetricsCollector(1, types)
        mc.record(make_stats())
        with pytest.raises(RuntimeError):
            mc.record(make_stats())

    def test_per_type_series(self, types):
        mc = MetricsCollector(2, types)
        stats = make_stats()
        stats.offered_files[:] = [1.0, 1.0, 0.0, 0.0]
        mc.record(stats)
        mc.record(stats)
        s = mc.summary(0, 2)
        assert s["shared_files_rational"] == pytest.approx(1.0)
        assert s["shared_files_altruistic"] == pytest.approx(0.0)

    def test_missing_type_is_nan(self):
        types = np.array([RATIONAL, RATIONAL], dtype=np.int8)
        mc = MetricsCollector(1, types)
        mc.record(make_stats(n=2))
        s = mc.summary(0, 1)
        assert np.isnan(s["shared_files_altruistic"])


class TestEditMetrics:
    def test_constructive_fraction(self, types):
        mc = MetricsCollector(1, types)
        proposals = np.zeros((3, 2))
        proposals[RATIONAL, 1] = 3  # constructive
        proposals[RATIONAL, 0] = 1  # destructive
        accepted = np.zeros((3, 2))
        accepted[RATIONAL, 1] = 2
        mc.record(make_stats(proposals=proposals, accepted=accepted))
        s = mc.summary(0, 1)
        assert s["edit_constructive_fraction_rational"] == pytest.approx(0.75)
        assert s["edit_accept_rate_rational"] == pytest.approx(0.5)
        assert s["accepted_constructive_rate"] == pytest.approx(2 / 3)

    def test_no_edits_is_nan(self, types):
        mc = MetricsCollector(1, types)
        mc.record(make_stats())
        s = mc.summary(0, 1)
        assert np.isnan(s["edit_constructive_fraction_rational"])


class TestReplicateAxis:
    def make_stacked(self, n_steps=3):
        types = np.array(
            [
                [RATIONAL, RATIONAL, ALTRUISTIC, IRRATIONAL],
                [ALTRUISTIC, RATIONAL, IRRATIONAL, RATIONAL],
            ],
            dtype=np.int8,
        )
        return MetricsCollector(n_steps, types)

    def stacked_stats(self):
        files = np.array([[1.0, 1.0, 0.0, 0.0], [0.5, 0.5, 0.5, 0.5]])
        return StepStats(
            offered_files=files,
            offered_bandwidth=files * 0.5,
            reputation_s=np.full((2, 4), 0.3),
            reputation_e=np.full((2, 4), 0.2),
            sharing_utility=np.ones((2, 4)),
            editing_utility=np.zeros((2, 4)),
            proposals=np.zeros((2, 3, 2)),
            accepted=np.zeros((2, 3, 2)),
            votes_cast=np.array([10.0, 4.0]),
            votes_successful=np.array([7.0, 4.0]),
            vote_bans=np.array([1.0, 0.0]),
            reputation_resets=np.zeros(2),
        )

    def test_two_replicates_summarized_independently(self):
        mc = self.make_stacked()
        assert mc.n_replicates == 2
        for _ in range(3):
            mc.record(self.stacked_stats())
        s0 = mc.summary(0, 3, replicate=0)
        s1 = mc.summary(0, 3, replicate=1)
        assert s0["shared_files"] == pytest.approx(0.5)
        assert s1["shared_files"] == pytest.approx(0.5)
        assert s0["shared_files_rational"] == pytest.approx(1.0)
        assert s1["shared_files_rational"] == pytest.approx(0.5)
        assert s0["vote_success_rate"] == pytest.approx(0.7)
        assert s1["vote_success_rate"] == pytest.approx(1.0)
        both = mc.summaries(0, 3)
        assert len(both) == 2
        assert both[0]["shared_files_rational"] == s0["shared_files_rational"]
        assert both[1]["shared_files_rational"] == s1["shared_files_rational"]

    def test_stacked_requires_replicate_argument(self):
        mc = self.make_stacked()
        mc.record(self.stacked_stats())
        with pytest.raises(ValueError, match="replicate"):
            mc.summary(0, 1)
        with pytest.raises(ValueError):
            mc.summary(0, 1, replicate=2)

    def test_flat_inputs_accepted(self):
        mc = self.make_stacked()
        stats = self.stacked_stats()
        stats.offered_files = stats.offered_files.reshape(-1)
        stats.offered_bandwidth = stats.offered_bandwidth.reshape(-1)
        mc.record(stats)
        assert mc.summary(0, 1, replicate=0)["shared_files"] == pytest.approx(0.5)

    def test_series_gains_replicate_axis(self):
        mc = self.make_stacked()
        mc.record(self.stacked_stats())
        assert mc.series("files_all").shape == (2, 1)
        assert mc.series("proposals").shape == (2, 1, 3, 2)

    def test_single_run_attributes_stay_one_dimensional(self):
        types = np.array([RATIONAL, ALTRUISTIC], dtype=np.int8)
        mc = MetricsCollector(2, types)
        assert mc.files_all.shape == (2,)
        assert mc.proposals.shape == (2, 3, 2)
        mc.record(make_stats(n=2))
        assert mc.summary(0, 1)["shared_files"] == pytest.approx(0.5)


class TestWindows:
    def test_bad_window_rejected(self, types):
        mc = MetricsCollector(3, types)
        mc.record(make_stats())
        with pytest.raises(ValueError):
            mc.summary(0, 2)  # only 1 step recorded
        with pytest.raises(ValueError):
            mc.summary(1, 1)

    def test_window_selects_steps(self, types):
        mc = MetricsCollector(4, types)
        mc.record(make_stats(files=0.0))
        mc.record(make_stats(files=0.0))
        mc.record(make_stats(files=1.0))
        mc.record(make_stats(files=1.0))
        assert mc.summary(0, 2)["shared_files"] == 0.0
        assert mc.summary(2, 4)["shared_files"] == 1.0

    def test_series_accessor(self, types):
        mc = MetricsCollector(3, types)
        mc.record(make_stats())
        assert mc.series("files_all").shape == (1,)
        with pytest.raises(KeyError):
            mc.series("does_not_exist")
