"""Unit tests for the adversary kernels: collusion rings and sybils.

Covers ring assignment, the serve-only-ring bandwidth mask, vote
rigging, the action override (including the Q-learning pairing), and
the full identity reset every incentive scheme must implement for the
sybil/whitewash kernel.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.agents.population import PopulationMix
from repro.sim.backends import default_kernels
from repro.core.baselines import KarmaScheme, PrivateHistoryScheme
from repro.core.incentives import NoIncentiveScheme, ReputationIncentiveScheme
from repro.sim.config import SimulationConfig
from repro.sim.engine import CollaborationSimulation, run_simulation
from repro.sim.phases.adversary import collusion_shares, collusion_votes
from repro.sim.state import assign_collusion_rings, build_sim_state

MIX = PopulationMix(rational=0.5, altruistic=0.25, irrational=0.25)

TINY = dict(
    n_agents=24,
    n_articles=6,
    training_steps=25,
    eval_steps=20,
    founders_per_article=3,
    mix=MIX,
)


def tiny(seed=0, **overrides):
    params = dict(TINY)
    params.update(overrides)
    return SimulationConfig(seed=seed, **params)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("collusion_fraction", -0.1),
            ("collusion_fraction", 1.5),
            ("collusion_ring_size", 1),
            ("sybil_fraction", -0.1),
            ("sybil_rate", 2.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            SimulationConfig(**{field: value})


class TestRingAssignment:
    def test_fraction_and_membership(self):
        rng = np.random.default_rng(0)
        rings = assign_collusion_rings(rng, 100, 0.25, 5)
        members = rings >= 0
        assert members.sum() == 25
        # Five full rings of five.
        ids, counts = np.unique(rings[members], return_counts=True)
        assert list(counts) == [5] * 5
        assert set(ids) == set(range(5))

    def test_lone_remainder_merged(self):
        rng = np.random.default_rng(1)
        rings = assign_collusion_rings(rng, 100, 0.09, 4)  # 9 = 4 + 4 + 1
        _, counts = np.unique(rings[rings >= 0], return_counts=True)
        assert sorted(counts) == [4, 5]

    def test_small_remainder_kept_as_ring(self):
        rng = np.random.default_rng(2)
        rings = assign_collusion_rings(rng, 100, 0.10, 4)  # 10 = 4 + 4 + 2
        _, counts = np.unique(rings[rings >= 0], return_counts=True)
        assert sorted(counts) == [2, 4, 4]

    def test_below_two_colluders_no_rings_no_draws(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        rings = assign_collusion_rings(rng, 100, 0.01, 4)  # rounds to 1
        assert (rings == -1).all()
        assert rng.bit_generator.state == before  # stream untouched

    def test_offset_applied(self):
        rng = np.random.default_rng(4)
        rings = assign_collusion_rings(rng, 20, 0.5, 5, offset=40)
        assert set(rings[rings >= 0]) == {40, 41}


def _ring_stub(rings, n_slots):
    """A minimal stand-in for SimState as the share/vote helpers see it."""
    return SimpleNamespace(
        collusion_rings=np.asarray(rings, dtype=np.int64),
        peers=SimpleNamespace(n=n_slots),
        backend=default_kernels(),
    )


class TestCollusionShares:
    def test_outsiders_blocked_ring_renormalized(self):
        # Peers 0,1 in ring 0; peer 2 outside.  Source 0 receives one
        # request from its ring-mate and one from the outsider.
        state = _ring_stub([0, 0, -1], 3)
        src = np.array([0, 0])
        dl = np.array([1, 2])
        shares = np.array([0.3, 0.7])
        out = collusion_shares(state, src, dl, shares)
        assert out[0] == pytest.approx(1.0)  # ring-mate takes everything
        assert out[1] == 0.0

    def test_fully_blocked_source_serves_nobody(self):
        state = _ring_stub([0, 0, -1], 3)
        out = collusion_shares(
            state, np.array([0, 0]), np.array([2, 2]), np.array([0.5, 0.5])
        )
        assert (out == 0.0).all()

    def test_non_colluding_sources_untouched(self):
        state = _ring_stub([-1, -1, 0, 0], 4)
        shares = np.array([0.25, 0.75])
        out = collusion_shares(
            state, np.array([0, 0]), np.array([1, 2]), shares.copy()
        )
        np.testing.assert_array_equal(out, shares)

    def test_cross_ring_blocked(self):
        # Two different rings never serve each other.
        state = _ring_stub([0, 1], 2)
        out = collusion_shares(
            state, np.array([0]), np.array([1]), np.array([1.0])
        )
        assert out[0] == 0.0

    def test_non_colluders_bit_identical_in_mixed_batches(self):
        # A non-colluding source's rows survive untouched even when other
        # sources in the same request batch get renormalized.
        state = _ring_stub([0, 0, -1, -1], 4)
        src = np.array([0, 0, 3, 3, 3])
        dl = np.array([1, 2, 0, 1, 2])
        shares = np.array([0.4, 0.6, 1 / 3, 1 / 3, 1 / 3])
        out = collusion_shares(state, src, dl, shares.copy())
        assert out[2] == shares[2] and out[3] == shares[3] and out[4] == shares[4]
        assert out[0] == pytest.approx(1.0) and out[1] == 0.0

    def test_zero_reputation_ring_mates_split_equally(self):
        # Ring-mates with zero original share still receive the ring's
        # bandwidth (equal split); the blocked outsider stays at zero.
        state = _ring_stub([0, 0, 0, -1], 4)
        src = np.array([0, 0, 0])
        dl = np.array([1, 2, 3])
        shares = np.array([0.0, 0.0, 1.0])  # outsider held all the rep
        out = collusion_shares(state, src, dl, shares)
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == 0.0


class TestCollusionVotes:
    def test_ring_line_overrides_content(self):
        # Voters: 0 (ring 0), 1 (ring 1), 2 (outsider); proposer 3 is in
        # ring 0.  Honest votes all say False.
        state = _ring_stub([0, 1, -1, 0], 4)
        votes = collusion_votes(
            state,
            flat_voters=np.array([0, 1, 2]),
            proposer_of_vote=np.array([3, 3, 3]),
            votes_for=np.array([False, False, False]),
        )
        assert list(votes) == [True, False, False]

    def test_colluders_badmouth_outsiders(self):
        state = _ring_stub([0, -1], 2)
        votes = collusion_votes(
            state,
            flat_voters=np.array([0]),
            proposer_of_vote=np.array([1]),  # outsider proposer
            votes_for=np.array([True]),  # honest vote would agree
        )
        assert list(votes) == [False]


class TestCollusionInEngine:
    def test_actions_forced_all_in(self):
        sim = CollaborationSimulation(tiny(collusion_fraction=0.5))
        state = sim.state
        assert state.colluder_mask.sum() >= 2
        sim.step(temperature=float("inf"))
        active = state.colluder_mask & state.peers.online
        assert (state.peers.offered_bandwidth[active] == 1.0).all()
        assert (state.peers.offered_files[active] == 1.0).all()
        # The forced action index is what the learner trained on.
        assert (
            state.ctx.share_actions[active] == state.sharing_space.max_action
        ).all()
        assert (
            state.ctx.edit_actions[active] == state.edit_space.constructive_action
        ).all()

    def test_ring_ids_offset_per_replicate(self):
        cfg = tiny(collusion_fraction=0.25)
        state = build_sim_state([cfg, cfg.with_(seed=1)])
        rings2d = state.rows(state.collusion_rings)
        r0 = set(rings2d[0][rings2d[0] >= 0])
        r1 = set(rings2d[1][rings2d[1] >= 0])
        assert r0 and r1 and not (r0 & r1)

    def test_collusion_off_state_unchanged(self):
        state = build_sim_state([tiny()])
        assert not state.colluder_mask.any()
        assert (state.collusion_rings == -1).all()


class TestSchemeIdentityResets:
    N = 6

    def test_reputation_scheme_full_wipe(self):
        scheme = ReputationIncentiveScheme(self.N)
        scheme.record_sharing(np.ones(self.N), np.ones(self.N))
        scheme.vote_punishment.banned[:] = True
        scheme.edit_punishment.declined_edits[:] = 2
        scheme.reset_identities(np.array([1, 3]))
        assert scheme.ledger.sharing[1] == 0.0 and scheme.ledger.sharing[3] == 0.0
        assert scheme.ledger.sharing[0] > 0.0  # others untouched
        assert not scheme.vote_punishment.banned[[1, 3]].any()
        assert scheme.vote_punishment.banned[0]
        assert (scheme.edit_punishment.declined_edits[[1, 3]] == 0).all()
        assert scheme.edit_punishment.declined_edits[0] == 2

    def test_tft_forgets_both_directions(self):
        scheme = PrivateHistoryScheme(self.N)
        scheme._given[0, :, :] = 1.0
        scheme.reset_identities(np.array([2]))
        assert (scheme.given[2, :] == 0.0).all()  # what 2 gave
        assert (scheme.given[:, 2] == 0.0).all()  # what others remember of 2
        assert scheme.given[0, 1] == 1.0

    def test_tft_reset_respects_replicates(self):
        scheme = PrivateHistoryScheme(self.N, n_replicates=2)
        scheme._given[:, :, :] = 1.0
        scheme.reset_identities(np.array([self.N + 2]))  # replicate 1, local 2
        assert (scheme.given[1, 2, :] == 0.0).all()
        assert (scheme.given[1, :, 2] == 0.0).all()
        assert (scheme.given[0] == 1.0).all()  # replicate 0 untouched

    def test_karma_refunds_newcomer_grant(self):
        scheme = KarmaScheme(self.N, initial_karma=1.0)
        scheme.balance[:] = 5.0
        scheme.reset_identities(np.array([4]))
        assert scheme.balance[4] == 1.0
        assert scheme.balance[0] == 5.0

    def test_none_scheme_resets_ledger(self):
        scheme = NoIncentiveScheme(self.N)
        scheme.record_sharing(np.ones(self.N), np.ones(self.N))
        scheme.reset_identities(np.array([0]))
        assert scheme.ledger.sharing[0] == 0.0


class TestSybilInEngine:
    def test_certain_rate_resets_every_step(self):
        cfg = tiny(sybil_fraction=0.25, sybil_rate=1.0)
        sim = CollaborationSimulation(cfg)
        n_sybils = int(sim.state.sybil_mask.sum())
        assert n_sybils == 6
        steps = 5
        for _ in range(steps):
            sim.step(temperature=float("inf"))
        assert sim.sybil_count == n_sybils * steps

    def test_offline_sybil_rejoins(self):
        cfg = tiny(sybil_fraction=0.25, sybil_rate=1.0)
        sim = CollaborationSimulation(cfg)
        sybils = np.flatnonzero(sim.state.sybil_mask)
        sim.peers.online[sybils] = False
        sim.step(temperature=float("inf"))
        assert sim.peers.online[sybils].all()

    def test_sybil_keeps_reputation_at_floor(self):
        # With certain per-step resets, a sybil's sharing contribution can
        # never accumulate across steps, so its ledger stays at the level
        # one single step can produce, while honest altruists accrue.
        cfg = tiny(
            mix=PopulationMix(0.0, 1.0, 0.0),
            sybil_fraction=0.25,
            sybil_rate=1.0,
            training_steps=0,
            eval_steps=30,
        )
        sim = CollaborationSimulation(cfg)
        sybils = np.flatnonzero(sim.state.sybil_mask)
        honest = np.flatnonzero(~sim.state.sybil_mask)
        for _ in range(20):
            sim.step(temperature=1.0)
        ledger = sim.scheme.ledger.sharing
        assert ledger[honest].mean() > ledger[sybils].mean()

    def test_extras_present_without_sybils(self):
        result = run_simulation(tiny())
        assert result.extras["sybil_count"] == 0.0

    @pytest.mark.parametrize("scheme", ["reputation", "none", "tft", "karma"])
    def test_all_schemes_accept_resets(self, scheme):
        result = run_simulation(
            tiny(scheme=scheme, sybil_fraction=0.25, sybil_rate=0.2)
        )
        assert result.extras["sybil_count"] > 0
