"""Unit tests for the replicate-axis engine and its sweep/store routing."""

import numpy as np
import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import (
    BatchedSimulation,
    run_replicates,
    run_simulation,
)
from repro.sim.rng import spawn_seeds
from repro.sim.state import build_sim_state
from repro.sim._sweep import replicate, run_sweep
from repro.store._runstore import RunStore


def tiny(seed=7, **overrides):
    params = dict(n_agents=12, n_articles=4, training_steps=15, eval_steps=10,
                  founders_per_article=2)
    params.update(overrides)
    return SimulationConfig(seed=seed, **params)


def same_summary(a: dict, b: dict) -> bool:
    """Dict equality where NaN == NaN (short runs leave NaN rate metrics)."""
    if set(a) != set(b):
        return False
    for k in a:
        va, vb = a[k], b[k]
        if isinstance(va, float) and isinstance(vb, float):
            if np.isnan(va) and np.isnan(vb):
                continue
        if va != vb:
            return False
    return True


class TestBuildState:
    def test_single_config_matches_historical_shapes(self):
        state = build_sim_state([tiny()])
        assert state.n_replicates == 1
        assert state.peers.types.shape == (12,)
        assert state.peers.n == 12
        assert len(state.rngs) == len(state.articles) == 1

    def test_replicates_stack_flat(self):
        cfgs = replicate(tiny(), 3)
        state = build_sim_state(cfgs)
        assert state.n_replicates == 3
        assert state.peers.n == 36
        assert state.scheme.n_slots == 36
        assert state.metrics.n_replicates == 3
        assert len(state.rngs) == len(state.articles) == 3

    def test_rejects_structural_differences(self):
        with pytest.raises(ValueError, match="structural.*n_articles"):
            build_sim_state([tiny(seed=1), tiny(seed=2, n_articles=5)])

    def test_accepts_lane_varying_differences(self):
        state = build_sim_state(
            [tiny(seed=1), tiny(seed=2, t_eval=0.5, edit_attempt_prob=0.02)]
        )
        assert state.n_replicates == 2
        assert state.configs[1].t_eval == 0.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_sim_state([])


class TestBatchedSimulation:
    def test_run_returns_one_result_per_replicate(self):
        cfgs = replicate(tiny(), 3)
        results = BatchedSimulation(cfgs).run()
        assert len(results) == 3
        assert [r.config.seed for r in results] == [c.seed for c in cfgs]
        for r in results:
            assert 0.0 <= r.summary["shared_files"] <= 1.0
            assert r.training_summary  # training phase summarized too
            assert r.events is None

    def test_rejects_event_collection(self):
        with pytest.raises(ValueError, match="events"):
            BatchedSimulation([tiny(collect_events=True)])

    def test_duplicate_seeds_allowed_and_identical(self):
        cfg = tiny(seed=9)
        a, b = BatchedSimulation([cfg, cfg]).run()
        assert same_summary(a.summary, b.summary)


class TestRunReplicates:
    def test_seeds_match_replicate_helper(self):
        results = run_replicates(tiny(), 3)
        assert [r.config.seed for r in results] == spawn_seeds(tiny().seed, 3)

    def test_single_replicate_runs_sequentially(self):
        (result,) = run_replicates(tiny(), 1)
        seed = spawn_seeds(tiny().seed, 1)[0]
        assert same_summary(
            result.summary, run_simulation(tiny().with_(seed=seed)).summary
        )

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            run_replicates(tiny(), 0)

    def test_event_configs_fall_back_to_sequential(self):
        results = run_replicates(tiny(collect_events=True), 2)
        assert all(r.events is not None for r in results)

    def test_store_roundtrip(self, tmp_path):
        store = RunStore(tmp_path / "rs")
        first = run_replicates(tiny(), 3, store=store)
        assert store.misses == 3 and store.hits == 0
        assert len(store) == 3
        again = run_replicates(tiny(), 3, store=store)
        assert store.hits == 3
        for a, b in zip(first, again):
            assert same_summary(a.summary, b.summary)

    def test_partial_cache_only_runs_missing(self, tmp_path):
        store = RunStore(tmp_path / "rs")
        seeds = spawn_seeds(tiny().seed, 3)
        # Pre-populate one replicate through the sequential path.
        store.put(run_simulation(tiny().with_(seed=seeds[1])))
        results = run_replicates(tiny(), 3, store=store)
        assert store.hits == 1  # the pre-populated slot was served
        assert len(store) == 3
        assert [r.config.seed for r in results] == seeds


class TestSweepBatching:
    def test_batched_sweep_matches_sequential_sweep(self):
        cfgs = replicate(tiny(), 3) + [tiny(seed=99, n_articles=5)]
        plain = run_sweep(cfgs, backend="serial")
        batched = run_sweep(cfgs, backend="serial", batch_replicates=True)
        for a, b in zip(plain, batched):
            assert a.config == b.config
            assert same_summary(a.summary, b.summary)

    def test_batched_sweep_persists_individually(self, tmp_path):
        store = RunStore(tmp_path / "rs")
        cfgs = replicate(tiny(), 3)
        run_sweep(cfgs, backend="serial", store=store, batch_replicates=True)
        assert len(store) == 3
        # A later per-seed sweep is served entirely from cache.
        run_sweep(cfgs, backend="serial", store=store)
        assert store.hits == 3

    def test_event_configs_stay_solo(self):
        cfgs = [tiny(collect_events=True, seed=s) for s in (1, 2)]
        results = run_sweep(cfgs, backend="serial", batch_replicates=True)
        assert all(r.events is not None for r in results)

    def test_thread_backend_batches(self):
        cfgs = replicate(tiny(), 2) + replicate(tiny(seed=42, n_articles=5), 2)
        results = run_sweep(cfgs, backend="thread", batch_replicates=True)
        assert len(results) == 4
        assert [r.config for r in results] == cfgs


class TestBehaviorRngModes:
    def test_single_run_behavior_accepts_its_own_rng(self):
        """The historical probe pattern: drive the behaviour engine with
        the simulation's own (buffered) stream or any raw generator."""
        from repro.sim.engine import CollaborationSimulation

        sim = CollaborationSimulation(tiny())
        states = np.zeros(sim.rational_idx.size, dtype=np.int64)
        for rng in (sim.rng, np.random.default_rng(0)):
            actions = sim.behavior.sharing_actions(states, np.inf, rng)
            assert actions.shape == (sim.config.n_agents,)


class TestWallTimeAmortization:
    def test_batched_wall_time_is_amortized(self):
        results = BatchedSimulation(replicate(tiny(), 2)).run()
        assert results[0].wall_time_s == results[1].wall_time_s
        assert results[0].wall_time_s > 0.0
