"""Checkpoint <-> experiment store interplay.

A checkpoint persists *learned* state (Q-matrices, ledgers) mid-run; the
run store persists *finished* summaries keyed by config hash.  The
train-once / evaluate-many workflow uses both: restore a trained sim,
evaluate it under several service configurations, and store each
evaluation — which must then be cache hits on the next sweep.
"""

import numpy as np
import pytest

import repro.sim._sweep as sweep_mod
from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.config import SimulationConfig
from repro.sim.engine import CollaborationSimulation
from repro.sim._sweep import run_sweep
from repro.store._runstore import RunStore


def make_config(seed=9, **kw):
    base = dict(
        n_agents=20, n_articles=5, training_steps=60, eval_steps=30, seed=seed
    )
    base.update(kw)
    return SimulationConfig(**base)


def make_sim(seed=9, **kw):
    return CollaborationSimulation(make_config(seed=seed, **kw))


class TestCheckpointStoreRoundTrip:
    def test_save_restore_resumed_sweep(self, tmp_path, monkeypatch):
        # 1. Train once, checkpoint the learned state.
        sim = make_sim()
        for _ in range(sim.config.training_steps):
            sim.step(float("inf"))
        ckpt = save_checkpoint(sim, tmp_path / "trained.npz")

        # 2. Restore into a fresh sim, finish evaluation, store the result.
        restored = make_sim()
        load_checkpoint(restored, ckpt)
        assert np.array_equal(restored.sharing_learner.q, sim.sharing_learner.q)
        restored.scheme.reset_reputations()
        for _ in range(restored.config.eval_steps):
            restored.step(1.0)
        result = restored.summarize()

        store = RunStore(tmp_path / "store")
        # A manually summarized result needs an explicit vouch: under its
        # config hash it stands in for a full run() of that config.
        with pytest.raises(ValueError, match="manually summarized"):
            store.put(result)
        store.put(result, allow_partial=True)

        # 3. A sweep over [restored config + a new config] resumes: only
        # the config absent from the store executes.
        calls = []
        original = sweep_mod._worker

        def counted(config):
            calls.append(config)
            return original(config)

        monkeypatch.setattr(sweep_mod, "_worker", counted)
        new_cfg = make_config(seed=10)
        results = run_sweep(
            [restored.config, new_cfg],
            backend="serial",
            store=RunStore(tmp_path / "store"),
        )
        assert [c.seed for c in calls] == [10]
        assert [r.config.seed for r in results] == [9, 10]

    def test_checkpointed_eval_is_storable(self, tmp_path):
        sim = make_sim()
        for _ in range(30):
            sim.step(float("inf"))
        ckpt = save_checkpoint(sim, tmp_path / "ck.npz")
        fresh = make_sim()
        load_checkpoint(fresh, ckpt)
        fresh.step(1.0)
        result = fresh.summarize()
        assert result.extras["manual_summary"] == 1.0  # provenance marker
        store = RunStore(tmp_path / "store")
        store.put(result, allow_partial=True)
        assert store.contains(fresh.config)


class TestCheckpointErrorPaths:
    def test_version_mismatch_rejected(self, tmp_path):
        sim = make_sim()
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.int64(99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            load_checkpoint(make_sim(), path)

    def test_q_shape_mismatch_rejected(self, tmp_path):
        # Same population/types (same seed & mix) but different state
        # discretization: Q-matrix shapes disagree.
        sim = make_sim(n_states=10)
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        other = make_sim(n_states=5)
        with pytest.raises(ValueError, match="Q-matrix shape mismatch"):
            load_checkpoint(other, path)

    def test_rational_count_mismatch_rejected(self, tmp_path):
        from repro.agents.population import PopulationMix

        sim = make_sim()
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        other = make_sim(mix=PopulationMix(0.5, 0.25, 0.25))
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_truncated_checkpoint_rejected(self, tmp_path):
        sim = make_sim()
        path = save_checkpoint(sim, tmp_path / "ck.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_checkpoint(make_sim(), path)
