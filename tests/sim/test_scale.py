"""Scale-path coverage: sparse ledgers, chunked kernels, streaming metrics.

The contract of the scale path is layered:

* **exactness** — with a cap no row can overflow, a sparse run is
  bit-identical to its dense twin (same accumulation order, same
  reputations, same trajectories) across every scheme;
* **neutrality** — ``scale.chunk_size`` is a pure execution knob: any
  positive value yields the same run;
* **boundedness** — in the eviction regime rows never exceed their cap
  and the engine keeps running;
* **batching** — sparse params thread through lanes like every other
  knob (``ledger_cap`` lifts per lane), and the planner derives a
  memory-safe default lane width from the per-lane footprint.
"""

import math

import numpy as np
import pytest

from repro.agents.population import PopulationMix
from repro.core.sparse import SparseInteractionLedger
from repro.sim.config import ScaleConfig, SimulationConfig
from repro.sim.engine import BatchedSimulation, run_simulation
from repro.sim.lanes import estimate_lane_state_bytes
from repro.sim._sweep import default_lane_width, plan_lane_batches

MIX = PopulationMix(rational=0.5, altruistic=0.25, irrational=0.25)

BASE = dict(
    n_agents=24,
    n_articles=6,
    training_steps=40,
    eval_steps=30,
    founders_per_article=3,
    mix=MIX,
)


def tiny(seed=11, **overrides):
    params = dict(BASE)
    params.update(overrides)
    return SimulationConfig(seed=seed, **params)


def _same(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def assert_summaries_identical(a, b, label=""):
    for section, got, want in (
        ("summary", a.summary, b.summary),
        ("training", a.training_summary, b.training_summary),
    ):
        assert set(got) == set(want)
        for key in want:
            assert _same(got[key], want[key]), (
                f"{label}{section}[{key!r}]: {got[key]!r} != {want[key]!r}"
            )


class TestSparseDenseEquivalence:
    """Exact regime: cap >= population, so nothing ever evicts."""

    @pytest.mark.parametrize("scheme", ["reputation", "none", "tft", "karma"])
    def test_bit_identical_across_schemes(self, scheme):
        dense = tiny(scheme=scheme)
        sparse = dense.with_(scale=ScaleConfig(sparse=True, ledger_cap=24))
        assert_summaries_identical(
            run_simulation(dense), run_simulation(sparse), f"{scheme}: "
        )

    def test_bit_identical_under_churn_and_sybil(self):
        """Identity resets exercise the ledger's row/column wipes."""
        dense = tiny(
            scheme="tft",
            leave_rate=0.03,
            join_rate=0.25,
            whitewash_rate=0.02,
            sybil_fraction=0.25,
            sybil_rate=0.1,
        )
        sparse = dense.with_(scale=ScaleConfig(sparse=True, ledger_cap=24))
        assert_summaries_identical(run_simulation(dense), run_simulation(sparse))

    def test_sparse_state_matches_dense_matrix(self):
        from repro.sim.engine import CollaborationSimulation

        dense = CollaborationSimulation(tiny(scheme="tft"))
        sparse = CollaborationSimulation(
            tiny(scheme="tft").with_(scale=ScaleConfig(sparse=True, ledger_cap=24))
        )
        for _ in range(30):
            dense.step(float("inf"))
            sparse.step(float("inf"))
        assert np.array_equal(np.asarray(dense.scheme.given),
                              np.asarray(sparse.scheme.given))
        assert np.array_equal(dense.scheme.reputation_s(),
                              sparse.scheme.reputation_s())


class TestChunkNeutrality:
    @pytest.mark.parametrize("scheme", ["reputation", "tft"])
    def test_chunk_size_never_changes_results(self, scheme):
        wide = tiny(scheme=scheme, scale=ScaleConfig(sparse=(scheme == "tft"),
                                                     ledger_cap=24))
        narrow = wide.with_(**{"scale.chunk_size": 3})
        assert_summaries_identical(
            run_simulation(wide), run_simulation(narrow), f"{scheme}: "
        )


class TestEvictionRegime:
    def test_capped_run_completes_and_stays_bounded(self):
        cfg = tiny(scheme="tft", scale=ScaleConfig(sparse=True, ledger_cap=4))
        from repro.sim.engine import CollaborationSimulation

        sim = CollaborationSimulation(cfg)
        for _ in range(50):
            sim.step(float("inf"))
        led = sim.scheme._ledger
        assert int(led.counts.max()) <= 4
        result = run_simulation(cfg)
        assert 0.0 <= result.summary["shared_bandwidth"] <= 1.0

    def test_capped_run_stays_statistically_close_to_dense(self):
        dense = run_simulation(tiny(scheme="tft"))
        capped = run_simulation(
            tiny(scheme="tft", scale=ScaleConfig(sparse=True, ledger_cap=6))
        )
        assert capped.summary["shared_bandwidth"] == pytest.approx(
            dense.summary["shared_bandwidth"], abs=0.15
        )


class TestLaneBatchedScale:
    def test_sparse_lanes_bit_identical_to_sequential(self):
        configs = [
            tiny(seed=70, scheme="tft",
                 scale=ScaleConfig(sparse=True, ledger_cap=24)),
            tiny(seed=71, scheme="tft",
                 scale=ScaleConfig(sparse=True, ledger_cap=8)),
            tiny(seed=72, scheme="tft", tft_history_decay=0.9,
                 scale=ScaleConfig(sparse=True, ledger_cap=24)),
        ]
        batched = BatchedSimulation(configs).run()
        for got, cfg in zip(batched, configs):
            assert_summaries_identical(got, run_simulation(cfg), "lane: ")

    def test_sparse_flag_is_structural(self):
        sparse = tiny(scale=ScaleConfig(sparse=True))
        with pytest.raises(ValueError, match="scale.sparse"):
            BatchedSimulation([tiny(), sparse])

    def test_ledger_cap_is_not_structural(self):
        a = tiny(seed=1, scheme="tft", scale=ScaleConfig(sparse=True, ledger_cap=8))
        b = tiny(seed=2, scheme="tft", scale=ScaleConfig(sparse=True, ledger_cap=16))
        assert len(BatchedSimulation([a, b]).run()) == 2


class TestStreamingMetrics:
    def test_streaming_summaries_close_to_gathered(self):
        base = tiny()
        streamed = base.with_(**{"scale.stream_metrics_threshold": 2})
        a, b = run_simulation(base), run_simulation(streamed)
        for key, want in a.summary.items():
            got = b.summary[key]
            if isinstance(want, float) and math.isnan(want):
                assert math.isnan(got)
            else:
                assert got == pytest.approx(want, rel=1e-9, abs=1e-9), key

    def test_streaming_batched_matches_sequential(self):
        cfg = tiny(seed=42).with_(**{"scale.stream_metrics_threshold": 2})
        configs = [cfg, cfg.with_(seed=43, t_eval=0.5)]
        batched = BatchedSimulation(configs).run()
        for got, conf in zip(batched, configs):
            assert_summaries_identical(got, run_simulation(conf), "stream: ")

    def test_threshold_is_structural(self):
        with pytest.raises(ValueError, match="stream_metrics_threshold"):
            BatchedSimulation(
                [tiny(), tiny().with_(**{"scale.stream_metrics_threshold": 2})]
            )


class TestSparseLedgerUnit:
    def test_lookup_missing_is_zero(self):
        led = SparseInteractionLedger(8, cap=4)
        assert led.lookup(np.array([3]), np.array([5])).tolist() == [0.0]

    def test_add_accumulates_and_looks_up(self):
        led = SparseInteractionLedger(8, cap=4, chunk_size=2)
        rows = np.array([0, 0, 1, 5, 0])
        cols = np.array([1, 2, 3, 6, 1])
        # Pairs unique per call: split the duplicate (0, 1) across calls.
        led.add(rows[:4], cols[:4], np.array([1.0, 2.0, 3.0, 4.0]))
        led.add(rows[4:], cols[4:], np.array([0.5]))
        assert led.lookup(rows, cols).tolist() == [1.5, 2.0, 3.0, 4.0, 1.5]
        assert led.counts[0] == 2

    def test_zero_amounts_never_occupy_slots(self):
        led = SparseInteractionLedger(8, cap=2)
        led.add(np.array([0, 0]), np.array([1, 2]), np.array([0.0, 1.0]))
        assert led.counts[0] == 1
        assert led.lookup(np.array([0]), np.array([1])).tolist() == [0.0]

    def test_eviction_replaces_smallest(self):
        led = SparseInteractionLedger(8, cap=2)
        led.add(np.array([0, 0]), np.array([1, 2]), np.array([5.0, 1.0]))
        ev_rows, ev_amts = led.add(np.array([0]), np.array([3]), np.array([2.0]))
        assert ev_rows.tolist() == [0] and ev_amts.tolist() == [1.0]
        assert led.lookup(np.array([0, 0, 0]), np.array([1, 2, 3])).tolist() == [
            5.0, 0.0, 2.0,
        ]

    def test_remove_partner_reports_amounts(self):
        led = SparseInteractionLedger(4, n_replicates=2, cap=3)
        led.add(np.array([0, 1, 5]), np.array([2, 2, 2]), np.array([1.0, 2.0, 3.0]))
        rows, removed = led.remove_partner(0, 2)
        assert rows.tolist() == [0, 1] and removed.tolist() == [1.0, 2.0]
        # Replicate 1's entry survives its sibling's wipe.
        assert led.lookup(np.array([5]), np.array([2])).tolist() == [3.0]

    def test_dense_round_trip(self):
        rng = np.random.default_rng(3)
        dense = rng.random((2, 6, 6)) * (rng.random((2, 6, 6)) < 0.4)
        for rep in range(2):
            np.fill_diagonal(dense[rep], 0.0)
        led = SparseInteractionLedger.from_dense(dense, cap=6)
        assert np.array_equal(led.to_dense(), dense)

    def test_from_dense_overflow_is_a_clear_error(self):
        dense = np.ones((1, 6, 6))
        with pytest.raises(ValueError, match="ledger_cap"):
            SparseInteractionLedger.from_dense(dense, cap=2)

    def test_per_row_caps(self):
        caps = np.array([1, 3, 3, 3], dtype=np.int64)
        led = SparseInteractionLedger(4, cap=caps)
        led.add(np.array([0, 0, 1, 1]), np.array([1, 2, 0, 2]),
                np.array([1.0, 2.0, 3.0, 4.0]))
        assert led.counts.tolist()[:2] == [1, 2]  # row 0 evicted at cap 1
        assert led.lookup(np.array([0]), np.array([2])).tolist() == [2.0]


class TestFootprintPlanner:
    def test_dense_tft_estimate_is_quadratic_sparse_is_not(self):
        dense = tiny(scheme="tft", n_agents=2000)
        sparse = dense.with_(scale=ScaleConfig(sparse=True, ledger_cap=64))
        assert estimate_lane_state_bytes(dense) > 2000 * 2000 * 8
        assert estimate_lane_state_bytes(sparse) < estimate_lane_state_bytes(dense) / 4

    def test_default_width_bounds_dense_tft_batches(self):
        cfg = tiny(scheme="tft", n_agents=2000)
        width = default_lane_width(cfg)
        assert 1 <= width < 100
        pending = [(cfg.with_(seed=s), [s]) for s in range(width + 5)]
        tasks = plan_lane_batches(pending)
        assert len(tasks) == 2
        assert len(tasks[0]) == width

    def test_small_configs_keep_maximal_batches(self):
        pending = [(tiny(seed=s), [s]) for s in range(40)]
        assert len(plan_lane_batches(pending)) == 1

    def test_explicit_lane_width_overrides_derived(self):
        cfg = tiny(scheme="tft", n_agents=2000)
        pending = [(cfg.with_(seed=s), [s]) for s in range(4)]
        tasks = plan_lane_batches(pending, lane_width=2)
        assert [len(t) for t in tasks] == [2, 2]

    def test_memory_budget_parameter(self):
        pending = [(tiny(seed=s), [s]) for s in range(6)]
        one_by_one = plan_lane_batches(pending, memory_budget=1)
        assert [len(t) for t in one_by_one] == [1] * 6

    def test_derived_width_tracks_the_heaviest_lane(self):
        """A late huge-ledger-cap lane must shrink the group's width —
        the ledger allocates every row at the widest cap in the batch."""
        light = tiny(scheme="tft", n_agents=1000,
                     scale=ScaleConfig(sparse=True, ledger_cap=8))
        heavy = light.with_(**{"scale.ledger_cap": 999})
        assert default_lane_width(heavy) < default_lane_width(light)
        budget = estimate_lane_state_bytes(heavy) * 2
        pending = [(c.with_(seed=s), [s])
                   for s, c in enumerate([light, heavy, light, light, light])]
        tasks = plan_lane_batches(pending, memory_budget=budget)
        # First-config width alone would allow all five in one batch; the
        # heavy lane narrows the batch it joins to 2 — and once that
        # batch closes, the light-only remainder recovers its full width.
        assert [len(t) for t in tasks] == [2, 3]


class TestScaleConfigPlumbing:
    def test_dotted_with_updates_nested_section(self):
        cfg = tiny().with_(**{"scale.sparse": True, "scale.ledger_cap": 9})
        assert cfg.scale == ScaleConfig(sparse=True, ledger_cap=9)

    def test_scale_changes_the_store_hash(self):
        from repro.store.hashing import config_hash

        assert config_hash(tiny()) != config_hash(
            tiny(scale=ScaleConfig(sparse=True))
        )
        assert config_hash(tiny()) != config_hash(
            tiny(scale=ScaleConfig(ledger_cap=32))
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="ledger_cap"):
            ScaleConfig(ledger_cap=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ScaleConfig(chunk_size=0)
        with pytest.raises(ValueError, match="stream_metrics_threshold"):
            ScaleConfig(stream_metrics_threshold=1)
